//! Offline shim for `bytes`: the `Buf`/`BufMut` integer accessors this
//! workspace uses, with the upstream's big-endian byte order and
//! advance-on-read semantics for `&[u8]`.

/// Sequential big-endian reads that consume the buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;
    /// Reads the next big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads the next big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_be_bytes(head.try_into().expect("8 bytes"))
    }
}

/// Sequential big-endian appends.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_big_endian_and_advances() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u32(0x1234_5678);
        out.put_u64(0x0102_0304_0506_0708);
        assert_eq!(out[1..5], [0x12, 0x34, 0x56, 0x78]);
        let mut r = out.as_slice();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0x1234_5678);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }
}
