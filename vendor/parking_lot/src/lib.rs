//! Offline shim for `parking_lot`: the `Mutex` subset this workspace uses,
//! implemented over `std::sync::Mutex` with parking_lot's non-poisoning
//! `lock()` signature.

use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while holding
    /// the lock does not poison it (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poisoning");
    }
}
