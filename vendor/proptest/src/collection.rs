//! Collection strategies: `vec` and `btree_set`.

use core::ops::Range;
use std::collections::BTreeSet;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `sizes` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.sizes.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s of up to a `sizes`-drawn number of distinct
/// elements from `element` (best effort, as upstream: duplicates collapse).
pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, sizes }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.sizes.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_collapses_duplicates() {
        let mut rng = TestRng::from_seed(2);
        let s = btree_set(0usize..3, 0..50).generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
