//! Test configuration and the deterministic generator behind every strategy.

/// Per-test configuration, as in `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic generator strategies draw from (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one test: seeded from `PROPTEST_SEED` when
    /// set, otherwise from a hash of the test's full path — stable across
    /// runs and distinct across tests.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(s) => s,
            None => {
                // FNV-1a of the test path.
                let mut h = 0xCBF2_9CE4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            }
        };
        TestRng { state: seed }
    }

    /// Builds a generator from an explicit seed (for the shim's own tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}
