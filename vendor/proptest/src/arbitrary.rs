//! `any::<T>()` — full-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
