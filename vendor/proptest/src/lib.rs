//! Offline shim for `proptest`: deterministic random-generation property
//! testing with the upstream surface this workspace uses — the `proptest!`,
//! `prop_oneof!`, and `prop_assert*!` macros, range/tuple/`any` strategies,
//! `prop_map`, and the `collection`/`option` modules.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs left
//!   to the assertion message; reproduction relies on determinism instead.
//! * **Deterministic seeding.** Each test derives its seed from its full
//!   module path, so runs are stable across processes; set `PROPTEST_SEED`
//!   to explore a different stream, `PROPTEST_CASES` to change the default
//!   case count.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::ProptestConfig;

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number
/// of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks among strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
