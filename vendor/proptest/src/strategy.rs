//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The combinator behind `prop_oneof!`: weighted choice among strategies of
/// one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut draw = rng.below(total);
        for (w, s) in &self.arms {
            if draw < *w as u64 {
                return s.generate(rng);
            }
            draw -= *w as u64;
        }
        unreachable!("draw exceeds total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..500 {
            let (a, b) = (1usize..10, -4i32..4).generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((-4..4).contains(&b));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(6);
        let s = crate::prop_oneof![
            3 => (0u32..10).prop_map(|v| v * 2),
            1 => Just(99u32),
        ];
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20), "v={v}");
            saw_just |= v == 99;
        }
        assert!(saw_just, "the weighted arm fires");
    }
}
