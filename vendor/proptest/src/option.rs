//! `option::of` — strategies over `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy most of the time, `None` otherwise
/// (upstream's default Some-weight).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy {
        inner,
        some_probability: 0.8,
    }
}

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(self.some_probability) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(3);
        let s = of(0u32..10);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().any(Option::is_none));
    }
}
