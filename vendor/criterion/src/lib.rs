//! Offline shim for `criterion`: the API surface this workspace's benches
//! use, with upstream's execution model — measured runs under `cargo bench`
//! (which passes `--bench`), a single smoke iteration per benchmark under
//! `cargo test` so benches stay cheap compile-and-run checks.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted for compatibility;
/// the shim re-runs setup per iteration either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier with a parameter, e.g. `BenchmarkId::new("bgc", 4)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    measured: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench; cargo test does not.
        let measured = std::env::args().any(|a| a == "--bench");
        Criterion { measured }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measured: self.measured,
            _parent: self,
        }
    }

    /// Runs a single named benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.measured, &id.to_string(), f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measured: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement time (ignored in smoke mode).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (ignored in smoke mode).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the sample count (ignored in smoke mode).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.measured, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.measured, &format!("{}/{}", self.name, id), |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(measured: bool, label: &str, mut f: F) {
    let mut b = Bencher {
        measured,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if measured && b.iters > 0 {
        let per_iter = b.total.as_nanos() / b.iters as u128;
        println!("{label:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
    } else {
        println!("{label:<50} ok (smoke)");
    }
}

/// Runs the measured routine; handed to each benchmark closure.
pub struct Bencher {
    measured: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn target_iters(&self) -> u64 {
        if self.measured {
            20
        } else {
            1
        }
    }

    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_iters() {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_iters() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
