//! Offline shim for `crossbeam`: the `channel` subset this workspace uses,
//! implemented over `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel (cloneable).
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`].
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking if a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn bounded_round_trip_across_threads() {
            let (tx, rx) = bounded(1);
            let t = std::thread::spawn(move || {
                tx.send(1u32).unwrap();
                tx.send(2u32).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
            assert!(rx.recv().is_err(), "senders gone");
        }
    }
}
