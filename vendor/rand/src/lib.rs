//! Offline shim for `rand` 0.8: the `Rng`/`SeedableRng`/`StdRng` subset this
//! workspace uses. The backing generator is SplitMix64 — deterministic,
//! seedable, and statistically adequate for workload shaping (nothing here is
//! cryptographic, exactly as with the real `StdRng` contract).

/// Raw 64-bit generator, the base of every [`Rng`] method.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over an [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform value from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A half-open range a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift draw in [0, span).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i128) + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator (SplitMix64-backed in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes_and_calibration() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }
}
