//! Model-based property test for the RVM substrate: a random sequence of
//! transactions (committed, aborted, or lost to a crash) against a plain
//! in-memory model. After every crash/reopen, the store must equal the
//! model exactly: all committed bytes, none of the uncommitted ones.

use bmx_rvm::{RegionId, Rvm, RvmOptions};
use proptest::prelude::*;
use std::path::PathBuf;

const REGION: RegionId = RegionId(1);
const LEN: usize = 128;

#[derive(Clone, Debug)]
enum Step {
    /// Write `val` at `offset..offset+len`, then commit.
    Commit { offset: usize, len: usize, val: u8 },
    /// Write, then abort.
    Abort { offset: usize, len: usize, val: u8 },
    /// Write, then crash before commit (drop + reopen).
    CrashMid { offset: usize, len: usize, val: u8 },
    /// Crash between transactions (drop + reopen).
    CrashIdle,
    /// Apply the log to the data files and reset it.
    Truncate,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let span = (0usize..LEN, 1usize..24, any::<u8>()).prop_map(|(o, l, v)| {
        let o = o.min(LEN - 1);
        let l = l.min(LEN - o);
        (o, l, v)
    });
    prop_oneof![
        4 => span.clone().prop_map(|(offset, len, val)| Step::Commit { offset, len, val }),
        2 => span.clone().prop_map(|(offset, len, val)| Step::Abort { offset, len, val }),
        2 => span.prop_map(|(offset, len, val)| Step::CrashMid { offset, len, val }),
        1 => Just(Step::CrashIdle),
        1 => Just(Step::Truncate),
    ]
}

fn fresh_dir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bmx-rvm-model-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn reopen(dir: &std::path::Path) -> Rvm {
    let mut rvm = Rvm::open(dir, RvmOptions::default()).expect("open");
    rvm.map(REGION, LEN).expect("map");
    rvm
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn store_always_equals_the_committed_model(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        tag in any::<u64>(),
    ) {
        let dir = fresh_dir(tag);
        let mut model = [0u8; LEN];
        let mut rvm = reopen(&dir);
        for step in steps {
            match step {
                Step::Commit { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    rvm.commit(t).expect("commit");
                    model[offset..offset + len].fill(val);
                }
                Step::Abort { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    rvm.abort(t).expect("abort");
                }
                Step::CrashMid { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    drop(rvm); // crash with the transaction open
                    rvm = reopen(&dir);
                }
                Step::CrashIdle => {
                    drop(rvm);
                    rvm = reopen(&dir);
                }
                Step::Truncate => {
                    rvm.truncate().expect("truncate");
                }
            }
            // The live image always equals the model after each step.
            prop_assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &model[..]);
        }
        // One final crash: recovery must reproduce the model byte for byte.
        drop(rvm);
        let rvm = reopen(&dir);
        prop_assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &model[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
