//! Model-based property test for the RVM substrate: a random sequence of
//! transactions (committed, aborted, or lost to a crash) against a plain
//! in-memory model. After every crash/reopen, the store must equal the
//! model exactly: all committed bytes, none of the uncommitted ones.

use bmx_rvm::{RegionId, Rvm, RvmOptions};
use proptest::prelude::*;
use std::path::PathBuf;

const REGION: RegionId = RegionId(1);
const LEN: usize = 128;

#[derive(Clone, Debug)]
enum Step {
    /// Write `val` at `offset..offset+len`, then commit.
    Commit { offset: usize, len: usize, val: u8 },
    /// Write, then abort.
    Abort { offset: usize, len: usize, val: u8 },
    /// Write, then crash before commit (drop + reopen).
    CrashMid { offset: usize, len: usize, val: u8 },
    /// Crash between transactions (drop + reopen).
    CrashIdle,
    /// Apply the log to the data files and reset it.
    Truncate,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let span = (0usize..LEN, 1usize..24, any::<u8>()).prop_map(|(o, l, v)| {
        let o = o.min(LEN - 1);
        let l = l.min(LEN - o);
        (o, l, v)
    });
    prop_oneof![
        4 => span.clone().prop_map(|(offset, len, val)| Step::Commit { offset, len, val }),
        2 => span.clone().prop_map(|(offset, len, val)| Step::Abort { offset, len, val }),
        2 => span.prop_map(|(offset, len, val)| Step::CrashMid { offset, len, val }),
        1 => Just(Step::CrashIdle),
        1 => Just(Step::Truncate),
    ]
}

fn fresh_dir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bmx-rvm-model-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn reopen(dir: &std::path::Path) -> Rvm {
    let mut rvm = Rvm::open(dir, RvmOptions::default()).expect("open");
    rvm.map(REGION, LEN).expect("map");
    rvm
}

/// Torn-write sweep: a crash at *every byte offset* of a commit's log
/// append must recover to exactly the pre-transaction state — never a
/// half-applied transaction.
///
/// A commit appends all of its SetRange frames plus the Commit frame in one
/// contiguous write. On disk that write can tear at any byte boundary, so
/// the test replays the crash at each one: the log is rewritten as every
/// strict prefix of the append, the store is reopened, and the recovered
/// image must equal the old state byte for byte. Only the complete append
/// (the commit marker intact) may surface the new state. A second sweep
/// flips each byte of the full append in place — a torn sector rather than
/// a short write — with the same all-or-nothing requirement, which is what
/// pins the per-frame checksum: a transaction whose SetRange frames are all
/// intact but whose Commit frame is corrupt must still recover to the old
/// state.
#[test]
fn crash_at_every_byte_of_a_log_append_never_half_applies() {
    let dir = fresh_dir(0xF00D_CAFE);
    let log_path = dir.join("rvm.log");

    // Baseline state A, pushed into the data files so the log holds only
    // the transaction under test.
    let mut rvm = reopen(&dir);
    let t = rvm.begin().expect("begin");
    rvm.set_range(t, REGION, 0, &[0xAA; LEN]).expect("write");
    rvm.commit(t).expect("commit");
    rvm.truncate().expect("truncate");
    let state_a = [0xAAu8; LEN];
    assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &state_a[..]);

    // State B: one transaction of several SetRange spans — a crash landing
    // between its frames is exactly the half-application hazard.
    let t = rvm.begin().expect("begin");
    rvm.set_range(t, REGION, 0, &[0xB1; 16]).expect("write");
    rvm.set_range(t, REGION, 48, &[0xB2; 32]).expect("write");
    rvm.set_range(t, REGION, 100, &[0xB3; 20]).expect("write");
    rvm.commit(t).expect("commit");
    let mut state_b = state_a;
    state_b[0..16].fill(0xB1);
    state_b[48..80].fill(0xB2);
    state_b[100..120].fill(0xB3);
    assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &state_b[..]);
    drop(rvm);

    let full = std::fs::read(&log_path).expect("read log bytes");
    assert!(full.len() > 16, "append produced a multi-frame log");

    // Crash as a short write: every strict prefix recovers state A; the
    // complete append recovers state B.
    for cut in 0..=full.len() {
        std::fs::write(&log_path, &full[..cut]).expect("write prefix");
        let rvm = reopen(&dir);
        let got = rvm.read(REGION, 0, LEN).expect("read");
        let want: &[u8] = if cut == full.len() {
            &state_b
        } else {
            &state_a
        };
        assert_eq!(
            got,
            want,
            "crash after {cut}/{} append bytes surfaced a state that is \
             neither old nor new",
            full.len()
        );
    }

    // Crash as a torn sector: flipping any single byte of the append must
    // also recover state A — the checksum rejects the frame and with it the
    // commit marker.
    for i in 0..full.len() {
        let mut torn = full.clone();
        torn[i] ^= 0xFF;
        std::fs::write(&log_path, &torn).expect("write torn");
        let rvm = reopen(&dir);
        let got = rvm.read(REGION, 0, LEN).expect("read");
        assert_eq!(
            got,
            &state_a[..],
            "byte {i} of the append corrupted in place surfaced a \
             half-applied transaction"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn store_always_equals_the_committed_model(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        tag in any::<u64>(),
    ) {
        let dir = fresh_dir(tag);
        let mut model = [0u8; LEN];
        let mut rvm = reopen(&dir);
        for step in steps {
            match step {
                Step::Commit { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    rvm.commit(t).expect("commit");
                    model[offset..offset + len].fill(val);
                }
                Step::Abort { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    rvm.abort(t).expect("abort");
                }
                Step::CrashMid { offset, len, val } => {
                    let t = rvm.begin().expect("begin");
                    rvm.set_range(t, REGION, offset as u64, &[val].repeat(len)).expect("write");
                    drop(rvm); // crash with the transaction open
                    rvm = reopen(&dir);
                }
                Step::CrashIdle => {
                    drop(rvm);
                    rvm = reopen(&dir);
                }
                Step::Truncate => {
                    rvm.truncate().expect("truncate");
                }
            }
            // The live image always equals the model after each step.
            prop_assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &model[..]);
        }
        // One final crash: recovery must reproduce the model byte for byte.
        drop(rvm);
        let rvm = reopen(&dir);
        prop_assert_eq!(rvm.read(REGION, 0, LEN).expect("read"), &model[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
