//! The RVM manager: regions, flat transactions, recovery, truncation.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bmx_common::{BmxError, Result};

use crate::log::{LogRecord, RedoLog};

/// Identifier of a recoverable region (one data file per region).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u64);

/// Transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u64);

/// Tunables for the manager.
#[derive(Clone, Debug, Default)]
pub struct RvmOptions {
    /// Truncate the log automatically once it exceeds this many bytes.
    pub auto_truncate_bytes: Option<u64>,
}

struct Region {
    path: PathBuf,
    mem: Vec<u8>,
}

struct ActiveTx {
    tid: Tid,
    /// Old values, pushed in modification order; abort replays them in
    /// reverse.
    undo: Vec<(RegionId, u64, Vec<u8>)>,
    /// New-value records to append at commit.
    redo: Vec<LogRecord>,
}

/// Recoverable virtual memory over a directory of data files plus one log.
///
/// Transactions are flat: one active transaction at a time, no nesting, no
/// distribution, no concurrency control — exactly the RVM feature set the
/// paper relies on (Section 8). A crash (dropping the manager without
/// [`Rvm::truncate`]) loses only uncommitted work; reopening replays the
/// committed log suffix.
pub struct Rvm {
    dir: PathBuf,
    log: RedoLog,
    regions: BTreeMap<RegionId, Region>,
    next_tid: u64,
    active: Option<ActiveTx>,
    opts: RvmOptions,
}

impl Rvm {
    /// Opens (creating if necessary) an RVM store rooted at `dir`.
    pub fn open(dir: &Path, opts: RvmOptions) -> Result<Rvm> {
        fs::create_dir_all(dir).map_err(|e| BmxError::Rvm(format!("mkdir {dir:?}: {e}")))?;
        let log = RedoLog::open(&dir.join("rvm.log"))?;
        Ok(Rvm {
            dir: dir.to_owned(),
            log,
            regions: BTreeMap::new(),
            next_tid: 1,
            active: None,
            opts,
        })
    }

    fn region_path(&self, id: RegionId) -> PathBuf {
        self.dir.join(format!("region_{}.dat", id.0))
    }

    /// Maps region `id` with at least `len` bytes, recovering committed state.
    ///
    /// The in-memory image is the data file (zero-extended to `len`) with
    /// every *committed* log record for this region replayed over it in log
    /// order.
    pub fn map(&mut self, id: RegionId, len: usize) -> Result<()> {
        if self.regions.contains_key(&id) {
            return Ok(());
        }
        let path = self.region_path(id);
        let mut mem = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(BmxError::Rvm(format!("read region {id:?}: {e}"))),
        };
        if mem.len() < len {
            mem.resize(len, 0);
        }
        Self::replay_committed(&self.dir, id, &mut mem)?;
        self.regions.insert(id, Region { path, mem });
        Ok(())
    }

    fn replay_committed(dir: &Path, id: RegionId, mem: &mut [u8]) -> Result<()> {
        let records = RedoLog::read_all(&dir.join("rvm.log"))?;
        let committed: BTreeSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                LogRecord::Commit { tid } => Some(*tid),
                _ => None,
            })
            .collect();
        for r in &records {
            if let LogRecord::SetRange {
                tid,
                region,
                offset,
                data,
            } = r
            {
                if *region == id.0 && committed.contains(tid) {
                    let start = *offset as usize;
                    let end = start + data.len();
                    if end <= mem.len() {
                        mem[start..end].copy_from_slice(data);
                    }
                }
            }
        }
        Ok(())
    }

    /// Unmaps a region, discarding its in-memory image (data files and log
    /// are untouched, so the committed state remains recoverable).
    pub fn unmap(&mut self, id: RegionId) {
        self.regions.remove(&id);
    }

    /// Returns `true` if the region is currently mapped.
    pub fn is_mapped(&self, id: RegionId) -> bool {
        self.regions.contains_key(&id)
    }

    /// Begins a flat transaction.
    ///
    /// RVM has no concurrency control; beginning a second transaction while
    /// one is active is an error.
    pub fn begin(&mut self) -> Result<Tid> {
        if self.active.is_some() {
            return Err(BmxError::Rvm("a transaction is already active".into()));
        }
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.active = Some(ActiveTx {
            tid,
            undo: Vec::new(),
            redo: Vec::new(),
        });
        Ok(tid)
    }

    /// Declares and performs a recoverable write of `data` into `region` at
    /// byte `offset`, within transaction `tid`.
    ///
    /// This fuses RVM's `set_range` (declaration) with the modification
    /// itself: the old bytes go to the undo buffer, the new bytes are applied
    /// in place and queued as a redo record.
    pub fn set_range(
        &mut self,
        tid: Tid,
        region: RegionId,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        let tx = self
            .active
            .as_mut()
            .filter(|t| t.tid == tid)
            .ok_or_else(|| BmxError::Rvm(format!("transaction {tid:?} is not active")))?;
        let reg = self
            .regions
            .get_mut(&region)
            .ok_or_else(|| BmxError::Rvm(format!("region {region:?} not mapped")))?;
        let start = offset as usize;
        let end = start
            .checked_add(data.len())
            .filter(|&e| e <= reg.mem.len())
            .ok_or_else(|| BmxError::Rvm(format!("write past end of region {region:?}")))?;
        tx.undo.push((region, offset, reg.mem[start..end].to_vec()));
        reg.mem[start..end].copy_from_slice(data);
        tx.redo.push(LogRecord::SetRange {
            tid: tid.0,
            region: region.0,
            offset,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Commits transaction `tid`: its new values and the commit marker go to
    /// the log in one flushed append.
    pub fn commit(&mut self, tid: Tid) -> Result<()> {
        let tx = self
            .active
            .take()
            .filter(|t| t.tid == tid)
            .ok_or_else(|| BmxError::Rvm(format!("transaction {tid:?} is not active")))?;
        let mut records = tx.redo;
        records.push(LogRecord::Commit { tid: tid.0 });
        self.log.append(&records)?;
        if let Some(limit) = self.opts.auto_truncate_bytes {
            if self.log.len_bytes() > limit {
                self.truncate()?;
            }
        }
        Ok(())
    }

    /// Aborts transaction `tid`, restoring every modified range.
    pub fn abort(&mut self, tid: Tid) -> Result<()> {
        let tx = self
            .active
            .take()
            .filter(|t| t.tid == tid)
            .ok_or_else(|| BmxError::Rvm(format!("transaction {tid:?} is not active")))?;
        for (region, offset, old) in tx.undo.into_iter().rev() {
            let reg = self
                .regions
                .get_mut(&region)
                .expect("undo for unmapped region");
            let start = offset as usize;
            reg.mem[start..start + old.len()].copy_from_slice(&old);
        }
        Ok(())
    }

    /// Reads `len` bytes from a mapped region.
    pub fn read(&self, region: RegionId, offset: u64, len: usize) -> Result<&[u8]> {
        let reg = self
            .regions
            .get(&region)
            .ok_or_else(|| BmxError::Rvm(format!("region {region:?} not mapped")))?;
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= reg.mem.len())
            .ok_or_else(|| BmxError::Rvm(format!("read past end of region {region:?}")))?;
        Ok(&reg.mem[start..end])
    }

    /// Applies the committed log to the data files and resets the log.
    ///
    /// Each region image is written to a temporary file and renamed into
    /// place, so truncation itself is crash-safe: a crash mid-truncate leaves
    /// either the old file plus the full log, or the new file (replay of the
    /// already-applied log is idempotent).
    pub fn truncate(&mut self) -> Result<()> {
        if self.active.is_some() {
            return Err(BmxError::Rvm(
                "cannot truncate with an active transaction".into(),
            ));
        }
        for (id, reg) in &self.regions {
            let tmp = reg.path.with_extension("tmp");
            let mut f = fs::File::create(&tmp)
                .map_err(|e| BmxError::Rvm(format!("create {tmp:?}: {e}")))?;
            f.write_all(&reg.mem)
                .and_then(|()| f.sync_data())
                .map_err(|e| BmxError::Rvm(format!("write region {id:?}: {e}")))?;
            fs::rename(&tmp, &reg.path)
                .map_err(|e| BmxError::Rvm(format!("rename region {id:?}: {e}")))?;
        }
        self.log.reset()
    }

    /// Current log size in bytes (experiment E9 reads this).
    pub fn log_bytes(&self) -> u64 {
        self.log.len_bytes()
    }

    /// Records appended by this manager instance.
    pub fn log_records_written(&self) -> u64 {
        self.log.records_written()
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bmx-rvm-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn committed_writes_survive_crash() {
        let dir = fresh_dir("crash");
        {
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
            rvm.map(RegionId(1), 64).unwrap();
            let t = rvm.begin().unwrap();
            rvm.set_range(t, RegionId(1), 8, &[1, 2, 3, 4]).unwrap();
            rvm.commit(t).unwrap();
            // Crash: drop without truncate.
        }
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 64).unwrap();
        assert_eq!(rvm.read(RegionId(1), 8, 4).unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn uncommitted_writes_do_not_survive_crash() {
        let dir = fresh_dir("uncommitted");
        {
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
            rvm.map(RegionId(1), 64).unwrap();
            let t = rvm.begin().unwrap();
            rvm.set_range(t, RegionId(1), 0, &[9; 8]).unwrap();
            // Crash before commit.
        }
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 64).unwrap();
        assert_eq!(rvm.read(RegionId(1), 0, 8).unwrap(), &[0; 8]);
    }

    #[test]
    fn abort_restores_old_values() {
        let dir = fresh_dir("abort");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 32).unwrap();
        let t = rvm.begin().unwrap();
        rvm.set_range(t, RegionId(1), 0, &[1, 1]).unwrap();
        rvm.set_range(t, RegionId(1), 1, &[2, 2]).unwrap();
        rvm.abort(t).unwrap();
        assert_eq!(rvm.read(RegionId(1), 0, 3).unwrap(), &[0, 0, 0]);
    }

    #[test]
    fn overlapping_undo_restores_in_reverse_order() {
        let dir = fresh_dir("overlap");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 8).unwrap();
        let t0 = rvm.begin().unwrap();
        rvm.set_range(t0, RegionId(1), 0, &[5; 8]).unwrap();
        rvm.commit(t0).unwrap();
        let t = rvm.begin().unwrap();
        rvm.set_range(t, RegionId(1), 0, &[7; 4]).unwrap();
        rvm.set_range(t, RegionId(1), 2, &[8; 4]).unwrap();
        rvm.abort(t).unwrap();
        assert_eq!(rvm.read(RegionId(1), 0, 8).unwrap(), &[5; 8]);
    }

    #[test]
    fn truncate_applies_and_empties_log() {
        let dir = fresh_dir("truncate");
        {
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
            rvm.map(RegionId(2), 16).unwrap();
            let t = rvm.begin().unwrap();
            rvm.set_range(t, RegionId(2), 4, &[7; 4]).unwrap();
            rvm.commit(t).unwrap();
            rvm.truncate().unwrap();
            assert_eq!(rvm.log_bytes(), 0);
        }
        // Reopen: data must come from the data file, not the (empty) log.
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(2), 16).unwrap();
        assert_eq!(rvm.read(RegionId(2), 4, 4).unwrap(), &[7; 4]);
    }

    #[test]
    fn auto_truncate_kicks_in() {
        let dir = fresh_dir("auto-trunc");
        let mut rvm = Rvm::open(
            &dir,
            RvmOptions {
                auto_truncate_bytes: Some(64),
            },
        )
        .unwrap();
        rvm.map(RegionId(1), 256).unwrap();
        for i in 0..4 {
            let t = rvm.begin().unwrap();
            rvm.set_range(t, RegionId(1), i * 32, &[i as u8; 32])
                .unwrap();
            rvm.commit(t).unwrap();
        }
        assert!(
            rvm.log_bytes() < 128,
            "log={} should have been truncated",
            rvm.log_bytes()
        );
    }

    #[test]
    fn nested_transactions_rejected() {
        let dir = fresh_dir("nested");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        let _t = rvm.begin().unwrap();
        assert!(rvm.begin().is_err());
    }

    #[test]
    fn write_requires_active_transaction() {
        let dir = fresh_dir("notx");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 8).unwrap();
        assert!(rvm.set_range(Tid(99), RegionId(1), 0, &[1]).is_err());
    }

    #[test]
    fn out_of_bounds_write_rejected() {
        let dir = fresh_dir("oob");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 8).unwrap();
        let t = rvm.begin().unwrap();
        assert!(rvm.set_range(t, RegionId(1), 6, &[1, 2, 3]).is_err());
    }

    #[test]
    fn multiple_regions_are_independent() {
        let dir = fresh_dir("multi");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(1), 8).unwrap();
        rvm.map(RegionId(2), 8).unwrap();
        let t = rvm.begin().unwrap();
        rvm.set_range(t, RegionId(1), 0, &[1; 8]).unwrap();
        rvm.set_range(t, RegionId(2), 0, &[2; 8]).unwrap();
        rvm.commit(t).unwrap();
        assert_eq!(rvm.read(RegionId(1), 0, 8).unwrap(), &[1; 8]);
        assert_eq!(rvm.read(RegionId(2), 0, 8).unwrap(), &[2; 8]);
    }

    #[test]
    fn unmap_then_remap_recovers() {
        let dir = fresh_dir("remap");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        rvm.map(RegionId(3), 16).unwrap();
        let t = rvm.begin().unwrap();
        rvm.set_range(t, RegionId(3), 0, &[4; 16]).unwrap();
        rvm.commit(t).unwrap();
        rvm.unmap(RegionId(3));
        assert!(!rvm.is_mapped(RegionId(3)));
        rvm.map(RegionId(3), 16).unwrap();
        assert_eq!(rvm.read(RegionId(3), 0, 16).unwrap(), &[4; 16]);
    }
}
