//! Binary encoding of log records.
//!
//! Records are framed as:
//!
//! ```text
//! MAGIC(4) kind(1) tid(8) region(8) offset(8) len(8) data(len) crc(8)
//! ```
//!
//! The CRC (an FNV-1a over everything from `kind` to the end of `data`)
//! exists to detect the torn tail record a crash mid-append leaves behind;
//! replay stops at the first frame whose magic or checksum does not verify.

use bytes::{Buf, BufMut};

/// Frame magic, "RVM1".
pub const MAGIC: u32 = 0x5256_4D31;

/// FNV-1a 64-bit checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A raw frame read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Record discriminant (see [`crate::RecordKind`]).
    pub kind: u8,
    /// Transaction id.
    pub tid: u64,
    /// Region id (0 for control records).
    pub region: u64,
    /// Byte offset within the region.
    pub offset: u64,
    /// New-value bytes (empty for control records).
    pub data: Vec<u8>,
}

impl Frame {
    /// Appends the encoded frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u32(MAGIC);
        let body_start = out.len();
        out.put_u8(self.kind);
        out.put_u64(self.tid);
        out.put_u64(self.region);
        out.put_u64(self.offset);
        out.put_u64(self.data.len() as u64);
        out.extend_from_slice(&self.data);
        let crc = fnv1a(&out[body_start..]);
        out.put_u64(crc);
    }

    /// Byte length of the encoded frame.
    pub fn encoded_len(&self) -> usize {
        4 + 1 + 8 * 4 + self.data.len() + 8
    }

    /// Decodes one frame from the front of `buf`, advancing it.
    ///
    /// Returns `None` (without advancing) if the buffer holds no complete,
    /// well-formed frame — the signal that the remainder is a torn tail.
    pub fn decode(buf: &mut &[u8]) -> Option<Frame> {
        const HEADER: usize = 4 + 1 + 8 * 4;
        if buf.len() < HEADER {
            return None;
        }
        let mut peek = *buf;
        if peek.get_u32() != MAGIC {
            return None;
        }
        let body = &buf[4..];
        let mut p = peek;
        let kind = p.get_u8();
        let tid = p.get_u64();
        let region = p.get_u64();
        let offset = p.get_u64();
        let len = p.get_u64() as usize;
        let total = HEADER + len + 8;
        if buf.len() < total {
            return None;
        }
        let data = p[..len].to_vec();
        let mut q = &p[len..];
        let crc = q.get_u64();
        if crc != fnv1a(&body[..HEADER - 4 + len]) {
            return None;
        }
        *buf = &buf[total..];
        Some(Frame {
            kind,
            tid,
            region,
            offset,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let f = Frame {
            kind: 2,
            tid: 7,
            region: 3,
            offset: 96,
            data: vec![1, 2, 3],
        };
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        assert_eq!(bytes.len(), f.encoded_len());
        let mut slice = bytes.as_slice();
        let g = Frame::decode(&mut slice).expect("decodes");
        assert_eq!(f, g);
        assert!(slice.is_empty());
    }

    #[test]
    fn torn_tail_is_rejected_not_misread() {
        let f = Frame {
            kind: 1,
            tid: 9,
            region: 1,
            offset: 0,
            data: vec![9; 100],
        };
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        for cut in 1..bytes.len() {
            let mut slice = &bytes[..bytes.len() - cut];
            assert!(Frame::decode(&mut slice).is_none(), "cut={cut} decoded");
        }
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let f = Frame {
            kind: 1,
            tid: 9,
            region: 1,
            offset: 8,
            data: vec![5; 16],
        };
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        for i in 4..bytes.len() - 8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let mut slice = corrupt.as_slice();
            assert!(Frame::decode(&mut slice).is_none(), "flip at {i} decoded");
        }
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let frames: Vec<Frame> = (0..5)
            .map(|i| Frame {
                kind: 2,
                tid: i,
                region: i,
                offset: i * 8,
                data: vec![i as u8; i as usize],
            })
            .collect();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode(&mut bytes);
        }
        let mut slice = bytes.as_slice();
        let mut got = Vec::new();
        while let Some(f) = Frame::decode(&mut slice) {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    proptest! {
        #[test]
        fn prop_round_trip(kind in 0u8..4, tid in any::<u64>(), region in any::<u64>(),
                           offset in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let f = Frame { kind, tid, region, offset, data };
            let mut bytes = Vec::new();
            f.encode(&mut bytes);
            let mut slice = bytes.as_slice();
            prop_assert_eq!(Frame::decode(&mut slice), Some(f));
            prop_assert!(slice.is_empty());
        }
    }
}
