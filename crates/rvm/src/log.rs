//! The append-only redo log.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bmx_common::{BmxError, Result};

use crate::codec::Frame;

/// Typed view of a log frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// New-value record: `data` replaces the bytes of `region` at `offset`.
    SetRange {
        tid: u64,
        region: u64,
        offset: u64,
        data: Vec<u8>,
    },
    /// Transaction `tid` committed; its SetRange records take effect.
    Commit { tid: u64 },
}

/// Frame discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A [`LogRecord::SetRange`].
    SetRange = 1,
    /// A [`LogRecord::Commit`].
    Commit = 2,
}

impl LogRecord {
    fn to_frame(&self) -> Frame {
        match self {
            LogRecord::SetRange {
                tid,
                region,
                offset,
                data,
            } => Frame {
                kind: RecordKind::SetRange as u8,
                tid: *tid,
                region: *region,
                offset: *offset,
                data: data.clone(),
            },
            LogRecord::Commit { tid } => Frame {
                kind: RecordKind::Commit as u8,
                tid: *tid,
                region: 0,
                offset: 0,
                data: Vec::new(),
            },
        }
    }

    fn from_frame(f: Frame) -> Option<LogRecord> {
        match f.kind {
            k if k == RecordKind::SetRange as u8 => Some(LogRecord::SetRange {
                tid: f.tid,
                region: f.region,
                offset: f.offset,
                data: f.data,
            }),
            k if k == RecordKind::Commit as u8 => Some(LogRecord::Commit { tid: f.tid }),
            _ => None,
        }
    }
}

/// Handle on the on-disk redo log.
pub struct RedoLog {
    path: PathBuf,
    file: File,
    bytes_written: u64,
    records_written: u64,
}

impl RedoLog {
    /// Opens (creating if needed) the log at `path` in append mode.
    pub fn open(path: &Path) -> Result<RedoLog> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| BmxError::Rvm(format!("open log {path:?}: {e}")))?;
        let bytes_written = file
            .metadata()
            .map_err(|e| BmxError::Rvm(format!("stat log: {e}")))?
            .len();
        Ok(RedoLog {
            path: path.to_owned(),
            file,
            bytes_written,
            records_written: 0,
        })
    }

    /// Appends `records` as one contiguous write and flushes.
    ///
    /// A commit appends all its SetRange records followed by the Commit
    /// record in a single write, so a crash either preserves the whole group
    /// followed by its commit marker or leaves a torn (ignored) tail.
    pub fn append(&mut self, records: &[LogRecord]) -> Result<u64> {
        let mut buf = Vec::new();
        for r in records {
            r.to_frame().encode(&mut buf);
        }
        self.file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| BmxError::Rvm(format!("append: {e}")))?;
        self.bytes_written += buf.len() as u64;
        self.records_written += records.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Reads every well-formed record currently in the log.
    ///
    /// Stops at the first torn or corrupt frame (crash tail) and ignores the
    /// remainder, per the recovery contract.
    pub fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| BmxError::Rvm(format!("read log: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(BmxError::Rvm(format!("open log for read: {e}"))),
        }
        let mut slice = bytes.as_slice();
        let mut out = Vec::new();
        while let Some(frame) = Frame::decode(&mut slice) {
            match LogRecord::from_frame(frame) {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }

    /// Truncates the log to zero length (after its effects were applied to
    /// the data files).
    pub fn reset(&mut self) -> Result<()> {
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)
            .map_err(|e| BmxError::Rvm(format!("truncate log: {e}")))?;
        self.file
            .sync_data()
            .map_err(|e| BmxError::Rvm(format!("sync: {e}")))?;
        self.bytes_written = 0;
        Ok(())
    }

    /// Bytes currently in the log file.
    pub fn len_bytes(&self) -> u64 {
        self.bytes_written
    }

    /// Records appended through this handle since it was opened.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bmx-rvm-log-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("rvm.log")
    }

    #[test]
    fn append_and_read_back() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let mut log = RedoLog::open(&path).unwrap();
        let recs = vec![
            LogRecord::SetRange {
                tid: 1,
                region: 2,
                offset: 0,
                data: vec![1, 2, 3],
            },
            LogRecord::Commit { tid: 1 },
        ];
        log.append(&recs).unwrap();
        assert_eq!(RedoLog::read_all(&path).unwrap(), recs);
        assert_eq!(log.records_written(), 2);
    }

    #[test]
    fn torn_tail_is_ignored_on_read() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let mut log = RedoLog::open(&path).unwrap();
        let good = vec![LogRecord::Commit { tid: 1 }];
        log.append(&good).unwrap();
        // Simulate a crash mid-append: write half a frame by hand.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x52, 0x56, 0x4D, 0x31, 0x01]).unwrap();
        }
        assert_eq!(RedoLog::read_all(&path).unwrap(), good);
    }

    #[test]
    fn reset_empties_log() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        let mut log = RedoLog::open(&path).unwrap();
        log.append(&[LogRecord::Commit { tid: 5 }]).unwrap();
        log.reset().unwrap();
        assert_eq!(log.len_bytes(), 0);
        assert!(RedoLog::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn missing_log_reads_empty() {
        let path = tmp().with_extension("absent");
        let _ = std::fs::remove_file(&path);
        assert!(RedoLog::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn reopen_appends_after_existing_content() {
        let path = tmp();
        let _ = std::fs::remove_file(&path);
        {
            let mut log = RedoLog::open(&path).unwrap();
            log.append(&[LogRecord::Commit { tid: 1 }]).unwrap();
        }
        {
            let mut log = RedoLog::open(&path).unwrap();
            log.append(&[LogRecord::Commit { tid: 2 }]).unwrap();
        }
        let recs = RedoLog::read_all(&path).unwrap();
        assert_eq!(
            recs,
            vec![LogRecord::Commit { tid: 1 }, LogRecord::Commit { tid: 2 }]
        );
    }
}
