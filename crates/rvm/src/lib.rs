//! Lightweight recoverable virtual memory (RVM).
//!
//! BMX bases recovery on the recoverable virtual memory techniques of
//! Satyanarayanan et al. (paper, Sections 2.1 and 8): after a bunch is mapped
//! into memory, every modification to its address range has an associated log
//! entry and can be recovered after a system failure. RVM provides *simple
//! recoverable transactions with no support for nesting, distribution, or
//! concurrency control*, implemented with a disk-based redo log. The paper's
//! prototype follows O'Toole et al. in backing the from-space and the
//! to-space each with a file, with changes atomically transferred to disk by
//! RVM.
//!
//! This crate reproduces that substrate:
//!
//! * a [`Rvm`] manager owns a directory containing one data file per mapped
//!   region plus a single append-only redo log;
//! * [`Rvm::begin`] / [`Rvm::set_range`] / [`Rvm::commit`] /
//!   [`Rvm::abort`] implement flat no-nesting transactions — modifications
//!   are applied in place in memory, *new values* are logged at commit, old
//!   values are kept in an in-memory undo buffer so abort can restore them;
//! * [`Rvm::truncate`] applies the committed log suffix to the data files and
//!   resets the log;
//! * on (re)mapping, committed log records are replayed onto the region
//!   image, so a crash at any point loses at most uncommitted transactions.
//!   Torn tail records (a crash mid-append) are detected by a per-record
//!   checksum and ignored.
//!
//! # Examples
//!
//! A committed write survives a crash; an uncommitted one does not:
//!
//! ```
//! use bmx_rvm::{RegionId, Rvm, RvmOptions};
//!
//! # fn main() -> bmx_common::Result<()> {
//! let dir = std::env::temp_dir().join(format!("rvm-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! {
//!     let mut rvm = Rvm::open(&dir, RvmOptions::default())?;
//!     rvm.map(RegionId(1), 64)?;
//!     let t = rvm.begin()?;
//!     rvm.set_range(t, RegionId(1), 0, b"durable")?;
//!     rvm.commit(t)?;
//!     let t = rvm.begin()?;
//!     rvm.set_range(t, RegionId(1), 32, b"volatile")?;
//!     // Crash: dropped without commit.
//! }
//! let mut rvm = Rvm::open(&dir, RvmOptions::default())?;
//! rvm.map(RegionId(1), 64)?;
//! assert_eq!(rvm.read(RegionId(1), 0, 7)?, b"durable");
//! assert_eq!(rvm.read(RegionId(1), 32, 8)?, &[0u8; 8]);
//! # Ok(()) }
//! ```

pub mod codec;
pub mod log;
pub mod manager;

pub use log::{LogRecord, RecordKind};
pub use manager::{RegionId, Rvm, RvmOptions, Tid};
