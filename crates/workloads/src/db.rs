//! A design-database-like object graph, in the spirit of OO7.
//!
//! Three levels: a module object points at `assemblies` assembly objects,
//! each pointing at `parts_per_assembly` atomic parts; parts within one
//! assembly form a ring (so the graph has internal cycles, which a copying
//! collector must handle without duplication).

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};

/// A built database graph.
#[derive(Clone, Debug)]
pub struct DbGraph {
    /// The module (top) object.
    pub module: Addr,
    /// Assembly objects.
    pub assemblies: Vec<Addr>,
    /// Atomic parts, grouped by assembly.
    pub parts: Vec<Vec<Addr>>,
}

impl DbGraph {
    /// Total object count.
    pub fn object_count(&self) -> usize {
        1 + self.assemblies.len() + self.parts.iter().map(Vec::len).sum::<usize>()
    }
}

/// Builds the graph in `bunch` at `node` (the bunch's creator).
pub fn build_db(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    assemblies: usize,
    parts_per_assembly: usize,
) -> Result<DbGraph> {
    assert!(assemblies > 0 && parts_per_assembly > 0);
    // Module: one ref field per assembly.
    let module_refs: Vec<u64> = (0..assemblies as u64).collect();
    let module = cluster.alloc(
        node,
        bunch,
        &ObjSpec::with_refs(assemblies as u64, &module_refs),
    )?;
    let mut all_assemblies = Vec::new();
    let mut all_parts = Vec::new();
    for a in 0..assemblies {
        let asm_refs: Vec<u64> = (0..parts_per_assembly as u64).collect();
        let asm = cluster.alloc(
            node,
            bunch,
            &ObjSpec::with_refs(parts_per_assembly as u64 + 1, &asm_refs),
        )?;
        cluster.write_ref(node, module, a as u64, asm)?;
        // Parts: field 0 = ring next, field 1 = payload.
        let mut parts = Vec::new();
        for p in 0..parts_per_assembly {
            let part = cluster.alloc(node, bunch, &ObjSpec::with_refs(2, &[0]))?;
            cluster.write_data(node, part, 1, (a * parts_per_assembly + p) as u64)?;
            cluster.write_ref(node, asm, p as u64, part)?;
            parts.push(part);
        }
        // Close the ring.
        for p in 0..parts_per_assembly {
            let next = parts[(p + 1) % parts_per_assembly];
            cluster.write_ref(node, parts[p], 0, next)?;
        }
        all_assemblies.push(asm);
        all_parts.push(parts);
    }
    Ok(DbGraph {
        module,
        assemblies: all_assemblies,
        parts: all_parts,
    })
}

/// Checks the graph's structure at `node` (through local forwarding):
/// every assembly reachable from the module, every ring closed, payloads
/// exactly as built. Returns the number of parts verified.
pub fn verify_db(cluster: &Cluster, node: NodeId, g: &DbGraph) -> Result<usize> {
    verify_db_with(cluster, node, g, true)
}

/// Structural check only — rings and slots, ignoring payloads (for
/// workloads that mutate revision counters). Returns the parts verified.
pub fn verify_db_structure(cluster: &Cluster, node: NodeId, g: &DbGraph) -> Result<usize> {
    verify_db_with(cluster, node, g, false)
}

fn verify_db_with(
    cluster: &Cluster,
    node: NodeId,
    g: &DbGraph,
    check_payloads: bool,
) -> Result<usize> {
    let mut verified = 0;
    for (a, asm) in g.assemblies.iter().enumerate() {
        let got = cluster.read_ref(node, g.module, a as u64)?;
        assert!(
            cluster.ptr_eq(node, got, *asm),
            "module slot {a} lost its assembly"
        );
        let parts = &g.parts[a];
        for (p, part) in parts.iter().enumerate() {
            let got = cluster.read_ref(node, *asm, p as u64)?;
            assert!(
                cluster.ptr_eq(node, got, *part),
                "assembly {a} slot {p} lost its part"
            );
            if check_payloads {
                let payload = cluster.read_data(node, *part, 1)?;
                assert_eq!(
                    payload,
                    (a * parts.len() + p) as u64,
                    "payload of part {a}/{p}"
                );
            }
            let ring = cluster.read_ref(node, *part, 0)?;
            assert!(
                cluster.ptr_eq(node, ring, parts[(p + 1) % parts.len()]),
                "ring broken at {a}/{p}"
            );
            verified += 1;
        }
    }
    Ok(verified)
}

/// Drops assembly `idx` from the module (making it and its parts garbage
/// unless shared elsewhere).
pub fn drop_assembly(cluster: &mut Cluster, node: NodeId, g: &DbGraph, idx: usize) -> Result<()> {
    cluster.write_ref(node, g.module, idx as u64, Addr::NULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn build_and_verify() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let g = build_db(&mut c, n0, b, 3, 4).unwrap();
        assert_eq!(g.object_count(), 1 + 3 + 12);
        assert_eq!(verify_db(&c, n0, &g).unwrap(), 12);
    }

    #[test]
    fn survives_a_local_collection() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let g = build_db(&mut c, n0, b, 2, 5).unwrap();
        c.add_root(n0, g.module);
        let stats = c.run_bgc(n0, b).unwrap();
        assert_eq!(stats.live, g.object_count() as u64);
        assert_eq!(verify_db(&c, n0, &g).unwrap(), 10);
    }

    #[test]
    fn dropped_assembly_is_reclaimed() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let g = build_db(&mut c, n0, b, 2, 5).unwrap();
        c.add_root(n0, g.module);
        drop_assembly(&mut c, n0, &g, 1).unwrap();
        let stats = c.run_bgc(n0, b).unwrap();
        // Assembly 1 and its 5 parts die, despite their internal ring.
        assert_eq!(stats.reclaimed, 6);
        assert_eq!(stats.live, (g.object_count() - 6) as u64);
    }
}
