//! Linked-list workloads.
//!
//! Lists give the experiments precise control: every node is one object
//! with one pointer field and a payload, so live/garbage ratios and copy
//! volumes are exact.

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};

/// A built list: its head address and every cell in order.
#[derive(Clone, Debug)]
pub struct ListHandle {
    /// Address of the first cell.
    pub head: Addr,
    /// All cells, head first.
    pub cells: Vec<Addr>,
}

/// Cell layout: field 0 = next pointer, field 1 = payload.
pub const NEXT: u64 = 0;
/// Payload field index.
pub const PAYLOAD: u64 = 1;

/// Builds an `n`-cell list in `bunch` at `node` (which must be the bunch's
/// creator). Payloads are `base_payload + index`.
pub fn build_list(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    n: usize,
    base_payload: u64,
) -> Result<ListHandle> {
    assert!(n > 0, "empty lists have no head");
    let spec = ObjSpec::with_refs(2, &[NEXT]);
    let mut cells = Vec::with_capacity(n);
    for i in 0..n {
        let cell = cluster.alloc(node, bunch, &spec)?;
        cluster.write_data(node, cell, PAYLOAD, base_payload + i as u64)?;
        if let Some(&prev) = cells.last() {
            cluster.write_ref(node, prev, NEXT, cell)?;
        }
        cells.push(cell);
    }
    Ok(ListHandle {
        head: cells[0],
        cells,
    })
}

/// Walks the list from `head` at `node`, returning the payloads in order.
pub fn read_payloads(cluster: &Cluster, node: NodeId, head: Addr) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut cur = head;
    while !cur.is_null() {
        out.push(cluster.read_data(node, cur, PAYLOAD)?);
        cur = cluster.read_ref(node, cur, NEXT)?;
    }
    Ok(out)
}

/// Cuts the list after `keep` cells at `node`, making the tail garbage.
/// Returns the number of detached cells.
pub fn truncate_list(
    cluster: &mut Cluster,
    node: NodeId,
    handle: &ListHandle,
    keep: usize,
) -> Result<usize> {
    assert!(keep > 0 && keep <= handle.cells.len());
    if keep == handle.cells.len() {
        return Ok(0);
    }
    cluster.write_ref(node, handle.cells[keep - 1], NEXT, Addr::NULL)?;
    Ok(handle.cells.len() - keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn build_and_walk() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let list = build_list(&mut c, n0, b, 10, 100).unwrap();
        assert_eq!(list.cells.len(), 10);
        let payloads = read_payloads(&c, n0, list.head).unwrap();
        assert_eq!(payloads, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn truncate_detaches_tail() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let list = build_list(&mut c, n0, b, 8, 0).unwrap();
        let cut = truncate_list(&mut c, n0, &list, 3).unwrap();
        assert_eq!(cut, 5);
        assert_eq!(read_payloads(&c, n0, list.head).unwrap().len(), 3);
    }

    #[test]
    fn lists_span_segments() {
        // A tiny segment forces the bunch to grow while building.
        let mut cfg = ClusterConfig::with_nodes(1);
        cfg.segment_words = 64;
        let mut c = Cluster::new(cfg);
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let list = build_list(&mut c, n0, b, 100, 0).unwrap();
        assert_eq!(read_payloads(&c, n0, list.head).unwrap().len(), 100);
        assert!(c.server.borrow().bunch(b).unwrap().segments.len() > 1);
    }
}
