//! Inter-bunch cycle workloads — the group collector's prey (Section 7).

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};

/// Builds a ring of `len` objects, each in its own fresh bunch created at
/// `node`, with each object pointing at the next bunch's object. Returns
/// `(bunches, objects)` in ring order.
///
/// Every link is an inter-bunch reference, so per-bunch collection alone can
/// never reclaim the ring: each bunch's object stays reachable from the
/// previous bunch's scion. Only a group collection over all of them can.
pub fn build_inter_bunch_ring(
    cluster: &mut Cluster,
    node: NodeId,
    len: usize,
) -> Result<(Vec<BunchId>, Vec<Addr>)> {
    assert!(len >= 2, "a ring needs at least two bunches");
    let mut bunches = Vec::with_capacity(len);
    let mut objs = Vec::with_capacity(len);
    for _ in 0..len {
        let b = cluster.create_bunch(node)?;
        let o = cluster.alloc(node, b, &ObjSpec::with_refs(2, &[0, 1]))?;
        bunches.push(b);
        objs.push(o);
    }
    for i in 0..len {
        cluster.write_ref(node, objs[i], 0, objs[(i + 1) % len])?;
    }
    Ok((bunches, objs))
}

/// Builds `count` disjoint inter-bunch rings of length `len` at `node`.
pub fn build_rings(
    cluster: &mut Cluster,
    node: NodeId,
    count: usize,
    len: usize,
) -> Result<Vec<(Vec<BunchId>, Vec<Addr>)>> {
    (0..count)
        .map(|_| build_inter_bunch_ring(cluster, node, len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn per_bunch_collection_cannot_reclaim_the_ring() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let (bunches, _objs) = build_inter_bunch_ring(&mut c, n0, 4).unwrap();
        // No roots at all: the ring is garbage. Per-bunch BGCs keep each
        // object alive via the inter-bunch scion from its predecessor.
        for _round in 0..3 {
            let mut reclaimed = 0;
            for &b in &bunches {
                reclaimed += c.run_bgc(n0, b).unwrap().reclaimed;
            }
            assert_eq!(reclaimed, 0, "BGC alone must never reclaim the cycle");
        }
    }

    #[test]
    fn group_collection_reclaims_the_ring() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let (_bunches, objs) = build_inter_bunch_ring(&mut c, n0, 4).unwrap();
        let stats = c.run_ggc(n0).unwrap();
        assert_eq!(stats.reclaimed, objs.len() as u64);
        assert_eq!(stats.live, 0);
    }

    #[test]
    fn rooted_ring_survives_group_collection() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let (_bunches, objs) = build_inter_bunch_ring(&mut c, n0, 5).unwrap();
        c.add_root(n0, objs[2]);
        let stats = c.run_ggc(n0).unwrap();
        assert_eq!(stats.reclaimed, 0);
        assert_eq!(stats.live, 5);
        // The ring is still intact.
        let mut cur = objs[2];
        for _ in 0..5 {
            cur = c.read_ref(n0, cur, 0).unwrap();
        }
        assert!(c.ptr_eq(n0, cur, objs[2]));
    }
}
