//! Binary-tree workloads: deep structures exercising trace depth, subtree
//! detachment, and structural verification after relocation.

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};

/// Field layout of a tree node: left, right, payload.
pub const LEFT: u64 = 0;
/// Right-child pointer field.
pub const RIGHT: u64 = 1;
/// Payload field.
pub const VALUE: u64 = 2;

/// Builds a complete binary tree of the given `depth` (depth 0 = a single
/// node) in `bunch` at `node`. Payloads are the in-order index. Returns the
/// root and the total node count.
pub fn build_tree(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    depth: u32,
) -> Result<(Addr, u64)> {
    let mut counter = 0;
    let root = build_rec(cluster, node, bunch, depth, &mut counter)?;
    Ok((root, counter))
}

fn build_rec(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    depth: u32,
    counter: &mut u64,
) -> Result<Addr> {
    let left = if depth > 0 {
        Some(build_rec(cluster, node, bunch, depth - 1, counter)?)
    } else {
        None
    };
    let me = cluster.alloc(node, bunch, &ObjSpec::with_refs(3, &[LEFT, RIGHT]))?;
    cluster.write_data(node, me, VALUE, *counter)?;
    *counter += 1;
    if let Some(l) = left {
        cluster.write_ref(node, me, LEFT, l)?;
    }
    if depth > 0 {
        let right = build_rec(cluster, node, bunch, depth - 1, counter)?;
        cluster.write_ref(node, me, RIGHT, right)?;
    }
    Ok(me)
}

/// In-order traversal of payloads (through local forwarding).
pub fn in_order(cluster: &Cluster, node: NodeId, root: Addr) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    walk(cluster, node, root, &mut out)?;
    Ok(out)
}

fn walk(cluster: &Cluster, node: NodeId, cur: Addr, out: &mut Vec<u64>) -> Result<()> {
    if cur.is_null() {
        return Ok(());
    }
    walk(cluster, node, cluster.read_ref(node, cur, LEFT)?, out)?;
    out.push(cluster.read_data(node, cur, VALUE)?);
    walk(cluster, node, cluster.read_ref(node, cur, RIGHT)?, out)
}

/// Detaches one child subtree, turning it into garbage. Returns the number
/// of detached nodes (for a complete tree of the child's height).
pub fn prune(
    cluster: &mut Cluster,
    node: NodeId,
    parent: Addr,
    side: u64,
    child_depth: u32,
) -> Result<u64> {
    cluster.write_ref(node, parent, side, Addr::NULL)?;
    Ok((1u64 << (child_depth + 1)) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn build_and_traverse() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let (root, count) = build_tree(&mut c, n0, b, 3).unwrap();
        assert_eq!(count, 15);
        let values = in_order(&c, n0, root).unwrap();
        assert_eq!(values, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn tree_survives_collection_in_order() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let (root, count) = build_tree(&mut c, n0, b, 4).unwrap();
        let rid = c.add_root(n0, root);
        let s = c.run_bgc(n0, b).unwrap();
        assert_eq!(s.live, count);
        let root_now = c.root(n0, rid).unwrap();
        assert_eq!(
            in_order(&c, n0, root_now).unwrap(),
            (0..count).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pruned_subtree_is_reclaimed() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let (root, count) = build_tree(&mut c, n0, b, 4).unwrap();
        c.add_root(n0, root);
        let dropped = prune(&mut c, n0, root, LEFT, 3).unwrap();
        assert_eq!(dropped, 15);
        let s = c.run_bgc(n0, b).unwrap();
        assert_eq!(s.reclaimed, dropped);
        assert_eq!(s.live, count - dropped);
    }
}
