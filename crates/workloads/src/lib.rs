//! Synthetic workloads for the BMX experiments.
//!
//! The paper motivates the system with "financial or design databases,
//! cooperative work and exploratory tools similar to the World-Wide-Web"
//! (Section 1) — applications with intricate, widely shared object graphs.
//! This crate builds such graphs on a [`bmx::Cluster`]:
//!
//! * [`lists`] — linked lists and detachable list segments (precise garbage
//!   ratios for collector measurements);
//! * [`db`] — a design-database-like hierarchy (modules → assemblies →
//!   parts, in the spirit of the OO7 benchmark);
//! * [`web`] — a random exploratory-tool graph with long-tailed out-degree;
//! * [`trees`] — complete binary trees (trace depth, subtree pruning);
//! * [`cycles`] — inter-bunch reference rings (the group collector's prey);
//! * [`churn`] — mutation traces that create garbage and migrate ownership.

pub mod churn;
pub mod cycles;
pub mod db;
pub mod lists;
pub mod trees;
pub mod web;

pub use db::DbGraph;
pub use lists::ListHandle;
