//! Churn traces: mutation workloads that create garbage and migrate
//! ownership, for steady-state collector measurements.

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a churn run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnOutcome {
    /// Objects allocated during the run.
    pub allocated: u64,
    /// Objects detached (turned into garbage).
    pub detached: u64,
    /// Write-token acquisitions performed.
    pub writes: u64,
}

/// Repeatedly replaces the target of a rooted one-slot "registry" object
/// with freshly allocated small objects: each replacement detaches the
/// previous target. After `rounds` rounds, `rounds - 1` objects are
/// unreachable garbage.
pub fn register_churn(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    registry: Addr,
    rounds: usize,
) -> Result<ChurnOutcome> {
    let mut out = ChurnOutcome::default();
    for i in 0..rounds {
        let obj = cluster.alloc(node, bunch, &ObjSpec::data(2))?;
        cluster.write_data(node, obj, 0, i as u64)?;
        cluster.write_ref(node, registry, 0, obj)?;
        out.allocated += 1;
        if i > 0 {
            out.detached += 1;
        }
    }
    Ok(out)
}

/// Bounces the write token of each object in `objs` around the cluster's
/// nodes `hops` times, mutating a payload field every hop. Exercises
/// ownership migration (and, with stub-holding objects, intra-bunch SSP
/// creation).
pub fn ownership_migration(
    cluster: &mut Cluster,
    objs: &[Addr],
    hops: usize,
    seed: u64,
) -> Result<ChurnOutcome> {
    let mut out = ChurnOutcome::default();
    let n = cluster.nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    for &obj in objs {
        for _ in 0..hops {
            let node = NodeId(rng.gen_range(0..n));
            cluster.acquire_write(node, obj)?;
            let v = cluster.read_data(node, obj, 1)?;
            cluster.write_data(node, obj, 1, v + 1)?;
            cluster.release(node, obj)?;
            out.writes += 1;
        }
    }
    Ok(out)
}

/// One round of the mixed chaos workload: registry churn at every listed
/// `(node, bunch, registry)` site, one ownership-migration hop over
/// `migrate`, a collection at the round-robin-chosen site, and a slice of
/// background clock ([`Cluster::step`]) so fault transitions and the retry
/// daemon run *between* mutator bursts.
///
/// Chaos soaks call this in a loop against a cluster whose network carries
/// a fault plan: the mutator keeps creating garbage and bouncing tokens
/// while links drop, duplicate, partition and crash under it. Everything is
/// deterministic in `(round, seed)`.
pub fn chaos_round(
    cluster: &mut Cluster,
    sites: &[(NodeId, BunchId, Addr)],
    migrate: &[Addr],
    round: usize,
    seed: u64,
) -> Result<ChurnOutcome> {
    let mut out = ChurnOutcome::default();
    for &(node, bunch, registry) in sites {
        let o = register_churn(cluster, node, bunch, registry, 2)?;
        out.allocated += o.allocated;
        out.detached += o.detached;
    }
    if !migrate.is_empty() {
        let o = ownership_migration(
            cluster,
            migrate,
            1,
            seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )?;
        out.writes += o.writes;
    }
    if !sites.is_empty() {
        let (node, bunch, _) = sites[round % sites.len()];
        cluster.run_bgc(node, bunch)?;
    }
    cluster.step(20)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn churn_creates_reclaimable_garbage() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let registry = c.alloc(n0, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(n0, registry);
        let out = register_churn(&mut c, n0, b, registry, 20).unwrap();
        assert_eq!(out.allocated, 20);
        assert_eq!(out.detached, 19);
        let stats = c.run_bgc(n0, b).unwrap();
        assert_eq!(stats.reclaimed, 19);
        assert_eq!(stats.live, 2, "registry plus the last object");
    }

    #[test]
    fn migration_counts_every_hop() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(3));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let obj = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
        c.map_bunch(NodeId(1), b, n0).unwrap();
        c.map_bunch(NodeId(2), b, n0).unwrap();
        let out = ownership_migration(&mut c, &[obj], 6, 99).unwrap();
        assert_eq!(out.writes, 6);
        // The payload saw every increment, wherever the token went.
        let holder = (0..3)
            .map(NodeId)
            .find(|&n| c.engine.is_owner(n, c.oid_at_local(n, obj).unwrap()))
            .expect("someone owns it");
        assert_eq!(c.read_data(holder, obj, 1).unwrap(), 6);
    }
}
