//! A web-like exploratory graph: random links with long-tailed out-degree.

use bmx::{Cluster, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum pointer fields per page object.
pub const MAX_LINKS: u64 = 6;

/// Builds `n` "pages" in `bunch` at `node`, then wires random links: each
/// page links to a geometric number of earlier pages (so the graph is
/// acyclic but bushy). Returns the pages in allocation order; page 0 is the
/// natural root.
pub fn build_web(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    n: usize,
    seed: u64,
) -> Result<Vec<Addr>> {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let refs: Vec<u64> = (0..MAX_LINKS).collect();
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        pages.push(cluster.alloc(node, bunch, &ObjSpec::with_refs(MAX_LINKS + 1, &refs))?);
    }
    for i in 1..n {
        // Long-tailed link count: mostly 1-2, occasionally more. Field
        // MAX_LINKS-1 is reserved for the spine, so random links use the
        // fields below it.
        let mut links = 1;
        while links < MAX_LINKS - 1 && rng.gen_bool(0.4) {
            links += 1;
        }
        for f in 0..links {
            let target = pages[rng.gen_range(0..i)];
            // Cross-links in both directions make the graph bushy; the
            // spine below keeps everything reachable regardless.
            if rng.gen_bool(0.5) {
                cluster.write_ref(node, pages[i], f, target)?;
            } else {
                cluster.write_ref(node, target, f, pages[i])?;
            }
        }
        // The spine: page i-1's reserved slot points at page i, written
        // exactly once and never clobbered, guaranteeing reachability from
        // page 0.
        cluster.write_ref(node, pages[i - 1], MAX_LINKS - 1, pages[i])?;
    }
    Ok(pages)
}

/// Counts pages reachable from `root` at `node`.
pub fn reachable_pages(cluster: &Cluster, node: NodeId, root: Addr) -> Result<usize> {
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![root];
    while let Some(a) = stack.pop() {
        if a.is_null() {
            continue;
        }
        let canon = {
            // Resolve through forwarding so copies do not double-count.
            let dir = &cluster.gc.node(node).directory;
            dir.resolve(a)
        };
        if !seen.insert(canon) {
            continue;
        }
        for f in 0..MAX_LINKS {
            stack.push(cluster.read_ref(node, canon, f)?);
        }
    }
    Ok(seen.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::ClusterConfig;

    #[test]
    fn web_is_fully_reachable_from_root() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let pages = build_web(&mut c, n0, b, 50, 42).unwrap();
        assert_eq!(reachable_pages(&c, n0, pages[0]).unwrap(), 50);
    }

    #[test]
    fn web_survives_collection() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let pages = build_web(&mut c, n0, b, 40, 7).unwrap();
        c.add_root(n0, pages[0]);
        let stats = c.run_bgc(n0, b).unwrap();
        assert_eq!(stats.live, 40);
        assert_eq!(reachable_pages(&c, n0, pages[0]).unwrap(), 40);
    }

    #[test]
    fn same_seed_same_graph() {
        let build = |seed| {
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let n0 = NodeId(0);
            let b = c.create_bunch(n0).unwrap();
            let pages = build_web(&mut c, n0, b, 30, seed).unwrap();
            let mut edges = Vec::new();
            for &p in &pages {
                for f in 0..MAX_LINKS {
                    edges.push(c.read_ref(n0, p, f).unwrap());
                }
            }
            edges
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));
    }
}
