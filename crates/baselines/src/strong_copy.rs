//! The strongly consistent copying collector — Section 4.2's rejected
//! "obvious solution".
//!
//! "One obvious solution to this problem would be to acquire the write
//! token of every live object before copying it. However, this solution is
//! undesirable, since it would trigger memory consistency actions that
//! could disrupt the application's working-set. For example, each readable
//! copy would be invalidated."
//!
//! [`strong_bgc`] does exactly that: it traces the local replica of a bunch,
//! acquires the write token for every live object (attributed to the
//! collector in the counters), and only then copies — which, thanks to the
//! acquisitions, it may do for *every* live object, not just locally owned
//! ones. The per-replica independence of the real BGC is lost: the cost now
//! scales with the replication degree (experiment E1) and readers are
//! invalidated (experiment E2).

use std::collections::BTreeSet;

use bmx::{Cluster, ClusterMsg};
use bmx_addr::object;
use bmx_common::{Addr, BunchId, NodeId, Oid, Result, StatKind};
use bmx_dsm::{AcquireStart, DsmPacket, DsmShared, Token};
use bmx_gc::CollectStats;
use bmx_net::MsgClass;

/// Runs the token-acquiring copying collection of `bunch` at `node`.
pub fn strong_bgc(cluster: &mut Cluster, node: NodeId, bunch: BunchId) -> Result<CollectStats> {
    // Phase 1: find the live objects of the local replica (same roots as
    // the real BGC).
    let live = trace_local(cluster, node, bunch)?;

    // Phase 2: acquire the write token for each — the step the paper's
    // design exists to avoid. Token acquisitions and the invalidations they
    // trigger are attributed to the collector.
    let inval_before: u64 = (0..cluster.nodes())
        .map(|i| cluster.stats[i as usize].get(StatKind::Invalidations))
        .sum();
    for &oid in &live {
        let already = cluster.engine.token(node, oid) == Token::Write;
        if already {
            continue;
        }
        cluster.stats[node.0 as usize].bump(StatKind::GcTokenAcquires);
        let started = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = cluster;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.start_write(node, oid, &mut sh, &mut send)?
        };
        if started == AcquireStart::Requested {
            cluster.pump()?;
            // The collector wants the token, not a critical section: it
            // never calls `lock()`, so release the grant-time reservation
            // the arriving grant placed for the outstanding wait —
            // otherwise the replica stays barred to remote requests.
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = cluster;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.cancel_wait(node, oid, &mut sh, &mut send)?;
        }
    }
    let inval_after: u64 = (0..cluster.nodes())
        .map(|i| cluster.stats[i as usize].get(StatKind::Invalidations))
        .sum();
    cluster.stats[node.0 as usize].add(StatKind::GcInvalidations, inval_after - inval_before);

    // Phase 3: with every live object now locally owned, the ordinary
    // collection copies all of them.
    cluster.run_bgc(node, bunch)
}

/// Local-replica trace with the BGC's root set, returning the live OIDs.
fn trace_local(cluster: &Cluster, node: NodeId, bunch: BunchId) -> Result<Vec<Oid>> {
    let ns = cluster.gc.node(node);
    let mem = &cluster.mems[node.0 as usize];
    let mut roots: Vec<Addr> = ns.roots.values().copied().collect();
    if let Some(brs) = ns.bunch(bunch) {
        roots.extend(brs.scion_table.inter().iter().map(|s| s.target_addr));
        roots.extend(
            brs.scion_table
                .intra()
                .iter()
                .filter_map(|s| ns.directory.addr_of(s.oid)),
        );
    }
    for (oid, st) in cluster.engine.replicas(node) {
        if st.bunch == bunch && !st.entering.is_empty() {
            if let Some(a) = ns.directory.addr_of(oid) {
                roots.push(a);
            }
        }
    }
    let mut live = Vec::new();
    let mut seen = BTreeSet::new();
    let mut stack = roots;
    while let Some(a) = stack.pop() {
        if a.is_null() {
            continue;
        }
        let a = ns.directory.resolve(a);
        if !seen.insert(a) {
            continue;
        }
        let Ok(v) = object::view(mem, a) else {
            continue;
        };
        if cluster.gc.bunch_of(a) != Some(bunch) {
            continue;
        }
        live.push(v.oid);
        for (_, t) in object::ref_fields(mem, a)? {
            stack.push(t);
        }
    }
    Ok(live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx::{ClusterConfig, ObjSpec};

    /// Build a 3-node cluster where nodes 1 and 2 hold read replicas of a
    /// small list owned by node 0.
    fn replicated_fixture() -> (Cluster, Vec<Addr>, BunchId) {
        let mut c = Cluster::new(ClusterConfig::with_nodes(3));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let mut objs = Vec::new();
        let mut prev: Option<Addr> = None;
        for i in 0..5 {
            let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
            c.write_data(n0, o, 1, i).unwrap();
            if let Some(p) = prev {
                c.write_ref(n0, p, 0, o).unwrap();
            }
            prev = Some(o);
            objs.push(o);
        }
        c.add_root(n0, objs[0]);
        c.map_bunch(NodeId(1), b, n0).unwrap();
        c.map_bunch(NodeId(2), b, n0).unwrap();
        for &o in &objs {
            c.acquire_read(NodeId(1), o).unwrap();
            c.release(NodeId(1), o).unwrap();
            c.acquire_read(NodeId(2), o).unwrap();
            c.release(NodeId(2), o).unwrap();
        }
        (c, objs, b)
    }

    #[test]
    fn strong_collector_acquires_tokens_and_invalidates_readers() {
        let (mut c, objs, b) = replicated_fixture();
        let stats = strong_bgc(&mut c, NodeId(0), b).unwrap();
        assert_eq!(stats.live, objs.len() as u64);
        assert_eq!(
            stats.copied,
            objs.len() as u64,
            "everything owned, everything copied"
        );
        let gc_acqs = c.stats[0].get(StatKind::GcTokenAcquires);
        assert!(gc_acqs > 0, "the baseline must acquire tokens");
        let gc_inval = c.stats[0].get(StatKind::GcInvalidations);
        assert!(gc_inval > 0, "read replicas must have been invalidated");
        // Readers lost their tokens.
        for &o in &objs {
            assert_eq!(c.token_at(NodeId(1), o).unwrap(), Token::None);
            assert_eq!(c.token_at(NodeId(2), o).unwrap(), Token::None);
        }
    }

    #[test]
    fn real_bgc_on_same_fixture_disturbs_nothing() {
        let (mut c, objs, b) = replicated_fixture();
        let stats = c.run_bgc(NodeId(0), b).unwrap();
        assert_eq!(stats.live, objs.len() as u64);
        c.assert_gc_acquired_no_tokens();
        assert_eq!(c.total_stat(StatKind::GcInvalidations), 0);
        // Readers keep their tokens.
        for &o in &objs {
            assert_eq!(c.token_at(NodeId(1), o).unwrap(), Token::Read);
            assert_eq!(c.token_at(NodeId(2), o).unwrap(), Token::Read);
        }
    }
}
