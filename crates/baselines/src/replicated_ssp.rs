//! The replicated-inter-bunch-SSP ablation (Section 3.2).
//!
//! "We decided to use intra-bunch SSPs, instead of replicating inter-bunch
//! SSPs, in order to reduce the number of scion messages and the amount of
//! memory consumed for GC purposes. In fact, if inter-bunch SSPs were
//! replicated, each time object ownership changes, a new inter-bunch SSP
//! would have to be created, which would imply sending the corresponding
//! scion-message. By using intra-bunch SSPs, no extra messages are needed,
//! because the information is piggy-backed onto consistency protocol
//! messages. In addition, an inter-bunch SSP occupies more memory than an
//! intra-bunch SSP."
//!
//! This module replays an ownership-migration trace under both strategies
//! and accounts messages and metadata memory, using the paper's own cost
//! model: an inter-bunch SSP is bigger than an intra-bunch SSP, and only
//! the replicated strategy sends scion-messages on migration.

use std::collections::BTreeSet;

use bmx_common::NodeId;

/// Metadata footprints, word-denominated (matching `bmx-gc`'s types: an
/// inter-bunch stub carries id, bunches, oids, address, scion site — seven
/// words; an intra-bunch stub carries oid, bunch, node — three words).
pub const INTER_SSP_WORDS: u64 = 7;
/// An intra-bunch SSP half (oid, bunch, peer node).
pub const INTRA_SSP_WORDS: u64 = 3;

/// Which design to account.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SspStrategy {
    /// The paper's design: intra-bunch SSPs, piggy-backed creation.
    IntraBunch,
    /// The ablation: re-create the inter-bunch SSPs at every new owner.
    ReplicatedInter,
}

/// An ownership-migration trace: each entry moves one stub-holding object
/// to a new owner node.
#[derive(Clone, Debug, Default)]
pub struct MigrationTrace {
    /// Number of inter-bunch stubs the migrating object holds (created at
    /// its original node).
    pub stubs_per_object: u64,
    /// Sequence of owner nodes each object visits (first entry = creator).
    pub paths: Vec<Vec<NodeId>>,
}

impl MigrationTrace {
    /// A trace of `objects` objects, each holding `stubs_per_object` stubs,
    /// each visiting `hops` distinct nodes round-robin over `nodes` nodes.
    pub fn round_robin(objects: usize, stubs_per_object: u64, hops: usize, nodes: u32) -> Self {
        let paths = (0..objects)
            .map(|o| {
                (0..=hops)
                    .map(|h| NodeId(((o + h) % nodes as usize) as u32))
                    .collect()
            })
            .collect();
        MigrationTrace {
            stubs_per_object,
            paths,
        }
    }

    /// Total migrations in the trace.
    pub fn migrations(&self) -> u64 {
        self.paths
            .iter()
            .map(|p| (p.len().saturating_sub(1)) as u64)
            .sum()
    }
}

/// Accounted costs of a strategy over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SspCost {
    /// Extra scion-messages sent because of migrations.
    pub scion_messages: u64,
    /// Words of SSP metadata resident at the end (stubs + scions).
    pub metadata_words: u64,
    /// SSP records resident at the end.
    pub records: u64,
}

/// Replays `trace` under `strategy` and returns the accounted cost.
///
/// Under [`SspStrategy::IntraBunch`], each migration creates one intra-bunch
/// stub/scion pair (piggy-backed onto the write-token grant: zero messages)
/// unless the object already has a pair between those two nodes. Under
/// [`SspStrategy::ReplicatedInter`], each migration re-creates every
/// inter-bunch stub at the new owner and sends one scion-message per stub
/// (the scion site must learn of the new stub replica).
pub fn replay(trace: &MigrationTrace, strategy: SspStrategy) -> SspCost {
    let mut cost = SspCost::default();
    for path in &trace.paths {
        // Creation-site stubs + their scions exist under both strategies.
        cost.records += 2 * trace.stubs_per_object;
        cost.metadata_words += 2 * trace.stubs_per_object * INTER_SSP_WORDS;
        match strategy {
            SspStrategy::IntraBunch => {
                // With chain compression (see bmx-gc), every owner that is
                // not the stub site holds exactly one intra stub pointing
                // directly at the site; the site holds the matching scions.
                let site = path[0];
                let holders: BTreeSet<NodeId> =
                    path.iter().copied().filter(|&n| n != site).collect();
                cost.records += 2 * holders.len() as u64;
                cost.metadata_words += 2 * holders.len() as u64 * INTRA_SSP_WORDS;
            }
            SspStrategy::ReplicatedInter => {
                let mut holders: BTreeSet<NodeId> = BTreeSet::new();
                holders.insert(path[0]);
                for w in path.windows(2) {
                    if holders.insert(w[1]) {
                        // New holder: replicate every stub + notify the
                        // scion site per stub.
                        cost.records += trace.stubs_per_object;
                        cost.metadata_words += trace.stubs_per_object * INTER_SSP_WORDS;
                        cost.scion_messages += trace.stubs_per_object;
                    }
                }
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_migration_no_difference() {
        let trace = MigrationTrace::round_robin(10, 2, 0, 4);
        let a = replay(&trace, SspStrategy::IntraBunch);
        let b = replay(&trace, SspStrategy::ReplicatedInter);
        assert_eq!(a, b);
        assert_eq!(a.scion_messages, 0);
    }

    #[test]
    fn intra_ssp_sends_no_messages() {
        let trace = MigrationTrace::round_robin(10, 3, 5, 4);
        let a = replay(&trace, SspStrategy::IntraBunch);
        assert_eq!(a.scion_messages, 0, "piggy-backed onto grants");
    }

    #[test]
    fn replication_pays_messages_and_memory() {
        let trace = MigrationTrace::round_robin(10, 3, 3, 8);
        let intra = replay(&trace, SspStrategy::IntraBunch);
        let repl = replay(&trace, SspStrategy::ReplicatedInter);
        assert!(repl.scion_messages > 0);
        assert!(
            repl.metadata_words > intra.metadata_words,
            "inter SSPs are bigger and duplicated: {repl:?} vs {intra:?}"
        );
    }

    #[test]
    fn revisiting_an_owner_is_free_under_both() {
        // Path 0 -> 1 -> 0 -> 1: two distinct holders only.
        let trace = MigrationTrace {
            stubs_per_object: 1,
            paths: vec![vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]],
        };
        let repl = replay(&trace, SspStrategy::ReplicatedInter);
        assert_eq!(
            repl.scion_messages, 1,
            "only the first visit to node 1 replicates"
        );
        let intra = replay(&trace, SspStrategy::IntraBunch);
        // Compression: node 1 is the only non-site holder -> one SSP pair
        // (plus the creation-site inter SSP).
        assert_eq!(intra.records, 2 + 2);
    }
}
