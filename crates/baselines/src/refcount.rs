//! Bevan-style distributed reference counting over an unreliable network.
//!
//! Section 6.1: "The main advantage of sending messages with tables
//! containing all the reachability information, over sending
//! increment/decrement messages, is that the former are idempotent. In case
//! of message loss they can be resent without the need for a reliable
//! communication protocol."
//!
//! This module demonstrates the contrast. A [`RefCountSim`] tracks, per
//! object, the owner-side count and the ground-truth number of remote
//! references; reference creations and deletions send `Inc`/`Dec` messages
//! through a (possibly lossy) [`Network`]. After the trace drains:
//!
//! * a count of zero with live references ⇒ **unsafe** (the owner would
//!   reclaim a live object);
//! * a positive count with no references ⇒ **leak**;
//! * re-sending messages cannot help, because inc/dec are not idempotent —
//!   whereas the BMX reachability tables can simply be re-sent (the E5
//!   harness shows the same trace is fully recovered under the table
//!   scheme).

use std::collections::BTreeMap;

use bmx_common::{NodeId, Oid, SplitMix64};
use bmx_net::{MsgClass, Network, NetworkConfig, WireSize};

/// One inc/dec message.
#[derive(Clone, Copy, Debug)]
pub enum RcMsg {
    /// A remote reference to the object was created.
    Inc(Oid),
    /// A remote reference to the object was deleted.
    Dec(Oid),
}

impl WireSize for RcMsg {
    fn wire_size(&self) -> u64 {
        16
    }
}

/// Outcome of a reference-counting run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefCountOutcome {
    /// Objects whose owner-side count hit zero while references exist:
    /// live objects that would be reclaimed. The safety violation.
    pub unsafe_reclaims: u64,
    /// Objects whose count stayed positive with no references: never
    /// reclaimed. The liveness failure.
    pub leaks: u64,
    /// Objects whose count matches ground truth.
    pub correct: u64,
    /// Messages dropped by the network.
    pub dropped: u64,
}

/// The reference-counting world: one owner node holding counts, `holders`
/// nodes creating and dropping references.
pub struct RefCountSim {
    net: Network<RcMsg>,
    counts: BTreeMap<Oid, i64>,
    truth: BTreeMap<Oid, i64>,
    holders: u32,
    rng: SplitMix64,
}

/// The owner's node id in the simulation.
const OWNER: NodeId = NodeId(0);

impl RefCountSim {
    /// Creates a world with `objects` objects and `holders` reference-holder
    /// nodes, over a network dropping GC traffic with probability `drop_p`.
    pub fn new(objects: u64, holders: u32, drop_p: f64, seed: u64) -> Self {
        let cfg = NetworkConfig::lossless(1).with_drop(MsgClass::GcBackground, drop_p);
        RefCountSim {
            net: Network::new(cfg),
            counts: (1..=objects).map(|i| (Oid(i), 0)).collect(),
            truth: (1..=objects).map(|i| (Oid(i), 0)).collect(),
            holders,
            rng: SplitMix64::new(seed ^ 0x5EED_5A17),
        }
    }

    /// Runs `events` random reference creations/deletions and drains the
    /// network, applying surviving messages to the owner-side counts.
    pub fn run(&mut self, events: u64) -> RefCountOutcome {
        let objects: Vec<Oid> = self.truth.keys().copied().collect();
        for _ in 0..events {
            let oid = objects[self.rng.next_below(objects.len() as u64) as usize];
            let holder = NodeId(1 + self.rng.next_below(self.holders as u64) as u32);
            let t = self.truth.get_mut(&oid).expect("known oid");
            // Deleting requires an existing reference; otherwise create.
            if *t > 0 && self.rng.chance(0.5) {
                *t -= 1;
                self.net
                    .send(holder, OWNER, MsgClass::GcBackground, RcMsg::Dec(oid));
            } else {
                *t += 1;
                self.net
                    .send(holder, OWNER, MsgClass::GcBackground, RcMsg::Inc(oid));
            }
        }
        // Drain.
        loop {
            let due = self.net.tick();
            if due.is_empty() && self.net.in_flight() == 0 {
                break;
            }
            for env in due {
                match env.payload {
                    RcMsg::Inc(oid) => *self.counts.get_mut(&oid).expect("known") += 1,
                    RcMsg::Dec(oid) => *self.counts.get_mut(&oid).expect("known") -= 1,
                }
            }
        }
        self.evaluate()
    }

    fn evaluate(&self) -> RefCountOutcome {
        let mut out = RefCountOutcome {
            dropped: self.net.total_dropped(),
            ..Default::default()
        };
        for (oid, &truth) in &self.truth {
            let count = self.counts[oid];
            if count == truth {
                out.correct += 1;
            } else if count <= 0 && truth > 0 {
                out.unsafe_reclaims += 1;
            } else {
                // Count disagrees and does not undercount to zero: the
                // object can never be reclaimed even once truth reaches 0.
                out.leaks += 1;
            }
        }
        out
    }

    /// Number of tracked objects.
    pub fn object_count(&self) -> u64 {
        self.truth.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_counts_are_exact() {
        let mut sim = RefCountSim::new(50, 4, 0.0, 7);
        let out = sim.run(2_000);
        assert_eq!(out.correct, 50);
        assert_eq!(out.unsafe_reclaims, 0);
        assert_eq!(out.leaks, 0);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn loss_corrupts_counts() {
        let mut sim = RefCountSim::new(50, 4, 0.2, 7);
        let out = sim.run(2_000);
        assert!(out.dropped > 0);
        assert!(
            out.unsafe_reclaims + out.leaks > 0,
            "20% loss must corrupt some counts: {out:?}"
        );
        assert!(out.correct < 50);
    }

    #[test]
    fn more_loss_more_corruption() {
        let run = |p| RefCountSim::new(100, 4, p, 11).run(4_000);
        let low = run(0.05);
        let high = run(0.4);
        assert!(
            high.correct < low.correct,
            "higher loss must corrupt more: low={low:?} high={high:?}"
        );
    }
}
