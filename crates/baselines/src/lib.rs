//! Baseline systems the paper argues against, built to the same interfaces
//! so the experiments can compare like with like.
//!
//! * [`strong_copy`] — the "obvious solution" rejected in Section 4.2: a
//!   copying collector that acquires the write token of every live object
//!   before copying it. It triggers exactly the consistency actions the
//!   BMX design avoids: every readable replica is invalidated, and the
//!   mutators' working sets are disrupted (experiments E1 and E2).
//! * [`refcount`] — distributed reference counting with increment/decrement
//!   messages (Bevan 1987), the scheme Section 6.1 contrasts with
//!   idempotent reachability tables: inc/dec messages are *not* idempotent,
//!   so loss or duplication corrupts counts (experiment E5).
//! * [`replicated_ssp`] — the design alternative rejected in Section 3.2:
//!   replicating inter-bunch SSPs on every ownership transfer instead of
//!   creating intra-bunch SSPs, costing a scion-message per transfer and
//!   duplicated stub memory (experiment E6).

pub mod refcount;
pub mod replicated_ssp;
pub mod strong_copy;

pub use refcount::{RefCountOutcome, RefCountSim};
pub use replicated_ssp::{MigrationTrace, SspCost, SspStrategy};
pub use strong_copy::strong_bgc;
