//! Collector-to-collector messages.
//!
//! Three kinds of GC traffic exist (none of it blocks applications):
//!
//! * **scion-messages** (Section 3.2) announce a new cross-node inter-bunch
//!   reference so the matching scion gets created;
//! * **reachability tables** (Section 6.1) — the full new stub table and
//!   exiting-ownerPtr list a BGC produced. They are *idempotent*: on loss
//!   they are simply re-sent; only per-channel FIFO is required (enforced by
//!   message numbering in `bmx-net`), plus an epoch stamp so a cleaner never
//!   applies an older table after a newer one;
//! * **from-space reuse traffic** (Section 4.5) — explicit address-change
//!   notices and copy requests, exchanged in the background, used only when
//!   a from-space segment must actually be reclaimed.

use bmx_common::{BunchId, Epoch, NodeId, Oid, SegmentId};
use bmx_dsm::Relocation;
use bmx_net::WireSize;

use crate::ssp::{InterScion, InterStub, IntraStub};

/// The reachability information one BGC run publishes for one bunch.
#[derive(Clone, Debug)]
pub struct ReachabilityReport {
    /// The node whose BGC produced the report.
    pub from: NodeId,
    /// The collected bunch.
    pub bunch: BunchId,
    /// Collection epoch at `from` (monotonic per `(from, bunch)`).
    pub epoch: Epoch,
    /// The reconstructed inter-bunch stub table.
    pub inter_stubs: Vec<InterStub>,
    /// The reconstructed intra-bunch stub table.
    pub intra_stubs: Vec<IntraStub>,
    /// The new exiting-ownerPtr list: `(object, node its ownerPtr enters)`.
    pub exiting: Vec<(Oid, NodeId)>,
}

/// Messages exchanged between collectors.
#[derive(Clone, Debug)]
pub enum GcMsg {
    /// Create the scion matching a freshly created cross-node inter-bunch
    /// reference (sent to the node chosen as the scion site).
    ScionCreate {
        /// The scion to install.
        scion: InterScion,
    },
    /// An idempotent reachability table for the scion cleaner.
    Report(ReachabilityReport),
    /// Explicit relocation notice (the explicit-update ablation of
    /// experiment E3; unacknowledged, applied idempotently).
    AddressChange {
        /// Bunch the relocated objects belong to.
        bunch: BunchId,
        /// The relocations to apply.
        relocations: Vec<Relocation>,
    },
    /// Retirement announcement of from-space segments (Section 4.5, phase
    /// two): the receiver applies the final relocations, evacuates any live
    /// objects remaining in its own replica of the ranges (copying out
    /// owned ones, copy-requesting non-owned ones), rewrites local
    /// references, wipes its replica, and acknowledges.
    Retire {
        /// The bunch whose segments retire.
        bunch: BunchId,
        /// The segments being retired.
        segments: Vec<SegmentId>,
        /// Every relocation out of the retired ranges known to the
        /// initiator.
        relocations: Vec<Relocation>,
        /// The initiator awaiting the ack.
        reply_to: NodeId,
    },
    /// Acknowledgement of a [`GcMsg::Retire`].
    RetireAck {
        /// The bunch being reclaimed at the initiator.
        bunch: BunchId,
        /// The acknowledging node.
        from: NodeId,
    },
    /// "Please copy these live objects you own out of my from-space"
    /// (Section 4.5).
    CopyRequest {
        /// The bunch whose from-space is being reclaimed.
        bunch: BunchId,
        /// Objects the receiver is believed to own.
        oids: Vec<Oid>,
        /// The segments being retired — the owner must not copy into them.
        avoid: Vec<SegmentId>,
        /// Where the resulting relocations must be sent.
        reply_to: NodeId,
    },
    /// Relocations produced in response to a [`GcMsg::CopyRequest`].
    CopyReply {
        /// The bunch being reclaimed at the requester.
        bunch: BunchId,
        /// The moves the owner performed (possibly already known).
        relocations: Vec<Relocation>,
        /// The replying node.
        from: NodeId,
    },
}

impl WireSize for GcMsg {
    fn wire_size(&self) -> u64 {
        match self {
            GcMsg::ScionCreate { .. } => 56,
            GcMsg::Report(r) => {
                24 + 56 * r.inter_stubs.len() as u64
                    + 24 * r.intra_stubs.len() as u64
                    + 16 * r.exiting.len() as u64
            }
            GcMsg::AddressChange { relocations, .. } => 24 + 24 * relocations.len() as u64,
            GcMsg::Retire {
                segments,
                relocations,
                ..
            } => 24 + 8 * segments.len() as u64 + 24 * relocations.len() as u64,
            GcMsg::RetireAck { .. } => 16,
            GcMsg::CopyRequest { oids, .. } => 24 + 8 * oids.len() as u64,
            GcMsg::CopyReply { relocations, .. } => 24 + 24 * relocations.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_common::Addr;

    #[test]
    fn report_wire_size_scales_with_tables() {
        let empty = GcMsg::Report(ReachabilityReport {
            from: NodeId(0),
            bunch: BunchId(1),
            epoch: Epoch(1),
            inter_stubs: vec![],
            intra_stubs: vec![],
            exiting: vec![],
        });
        let full = GcMsg::Report(ReachabilityReport {
            from: NodeId(0),
            bunch: BunchId(1),
            epoch: Epoch(1),
            inter_stubs: vec![],
            intra_stubs: vec![IntraStub {
                oid: Oid(1),
                bunch: BunchId(1),
                scion_at: NodeId(2),
            }],
            exiting: vec![(Oid(1), NodeId(2)), (Oid(2), NodeId(0))],
        });
        assert!(full.wire_size() > empty.wire_size());
        let _ = Addr::NULL;
    }
}
