//! The collector's implementation of the DSM participation hooks.
//!
//! This is where the paper's Section 5 machinery lives on the collector
//! side: grant-time relocation payloads (invariant 1), copy-set forwarding
//! (invariant 2), and intra-bunch SSP creation at ownership transfer
//! (invariant 3) — all driven *by* the consistency protocol's own messages,
//! never by collector-initiated token traffic.

use bmx_addr::object::{self, ObjectImage};
use bmx_addr::NodeMemory;
use bmx_common::{Addr, NodeId, Oid};
use bmx_dsm::{GcIntegration, IntraSspCreate, Relocation};
use bmx_trace::{self as trace, SspKind, TraceEvent};

use crate::ssp::{IntraScion, IntraStub};
use crate::state::{GcState, RelocMode};

/// Applies relocation records at `node`: updates the directory, maps the
/// to-space segment if needed, copies the local from-space replica to the
/// new address and leaves a forwarding header (paper, Section 4.4: "after N1
/// receives O2's new address, O2 is copied to the indicated address").
///
/// Idempotent: re-applying a known relocation is a no-op, which is what lets
/// relocation records ride unreliable or duplicated carriers.
pub fn apply_relocations_at(
    gc: &mut GcState,
    node: NodeId,
    relocs: &[Relocation],
    mems: &mut [NodeMemory],
) {
    for r in relocs {
        let mem = &mut mems[node.0 as usize];
        // Map the destination segment if this node has never seen it.
        if !mem.is_mapped(r.to) {
            let info = gc.server.borrow().segment_of(r.to);
            match info {
                Some(info) => mem.map_segment(info),
                None => continue, // unknown address: drop the record
            }
        }
        // Whether `r.from` is this node's *current* address for the object
        // — decided before the record advances it. Bytes at any other
        // address are a ghost of an older generation; carrying those along
        // the chain would resurrect stale state over the live copy.
        let was_current = {
            let dir = &gc.node(node).directory;
            let a0 = dir.addr_of(r.oid);
            a0 == Some(r.from) || a0.map(|a| dir.resolve(a)) == Some(r.from)
        };
        if !gc.node_mut(node).directory.record_move(r.oid, r.from, r.to) {
            continue; // already known
        }
        // A fresh record: this node just learned the object moved. The
        // event happens-after the collector's `Relocate` because the
        // record rode a message from (a node causally after) the
        // relocating node.
        trace::emit(
            node,
            TraceEvent::AddrUpdate {
                oid: r.oid,
                from: r.from,
                to: r.to,
            },
        );
        // Copy the local replica to its new current address, if one sits at
        // the vacated spot and has not already been moved. Records can
        // arrive out of order across source nodes, so the copy target is
        // the *resolved* end of the chain, not necessarily `r.to`.
        let movable = was_current
            && object::view(mem, r.from)
                .ok()
                .filter(|v| v.oid == r.oid && !v.is_forwarded())
                .is_some();
        if movable {
            let dest = gc.node(node).directory.resolve(r.to);
            if !mem.is_mapped(dest) {
                if let Some(info) = gc.server.borrow().segment_of(dest) {
                    mem.map_segment(info);
                }
            }
            let already_there = object::view(mem, dest).is_ok_and(|v| v.oid == r.oid);
            if !already_there {
                if let Ok(image) = ObjectImage::capture(mem, r.from) {
                    let _ = object::install_object_at(mem, dest, &image);
                }
            }
            let _ = object::set_forwarding(mem, r.from, r.to);
        }
    }
}

impl GcIntegration for GcState {
    fn local_addr(&self, node: NodeId, oid: Oid) -> Option<Addr> {
        self.node(node).directory.addr_of(oid)
    }

    fn note_local_addr(&mut self, node: NodeId, oid: Oid, addr: Addr) {
        self.node_mut(node).directory.set_addr(oid, addr);
    }

    fn ensure_mapped(&mut self, node: NodeId, addr: Addr, mems: &mut [NodeMemory]) {
        let mem = &mut mems[node.0 as usize];
        if mem.is_mapped(addr) {
            return;
        }
        if let Some(info) = self.server.borrow().segment_of(addr) {
            mem.map_segment(info);
        }
    }

    fn resolve_current(&self, node: NodeId, addr: Addr) -> Addr {
        let cur = self.node(node).directory.resolve(addr);
        if cur == addr {
            // No local knowledge. If the address lies in a range the reuse
            // protocol reclaimed (every node dropped its edges), the server's
            // retired-range routing still knows where the contents went —
            // without it, a stale address in an in-flight grant would make
            // the receiver install the replica into re-pooled space.
            if let Some((_, to)) = self.server.borrow().resolve_retired(addr) {
                return self.node(node).directory.resolve(to);
            }
        }
        cur
    }

    fn grant_relocations(
        &mut self,
        granter: NodeId,
        oid: Oid,
        mems: &[NodeMemory],
    ) -> Vec<Relocation> {
        let ns = self.node(granter);
        let mut out = Vec::new();
        if let Some(r) = ns.directory.reloc_of(oid) {
            out.push(r);
        }
        // Invariant 1 also covers "every object directly referenced from
        // it": walk the object's pointer fields at its current address.
        if let Some(addr) = ns.directory.addr_of(oid) {
            let cur = ns.directory.resolve(addr);
            if let Ok(fields) = object::ref_fields(&mems[granter.0 as usize], cur) {
                for (_, t) in fields {
                    if t.is_null() {
                        continue;
                    }
                    if let Some(r) = ns.directory.reloc_touching(t) {
                        if !out.contains(&r) {
                            out.push(r);
                        }
                    }
                }
            }
        }
        out
    }

    fn apply_relocations(&mut self, node: NodeId, relocs: &[Relocation], mems: &mut [NodeMemory]) {
        apply_relocations_at(self, node, relocs, mems);
    }

    fn queue_forward(&mut self, node: NodeId, copy_set: &[NodeId], relocs: &[Relocation]) {
        match self.reloc_mode {
            RelocMode::Piggyback => {
                for &dst in copy_set {
                    if dst == node {
                        continue;
                    }
                    for r in relocs {
                        self.node_mut(node).piggy.push(dst, *r);
                    }
                }
            }
            RelocMode::Explicit => {
                for &dst in copy_set {
                    if dst != node {
                        self.explicit_queue.push((node, dst, relocs.to_vec()));
                    }
                }
            }
        }
    }

    fn prepare_ownership_transfer(
        &mut self,
        old_owner: NodeId,
        new_owner: NodeId,
        oid: Oid,
    ) -> Vec<IntraSspCreate> {
        let Some(addr) = self.node(old_owner).directory.addr_of(oid) else {
            return Vec::new();
        };
        let Some(bunch) = self.bunch_of(addr) else {
            return Vec::new();
        };
        let (holds_inter, intra_sites) = {
            let Some(brs) = self.node(old_owner).bunch(bunch) else {
                return Vec::new();
            };
            let holds_inter = brs.stub_table.inter_for(oid).next().is_some();
            let sites: std::collections::BTreeSet<NodeId> = brs
                .stub_table
                .intra()
                .iter()
                .filter(|s| s.oid == oid)
                .map(|s| s.scion_at)
                .collect();
            (holds_inter, sites)
        };
        let mut reqs = Vec::new();
        if holds_inter {
            // Old-owner side of invariant 3: the scion exists before the
            // grant message leaves; the new owner's stub will point here.
            if self
                .node_mut(old_owner)
                .bunch_or_default(bunch)
                .scion_table
                .add_intra(IntraScion {
                    oid,
                    bunch,
                    stub_at: new_owner,
                })
            {
                trace::emit(
                    old_owner,
                    TraceEvent::SspCreate {
                        kind: SspKind::IntraScion,
                        oid: Some(oid),
                        peer: new_owner,
                    },
                );
            }
            reqs.push(IntraSspCreate {
                oid,
                bunch,
                old_owner,
            });
        }
        // Chain compression: where the old owner holds only forwarding
        // links (intra stubs), the new owner's stub points *directly* at
        // each stub site — and not at all when ownership returns to the
        // site itself. Without this, ownership bouncing A -> B -> A welds a
        // cross-node SSP cycle that keeps dead objects alive forever. The
        // scion at each site already exists (keyed to the old owner); the
        // cleaner re-keys it from the new owner's reports.
        if !holds_inter {
            for site in intra_sites {
                if site != new_owner {
                    reqs.push(IntraSspCreate {
                        oid,
                        bunch,
                        old_owner: site,
                    });
                }
            }
        }
        reqs
    }

    fn apply_intra_ssp(&mut self, node: NodeId, reqs: &[IntraSspCreate]) {
        for req in reqs {
            if self
                .node_mut(node)
                .bunch_or_default(req.bunch)
                .stub_table
                .add_intra(IntraStub {
                    oid: req.oid,
                    bunch: req.bunch,
                    scion_at: req.old_owner,
                })
            {
                trace::emit(
                    node,
                    TraceEvent::SspCreate {
                        kind: SspKind::IntraStub,
                        oid: Some(req.oid),
                        peer: req.old_owner,
                    },
                );
            }
        }
    }

    fn drain_piggyback(&mut self, src: NodeId, dst: NodeId) -> Vec<Relocation> {
        match self.reloc_mode {
            RelocMode::Piggyback => self.node_mut(src).piggy.drain(dst),
            RelocMode::Explicit => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_addr::server::Protection;
    use bmx_addr::SegmentServer;
    use bmx_common::BunchId;

    fn setup() -> (GcState, Vec<NodeMemory>, BunchId, bmx_addr::SegmentInfo) {
        let server = crate::state::SharedServer::new(SegmentServer::new(64));
        let bunch = server
            .borrow_mut()
            .create_bunch(NodeId(0), Protection::default());
        let seg = server.borrow_mut().alloc_segment(bunch).unwrap();
        let gc = GcState::new(2, server);
        let mut mems = vec![NodeMemory::new(NodeId(0)), NodeMemory::new(NodeId(1))];
        mems[0].map_segment(seg);
        mems[1].map_segment(seg);
        (gc, mems, bunch, seg)
    }

    #[test]
    fn apply_relocation_copies_and_forwards() {
        let (mut gc, mut mems, bunch, seg) = setup();
        // Allocate an object at node 1's replica (simulating a mapped copy).
        let a = {
            let s = mems[1].segment_mut(seg.id).unwrap();
            object::alloc_in_segment(s, Oid(7), 2, &[]).unwrap()
        };
        object::write_data_field(&mut mems[1], a, 0, 55).unwrap();
        gc.note_local_addr(NodeId(1), Oid(7), a);
        // A second segment plays the role of node 0's to-space.
        let to_seg = gc.server.borrow_mut().alloc_segment(bunch).unwrap();
        let to = to_seg.base;
        let r = Relocation {
            oid: Oid(7),
            from: a,
            to,
        };
        apply_relocations_at(&mut gc, NodeId(1), &[r], &mut mems);
        // Node 1 mapped the to-space segment, copied the object, and left a
        // forwarding header.
        assert!(mems[1].is_mapped(to));
        assert_eq!(object::view(&mems[1], to).unwrap().oid, Oid(7));
        assert_eq!(object::read_field(&mems[1], to, 0).unwrap(), 55);
        let old = object::view(&mems[1], a).unwrap();
        assert!(old.is_forwarded());
        assert_eq!(old.forwarding, to);
        assert_eq!(gc.node(NodeId(1)).directory.addr_of(Oid(7)), Some(to));
        // Idempotent re-application.
        apply_relocations_at(&mut gc, NodeId(1), &[r], &mut mems);
        assert_eq!(object::read_field(&mems[1], to, 0).unwrap(), 55);
    }

    #[test]
    fn relocation_without_local_replica_just_updates_forwarding() {
        let (mut gc, mut mems, bunch, _seg) = setup();
        let to_seg = gc.server.borrow_mut().alloc_segment(bunch).unwrap();
        let r = Relocation {
            oid: Oid(9),
            from: Addr(0x1_0000),
            to: to_seg.base,
        };
        apply_relocations_at(&mut gc, NodeId(1), &[r], &mut mems);
        // No local replica: the forwarding edge is recorded but no
        // current-address entry is invented and nothing is installed.
        assert_eq!(gc.node(NodeId(1)).directory.addr_of(Oid(9)), None);
        assert_eq!(
            gc.node(NodeId(1)).directory.resolve(Addr(0x1_0000)),
            to_seg.base
        );
        assert!(
            object::view(&mems[1], to_seg.base).is_err(),
            "nothing installed"
        );
    }

    #[test]
    fn ownership_transfer_creates_intra_ssp_only_with_stubs() {
        let (mut gc, _mems, bunch, seg) = setup();
        let a = seg.base;
        gc.note_local_addr(NodeId(0), Oid(1), a);
        // No stubs at node 0: no SSP needed.
        assert!(gc
            .prepare_ownership_transfer(NodeId(0), NodeId(1), Oid(1))
            .is_empty());
        // Give node 0 an inter-bunch stub for O1.
        gc.node_mut(NodeId(0))
            .bunch_or_default(bunch)
            .stub_table
            .add_inter(crate::ssp::InterStub {
                id: crate::ssp::SspId {
                    node: NodeId(0),
                    seq: 1,
                },
                source_bunch: bunch,
                source_oid: Oid(1),
                target_bunch: BunchId(99),
                target_addr: Addr(0xFFFF_0000),
                target_oid: None,
                scion_at: NodeId(1),
            });
        let reqs = gc.prepare_ownership_transfer(NodeId(0), NodeId(1), Oid(1));
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].old_owner, NodeId(0));
        // The scion exists at the old owner.
        let scions = &gc.node(NodeId(0)).bunch(bunch).unwrap().scion_table;
        assert_eq!(scions.intra().len(), 1);
        assert_eq!(scions.intra()[0].stub_at, NodeId(1));
        // The new owner creates the stub when the grant arrives.
        gc.apply_intra_ssp(NodeId(1), &reqs);
        let stubs = &gc.node(NodeId(1)).bunch(bunch).unwrap().stub_table;
        assert_eq!(stubs.intra().len(), 1);
        assert_eq!(stubs.intra()[0].scion_at, NodeId(0));
    }

    #[test]
    fn piggyback_mode_buffers_and_drains() {
        let (mut gc, _mems, _bunch, _seg) = setup();
        let r = Relocation {
            oid: Oid(1),
            from: Addr(8),
            to: Addr(16),
        };
        gc.queue_forward(NodeId(0), &[NodeId(1), NodeId(0)], &[r]);
        // Self is skipped.
        assert_eq!(gc.drain_piggyback(NodeId(0), NodeId(1)), vec![r]);
        assert!(gc.drain_piggyback(NodeId(0), NodeId(1)).is_empty());
    }

    #[test]
    fn explicit_mode_uses_queue_not_piggyback() {
        let (mut gc, _mems, _bunch, _seg) = setup();
        gc.reloc_mode = RelocMode::Explicit;
        let r = Relocation {
            oid: Oid(1),
            from: Addr(8),
            to: Addr(16),
        };
        gc.queue_forward(NodeId(0), &[NodeId(1)], &[r]);
        assert!(gc.drain_piggyback(NodeId(0), NodeId(1)).is_empty());
        assert_eq!(gc.explicit_queue.len(), 1);
    }
}
