//! The from-space reuse protocol (paper, Section 4.5).
//!
//! After a bunch collection, the retired from-space segments may still hold
//! forwarding headers and live non-owned objects, so they cannot be reused
//! immediately — and they do not need to be until the to-space fills up.
//! Reclaiming them is the only part of the design that sends explicit GC
//! messages, and it runs entirely in the background:
//!
//! 1. **Copy-out** — the initiator asks the owner of each live non-owned
//!    object remaining in the doomed segments to copy it out (the owner
//!    copies into *its* current space — never into a doomed segment — and
//!    replies with the relocations); objects the initiator itself owns are
//!    copied out locally.
//! 2. **Retire round** — once the initiator's replica holds nothing live,
//!    every other replica holder is told the ranges are retiring, with the
//!    full relocation set. Each receiver applies the relocations, evacuates
//!    any live objects *its own* replica still has there (copying owned
//!    ones out itself, copy-requesting non-owned ones from their owners —
//!    the initiator cannot know about replicas it already reclaimed
//!    locally), rewrites its local references and roots away from the
//!    ranges, wipes its replica of the segments, drops the forwarding
//!    knowledge, and acknowledges.
//! 3. **Wipe** — with every ack in, the initiator rewrites its own
//!    references, wipes the segments, and returns them to the bunch's
//!    allocation pool. The address range is then genuinely reusable:
//!    no replica anywhere still holds live data or needs a forwarding
//!    pointer into it.

use std::collections::{BTreeMap, BTreeSet};

use bmx_addr::layout::HEADER_WORDS;
use bmx_addr::object::{self, ObjectImage};
use bmx_addr::NodeMemory;
use bmx_common::{Addr, BmxError, BunchId, NodeId, NodeStats, Oid, Result, SegmentId, StatKind};
use bmx_dsm::{DsmEngine, Relocation};
use bmx_trace::{self as trace, ReuseStep, TraceEvent};

use crate::integration::apply_relocations_at;
use crate::msg::GcMsg;
use crate::state::{GcState, RetireState, ReusePhase, ReuseState};

/// Begins reclaiming the pending from-space segments of `bunch` at `node`.
///
/// Returns the background messages to transmit. If nothing blocks reuse
/// (no live residents, no other replica holders), the segments are
/// reclaimed immediately and no messages are produced.
pub fn start_reuse(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    bunch: BunchId,
) -> Result<Vec<(NodeId, GcMsg)>> {
    let segments = {
        let brs = gc
            .node(node)
            .bunch(bunch)
            .ok_or(BmxError::BunchUnmapped { node, bunch })?;
        if brs.reuse.is_some() {
            return Err(BmxError::CollectorBusy { bunch });
        }
        brs.pending_from.clone()
    };
    if segments.is_empty() {
        return Ok(Vec::new());
    }
    trace::emit(
        node,
        TraceEvent::Reuse {
            bunch,
            step: ReuseStep::Start,
        },
    );
    let (by_owner, awaiting_oids) =
        evacuate_locally_and_group(gc, engine, mem, stats, node, bunch, &segments)?;

    gc.node_mut(node).bunch_mut(bunch).expect("checked").reuse = Some(ReuseState {
        segments: segments.clone(),
        phase: ReusePhase::CopyOut { awaiting_oids },
    });
    trace::emit(
        node,
        TraceEvent::Reuse {
            bunch,
            step: ReuseStep::CopyOut,
        },
    );

    let mut msgs = Vec::new();
    for (owner, oids) in by_owner {
        msgs.push((
            owner,
            GcMsg::CopyRequest {
                bunch,
                oids,
                avoid: segments.clone(),
                reply_to: node,
            },
        ));
        stats.bump(StatKind::BackgroundGcMessages);
    }
    if msgs.is_empty() {
        msgs.extend(advance_to_retire(gc, engine, mem, stats, node, bunch)?);
    }
    Ok(msgs)
}

/// Result of scanning doomed segments: copy-requests grouped by owner,
/// plus the set of object ids whose relocation is awaited.
type Evacuation = (BTreeMap<NodeId, Vec<Oid>>, BTreeSet<Oid>);

/// Scans `segments` in the local replica: locally owned live residents are
/// copied out on the spot; non-owned live residents are grouped by their
/// ownerPtr for copy requests.
fn evacuate_locally_and_group(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    bunch: BunchId,
    segments: &[SegmentId],
) -> Result<Evacuation> {
    let mut by_owner: BTreeMap<NodeId, Vec<Oid>> = BTreeMap::new();
    let mut awaiting = BTreeSet::new();
    for &seg_id in segments {
        if !mem.has_segment(seg_id) {
            continue;
        }
        for addr in object::objects_in(mem.segment(seg_id)?) {
            let v = object::view(mem, addr)?;
            if v.is_forwarded() {
                continue;
            }
            // Only the node's *current* copy is live here: bytes at any
            // other address are a ghost of an older generation (a replica
            // the DSM re-installed elsewhere since) and get cleared by the
            // wipe — copying them out would resurrect stale state.
            let is_current = {
                let dir = &gc.node(node).directory;
                let a0 = dir.addr_of(v.oid);
                a0 == Some(addr) || a0.map(|a| dir.resolve(a)) == Some(addr)
            };
            if !is_current {
                continue;
            }
            match engine.obj_state(node, v.oid) {
                Some(st) if !st.is_owner => {
                    by_owner.entry(st.owner_hint).or_default().push(v.oid);
                    awaiting.insert(v.oid);
                }
                Some(_) => {
                    // Locally owned (e.g. acquired after the collection):
                    // copy it out ourselves.
                    copy_out_locally(gc, mem, stats, node, bunch, addr, segments)?;
                }
                None => {
                    // No replica record: dead resident that predates the
                    // sweep (or a record dropped since); nothing keeps it.
                }
            }
        }
    }
    Ok((by_owner, awaiting))
}

/// Copies one locally owned object out of a doomed segment into the local
/// current space, never into `avoid`.
fn copy_out_locally(
    gc: &mut GcState,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    bunch: BunchId,
    from: Addr,
    avoid: &[SegmentId],
) -> Result<Relocation> {
    let img = ObjectImage::capture(mem, from)?;
    let need = HEADER_WORDS + img.data.len() as u64;
    let seg_id = alloc_target_with_space(gc, mem, node, bunch, need, avoid)?;
    let dst = {
        let seg = mem.segment(seg_id)?;
        seg.info.base.add_words(seg.alloc_cursor)
    };
    object::install_object_at(mem, dst, &img)?;
    object::set_forwarding(mem, from, dst)?;
    gc.node_mut(node).directory.record_move(img.oid, from, dst);
    let r = Relocation {
        oid: img.oid,
        from,
        to: dst,
    };
    if let Some(brs) = gc.node_mut(node).bunch_mut(bunch) {
        brs.relocations.push(r);
    }
    stats.bump(StatKind::ObjectsCopied);
    stats.add(StatKind::WordsCopied, need);
    Ok(r)
}

/// Finds (or allocates) a current-space segment of `bunch` with room for
/// `need` words, skipping the `avoid` list (doomed segments must never be
/// copy targets).
fn alloc_target_with_space(
    gc: &mut GcState,
    mem: &mut NodeMemory,
    node: NodeId,
    bunch: BunchId,
    need: u64,
    avoid: &[SegmentId],
) -> Result<SegmentId> {
    let candidates: Vec<SegmentId> = gc
        .node(node)
        .bunch(bunch)
        .map(|b| b.alloc_segments.clone())
        .unwrap_or_default();
    for id in candidates {
        if avoid.contains(&id) {
            continue;
        }
        if mem.has_segment(id) && mem.segment(id)?.free_words() >= need {
            return Ok(id);
        }
    }
    let info = gc.server.borrow_mut().alloc_segment(bunch)?;
    if need > info.words {
        return Err(BmxError::OutOfMemory { bunch, words: need });
    }
    mem.map_segment(info);
    gc.node_mut(node)
        .bunch_or_default(bunch)
        .alloc_segments
        .push(info.id);
    Ok(info.id)
}

/// Handles a `CopyRequest` at the (presumed) owner: copies each owned
/// object into the local current space, forwards the request for objects
/// whose ownership moved on, and returns the reply plus any forwards.
#[allow(clippy::too_many_arguments)]
pub fn handle_copy_request(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
    oids: &[Oid],
    avoid: &[SegmentId],
    reply_to: NodeId,
) -> Result<Vec<(NodeId, GcMsg)>> {
    let mut relocs = Vec::new();
    let mut forwards: BTreeMap<NodeId, Vec<Oid>> = BTreeMap::new();
    // Never copy into the requester's doomed segments, nor into segments
    // pending retirement at this node.
    let mut local_doomed: Vec<SegmentId> = gc
        .node(at)
        .bunch(bunch)
        .map(|b| b.pending_from.clone())
        .unwrap_or_default();
    local_doomed.extend_from_slice(avoid);
    let doomed_ranges: Vec<(Addr, u64)> = {
        let srv = gc.server.borrow();
        local_doomed
            .iter()
            .filter_map(|&s| srv.segment(s).ok().map(|i| (i.base, i.words)))
            .collect()
    };
    for &oid in oids {
        if let Some(r) = gc.node(at).directory.reloc_of(oid) {
            // An indexed relocation whose chain dead-ends inside the very
            // ranges being retired (it may predate a later move *into*
            // them) cannot settle the requester; fall through to a fresh
            // copy-out instead.
            let dest = gc.node(at).directory.resolve(r.to);
            if !doomed_ranges.iter().any(|&(b, w)| dest.in_range(b, w)) {
                relocs.push(r);
                continue;
            }
        }
        match engine.obj_state(at, oid) {
            Some(st) if st.is_owner => {
                let Some(from) = gc.node(at).directory.addr_of(oid) else {
                    continue;
                };
                let r = copy_out_locally(gc, mem, stats, at, bunch, from, &local_doomed)?;
                relocs.push(r);
            }
            Some(st) => {
                forwards.entry(st.owner_hint).or_default().push(oid);
            }
            None => {
                // The object died globally as far as this node knows;
                // nothing to relocate. The requester treats the oid as
                // settled via its own next collection.
            }
        }
    }
    let mut msgs = Vec::new();
    msgs.push((
        reply_to,
        GcMsg::CopyReply {
            bunch,
            relocations: relocs,
            from: at,
        },
    ));
    stats.bump(StatKind::BackgroundGcMessages);
    for (owner, oids) in forwards {
        msgs.push((
            owner,
            GcMsg::CopyRequest {
                bunch,
                oids,
                avoid: avoid.to_vec(),
                reply_to,
            },
        ));
        stats.bump(StatKind::BackgroundGcMessages);
    }
    Ok(msgs)
}

/// Handles a `CopyReply` at a node: applies the relocations and advances
/// whichever protocol (initiator reuse or receiver retire) was waiting.
pub fn handle_copy_reply(
    gc: &mut GcState,
    engine: &DsmEngine,
    mems: &mut [NodeMemory],
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
    relocations: &[Relocation],
) -> Result<Vec<(NodeId, GcMsg)>> {
    apply_relocations_at(gc, at, relocations, mems);
    let mut msgs = Vec::new();
    // Initiator in copy-out phase?
    let copyout_done = {
        let brs = gc.node_mut(at).bunch_mut(bunch);
        match brs.and_then(|b| b.reuse.as_mut()) {
            Some(ReuseState {
                phase: ReusePhase::CopyOut { awaiting_oids },
                ..
            }) => {
                for r in relocations {
                    awaiting_oids.remove(&r.oid);
                }
                awaiting_oids.is_empty()
            }
            _ => false,
        }
    };
    if copyout_done {
        msgs.extend(advance_to_retire(
            gc,
            engine,
            &mut mems[at.0 as usize],
            stats,
            at,
            bunch,
        )?);
    }
    // Receiver in retire handling?
    let retire_done = {
        let brs = gc.node_mut(at).bunch_mut(bunch);
        match brs.and_then(|b| b.retire.as_mut()) {
            Some(rt) => {
                for r in relocations {
                    rt.awaiting_oids.remove(&r.oid);
                }
                rt.awaiting_oids.is_empty()
            }
            None => false,
        }
    };
    if retire_done {
        msgs.extend(complete_retire(
            gc,
            engine,
            &mut mems[at.0 as usize],
            stats,
            at,
            bunch,
        )?);
    }
    Ok(msgs)
}

/// Phase two: the initiator's replica is clean; announce the retirement to
/// every other replica holder (or finish immediately if there are none).
fn advance_to_retire(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    bunch: BunchId,
) -> Result<Vec<(NodeId, GcMsg)>> {
    let segments = {
        let brs = gc
            .node(node)
            .bunch(bunch)
            .ok_or(BmxError::BunchUnmapped { node, bunch })?;
        match &brs.reuse {
            Some(r) => r.segments.clone(),
            None => return Ok(Vec::new()),
        }
    };
    let relocations = relocs_out_of(gc, mem, node, &segments);
    let dests: Vec<NodeId> = gc
        .mapped_nodes(bunch)
        .into_iter()
        .filter(|&d| d != node)
        .collect();
    if dests.is_empty() {
        finish_local(gc, engine, mem, stats, node, bunch)?;
        return Ok(Vec::new());
    }
    {
        let brs = gc.node_mut(node).bunch_mut(bunch).expect("checked");
        if let Some(r) = brs.reuse.as_mut() {
            r.phase = ReusePhase::Retire {
                awaiting_acks: dests.iter().copied().collect(),
            };
        }
    }
    trace::emit(
        node,
        TraceEvent::Reuse {
            bunch,
            step: ReuseStep::Retire,
        },
    );
    let mut msgs = Vec::new();
    for d in dests {
        stats.bump(StatKind::ExplicitRelocationMessages);
        msgs.push((
            d,
            GcMsg::Retire {
                bunch,
                segments: segments.clone(),
                relocations: relocations.clone(),
                reply_to: node,
            },
        ));
    }
    Ok(msgs)
}

/// Every relocation the directory retains out of the given segments.
fn relocs_out_of(
    gc: &GcState,
    mem: &NodeMemory,
    node: NodeId,
    segments: &[SegmentId],
) -> Vec<Relocation> {
    let mut out = Vec::new();
    for &sid in segments {
        if let Ok(seg) = mem.segment(sid) {
            out.extend(
                gc.node(node)
                    .directory
                    .relocs_from_range(seg.info.base, seg.info.words),
            );
        }
    }
    out
}

/// Handles a `Retire` at a replica holder.
#[allow(clippy::too_many_arguments)]
pub fn handle_retire(
    gc: &mut GcState,
    engine: &DsmEngine,
    mems: &mut [NodeMemory],
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
    segments: &[SegmentId],
    relocations: &[Relocation],
    reply_to: NodeId,
) -> Result<Vec<(NodeId, GcMsg)>> {
    apply_relocations_at(gc, at, relocations, mems);
    let mem = &mut mems[at.0 as usize];
    // Evacuate whatever *this* replica still has alive in the ranges: the
    // initiator cannot know about replicas it reclaimed locally long ago.
    let (by_owner, awaiting_oids) =
        evacuate_locally_and_group(gc, engine, mem, stats, at, bunch, segments)?;
    gc.node_mut(at).bunch_or_default(bunch).retire = Some(RetireState {
        requester: reply_to,
        segments: segments.to_vec(),
        awaiting_oids,
    });
    let mut msgs = Vec::new();
    for (owner, oids) in by_owner {
        msgs.push((
            owner,
            GcMsg::CopyRequest {
                bunch,
                oids,
                avoid: segments.to_vec(),
                reply_to: at,
            },
        ));
        stats.bump(StatKind::BackgroundGcMessages);
    }
    if msgs.is_empty() {
        msgs.extend(complete_retire(gc, engine, mem, stats, at, bunch)?);
    }
    Ok(msgs)
}

/// Completes a receiver's retire handling: wipes the local replica of the
/// ranges and acknowledges to the initiator.
fn complete_retire(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
) -> Result<Vec<(NodeId, GcMsg)>> {
    let Some(rt) = gc.node_mut(at).bunch_or_default(bunch).retire.take() else {
        return Ok(Vec::new());
    };
    wipe_segments(gc, engine, mem, stats, at, bunch, &rt.segments)?;
    // The initiator claims the segments; they leave this node's pools.
    if let Some(brs) = gc.node_mut(at).bunch_mut(bunch) {
        brs.pending_from.retain(|s| !rt.segments.contains(s));
        brs.alloc_segments.retain(|s| !rt.segments.contains(s));
    }
    crate::collect::refresh_node_gauges(gc, at);
    stats.bump(StatKind::BackgroundGcMessages);
    Ok(vec![(rt.requester, GcMsg::RetireAck { bunch, from: at })])
}

/// Handles a `RetireAck` at the initiator; finishes once all are in.
pub fn handle_retire_ack(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
    from: NodeId,
) -> Result<()> {
    let done = {
        let brs = gc.node_mut(at).bunch_mut(bunch);
        match brs.and_then(|b| b.reuse.as_mut()) {
            Some(ReuseState {
                phase: ReusePhase::Retire { awaiting_acks },
                ..
            }) => {
                awaiting_acks.remove(&from);
                trace::emit(
                    at,
                    TraceEvent::Reuse {
                        bunch,
                        step: ReuseStep::Ack,
                    },
                );
                awaiting_acks.is_empty()
            }
            _ => false,
        }
    };
    if done {
        finish_local(gc, engine, mem, stats, at, bunch)?;
    }
    Ok(())
}

/// Phase three at the initiator: wipe, forget, and return the segments to
/// the allocation pool.
fn finish_local(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    bunch: BunchId,
) -> Result<()> {
    let Some(reuse) = gc.node_mut(node).bunch_or_default(bunch).reuse.take() else {
        return Ok(());
    };
    wipe_segments(gc, engine, mem, stats, node, bunch, &reuse.segments)?;
    let brs = gc.node_mut(node).bunch_mut(bunch).expect("mapped");
    brs.pending_from.retain(|s| !reuse.segments.contains(s));
    brs.relocations.retain(|r| {
        !reuse.segments.iter().any(|&s| {
            mem.segment(s)
                .map(|seg| r.from.in_range(seg.info.base, seg.info.words))
                .unwrap_or(false)
        })
    });
    brs.alloc_segments.extend(reuse.segments.iter().copied());
    crate::collect::refresh_node_gauges(gc, node);
    trace::emit(
        node,
        TraceEvent::Reuse {
            bunch,
            step: ReuseStep::Done,
        },
    );
    Ok(())
}

/// Rewrites local references and roots away from the doomed ranges, zeroes
/// the segment replicas, and forgets the forwarding knowledge.
fn wipe_segments(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    at: NodeId,
    bunch: BunchId,
    segments: &[SegmentId],
) -> Result<()> {
    let ranges: Vec<(Addr, u64)> = segments
        .iter()
        .filter_map(|&s| {
            mem.segment(s)
                .ok()
                .map(|seg| (seg.info.base, seg.info.words))
        })
        .collect();
    let in_doomed = |a: Addr| ranges.iter().any(|&(b, w)| a.in_range(b, w));
    // Final local settle. Per-node divergence (Section 4.2) means the
    // retire round's relocation gossip cannot always settle *this*
    // replica's copy: its local address may match no advertised edge, or
    // the only chain it knows may dead-end inside the very ranges being
    // retired (the knowledge past that hop was dropped by an earlier
    // reuse). The node itself is the sole authority on where its copy
    // lives, so any still-current tracked resident is copied out locally
    // here. Residents the DSM no longer tracks, or whose current copy is
    // established elsewhere, are ghosts — bytes a collection dropped as
    // locally dead (`drop_replica`) or a superseded install — and are
    // exactly what the wipe exists to clear.
    for &sid in segments {
        if !mem.has_segment(sid) {
            continue;
        }
        for addr in object::objects_in(mem.segment(sid)?) {
            let v = object::view(mem, addr)?;
            if v.is_forwarded() {
                continue;
            }
            let is_current = {
                let dir = &gc.node(at).directory;
                let a0 = dir.addr_of(v.oid);
                a0 == Some(addr) || a0.map(|a| dir.resolve(a)) == Some(addr)
            };
            if is_current && engine.obj_state(at, v.oid).is_some() {
                copy_out_locally(gc, mem, stats, at, bunch, addr, segments)?;
            }
        }
    }
    // Rewrite references in every other mapped segment that still point
    // into the ranges, then the roots.
    for sid in mem.mapped_segments() {
        if segments.contains(&sid) {
            continue;
        }
        for addr in object::objects_in(mem.segment(sid)?) {
            if object::view(mem, addr)?.is_forwarded() {
                continue;
            }
            for (f, t) in object::ref_fields(mem, addr)? {
                if !t.is_null() && in_doomed(t) {
                    let cur = gc.node(at).directory.resolve(t);
                    object::write_ref_field(mem, addr, f, cur)?;
                }
            }
        }
    }
    let root_updates: Vec<(u64, Addr)> = {
        let ns = gc.node(at);
        ns.roots
            .iter()
            .filter(|&(_, &a)| in_doomed(a))
            .map(|(&id, &a)| (id, ns.directory.resolve(a)))
            .collect()
    };
    for (id, a) in root_updates {
        gc.node_mut(at).set_root(id, a);
    }
    // Update scion target addresses that still point into the ranges.
    let bunches: Vec<BunchId> = gc.node(at).bunches.keys().copied().collect();
    for b in bunches {
        let updates: Vec<(usize, Addr)> = {
            let ns = gc.node(at);
            let Some(brs) = ns.bunch(b) else { continue };
            brs.scion_table
                .inter()
                .iter()
                .enumerate()
                .filter(|(_, s)| in_doomed(s.target_addr))
                .map(|(i, s)| (i, ns.directory.resolve(s.target_addr)))
                .collect()
        };
        if let Some(brs) = gc.node_mut(at).bunch_mut(b) {
            for (i, a) in updates {
                brs.scion_table.inter_mut()[i].target_addr = a;
            }
        }
    }
    // Hand the forwarding knowledge this node is about to drop to the
    // segment server's retired-range routing: a mutator anywhere that still
    // holds a pre-collection pointer (a register-resident root, in the
    // paper's terms) resolves it there once every replica has wiped.
    {
        let relocs = relocs_out_of(gc, mem, at, segments);
        gc.server
            .borrow_mut()
            .note_retired(relocs.into_iter().map(|r| (r.oid, r.from, r.to)));
    }
    // Zero the replicas and drop the forwarding knowledge.
    let mut freed = 0;
    for &sid in segments {
        if !mem.has_segment(sid) {
            continue;
        }
        let (base, words) = {
            let seg = mem.segment_mut(sid)?;
            seg.words.fill(0);
            seg.object_map.clear_all();
            seg.ref_map.clear_all();
            seg.alloc_cursor = 0;
            (seg.info.base, seg.info.words)
        };
        freed += words;
        gc.node_mut(at).directory.forget_range(base, words);
    }
    stats.add(StatKind::WordsReclaimed, freed);
    Ok(())
}
