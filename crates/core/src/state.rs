//! Collector state containers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bmx_addr::SegmentServer;
use bmx_common::{Addr, BunchId, Epoch, NodeId, Oid, SegmentId};
use bmx_dsm::Relocation;
use bmx_net::PiggybackBuffer;
use parking_lot::{Mutex, MutexGuard};

use crate::directory::Directory;
use crate::ssp::{ScionTable, StubTable};

/// The segment server shared by the simulated cluster (the BMX-server role).
///
/// Historically `Rc<RefCell<SegmentServer>>` — cheap for the deterministic
/// single-threaded simulation. The parallel runtime (`bmx::parallel`) runs
/// protocol code from per-node OS threads, so the handle is now an
/// `Arc<Mutex<_>>` (non-poisoning `parking_lot` mutex, uncontended in sim
/// mode). The `borrow`/`borrow_mut` method names are kept so the ~40
/// protocol call sites read unchanged.
#[derive(Clone)]
pub struct SharedServer(Arc<Mutex<SegmentServer>>);

impl SharedServer {
    /// Wraps a server for sharing across nodes (and, in parallel mode,
    /// across threads).
    pub fn new(server: SegmentServer) -> Self {
        SharedServer(Arc::new(Mutex::new(server)))
    }

    /// Locks the server for shared reading (same guard as `borrow_mut`;
    /// the name preserves the old `RefCell` call sites).
    pub fn borrow(&self) -> MutexGuard<'_, SegmentServer> {
        self.0.lock()
    }

    /// Locks the server for mutation.
    pub fn borrow_mut(&self) -> MutexGuard<'_, SegmentServer> {
        self.0.lock()
    }
}

/// How relocation records propagate to other nodes — the knob of
/// experiment E3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RelocMode {
    /// Piggy-back on consistency-protocol messages (the paper's design:
    /// zero extra messages).
    #[default]
    Piggyback,
    /// Send explicit background messages immediately (the ablation the
    /// paper argues against in Section 4.4).
    Explicit,
}

/// Per-(node, bunch) collector state.
#[derive(Clone)]
pub struct BunchReplicaGc {
    /// The bunch.
    pub bunch: BunchId,
    /// Local collection epoch (bumped per BGC run on this replica).
    pub epoch: Epoch,
    /// Outgoing reachability this replica asserts.
    pub stub_table: StubTable,
    /// Incoming reachability this replica honours (BGC roots).
    pub scion_table: ScionTable,
    /// Segments new objects are allocated from (the current space).
    pub alloc_segments: Vec<SegmentId>,
    /// Retired from-space segments awaiting the reuse protocol: they may
    /// still hold live non-owned objects and forwarding headers.
    pub pending_from: Vec<SegmentId>,
    /// Relocations this node performed locally, retained until the
    /// from-space reuse protocol retires their from-addresses.
    pub relocations: Vec<Relocation>,
    /// In-flight reuse protocol at this node as the *initiator*, if any.
    pub reuse: Option<ReuseState>,
    /// In-flight retire request at this node as a *receiver*, if any.
    pub retire: Option<RetireState>,
}

/// Progress of an in-flight from-space reuse at the initiator
/// (Section 4.5).
#[derive(Clone, Debug)]
pub struct ReuseState {
    /// Segments being reclaimed.
    pub segments: Vec<SegmentId>,
    /// Current phase.
    pub phase: ReusePhase,
}

/// The initiator's phase.
#[derive(Clone, Debug)]
pub enum ReusePhase {
    /// Waiting for owners to copy live objects out of the doomed segments.
    CopyOut {
        /// Objects whose relocation is still outstanding.
        awaiting_oids: BTreeSet<Oid>,
    },
    /// Waiting for every replica holder to acknowledge the retirement.
    Retire {
        /// Nodes whose ack is still outstanding.
        awaiting_acks: BTreeSet<NodeId>,
    },
}

/// A receiver's in-flight handling of a retire request: it may have to copy
/// out (or have copied out) live objects of its own replica first.
#[derive(Clone, Debug)]
pub struct RetireState {
    /// The initiating node to acknowledge.
    pub requester: NodeId,
    /// Segments being retired.
    pub segments: Vec<SegmentId>,
    /// Objects whose relocation this receiver still awaits.
    pub awaiting_oids: BTreeSet<Oid>,
}

impl BunchReplicaGc {
    /// Fresh state for a replica of `bunch` whose current segments are
    /// `alloc_segments`.
    pub fn new(bunch: BunchId, alloc_segments: Vec<SegmentId>) -> Self {
        BunchReplicaGc {
            bunch,
            epoch: Epoch::default(),
            stub_table: StubTable::default(),
            scion_table: ScionTable::default(),
            alloc_segments,
            pending_from: Vec::new(),
            relocations: Vec::new(),
            reuse: None,
            retire: None,
        }
    }
}

/// All collector state of one node.
pub struct GcNodeState {
    /// The node.
    pub node: NodeId,
    /// Per-bunch replica state, for every locally mapped bunch.
    pub bunches: BTreeMap<BunchId, BunchReplicaGc>,
    /// Local object directory and forwarding knowledge.
    pub directory: Directory,
    /// Relocations buffered per destination for piggy-backing.
    pub piggy: PiggybackBuffer<Relocation>,
    /// Mutator roots (the paper's "local root includes mutator stacks"),
    /// keyed by a stable root id so the BGC can rewrite them after copies.
    pub roots: BTreeMap<u64, Addr>,
    next_root: u64,
    /// SSP-id counter for pairs created at this node.
    pub next_ssp: u64,
    /// Latest reachability epoch consumed per `(source node, bunch)` —
    /// makes table processing idempotent and orders duplicates.
    pub cleaner_epochs: BTreeMap<(NodeId, BunchId), Epoch>,
    /// Bunches currently under an incremental collection at this node: the
    /// write barrier grays pointer-store targets in these bunches.
    pub active_groups: BTreeSet<BunchId>,
    /// Gray backlog: addresses the mutator made reachable while an
    /// incremental collection was running; absorbed by its next step/flip.
    pub grayed: Vec<Addr>,
}

impl GcNodeState {
    /// Creates empty state for `node`.
    pub fn new(node: NodeId) -> Self {
        GcNodeState {
            node,
            bunches: BTreeMap::new(),
            directory: Directory::new(),
            piggy: PiggybackBuffer::new(),
            roots: BTreeMap::new(),
            next_root: 1,
            next_ssp: 1,
            cleaner_epochs: BTreeMap::new(),
            active_groups: BTreeSet::new(),
            grayed: Vec::new(),
        }
    }

    /// Grays an address for an active incremental collection, if its bunch
    /// is under collection (no-op otherwise). Called by the write barrier
    /// and the root hooks.
    pub fn gray_if_active(&mut self, bunch: Option<BunchId>, addr: Addr) {
        if let Some(b) = bunch {
            if self.active_groups.contains(&b) {
                self.grayed.push(addr);
            }
        }
    }

    /// Registers a mutator root; returns its id.
    pub fn add_root(&mut self, addr: Addr) -> u64 {
        let id = self.next_root;
        self.next_root += 1;
        self.roots.insert(id, addr);
        id
    }

    /// Reads a root slot.
    pub fn root(&self, id: u64) -> Option<Addr> {
        self.roots.get(&id).copied()
    }

    /// Overwrites a root slot (the mutator re-pointed a stack variable).
    pub fn set_root(&mut self, id: u64, addr: Addr) {
        self.roots.insert(id, addr);
    }

    /// Drops a root slot (the stack frame died).
    pub fn remove_root(&mut self, id: u64) -> Option<Addr> {
        self.roots.remove(&id)
    }

    /// State of the given bunch replica, if mapped here.
    pub fn bunch(&self, bunch: BunchId) -> Option<&BunchReplicaGc> {
        self.bunches.get(&bunch)
    }

    /// Mutable state of the given bunch replica, if mapped here.
    pub fn bunch_mut(&mut self, bunch: BunchId) -> Option<&mut BunchReplicaGc> {
        self.bunches.get_mut(&bunch)
    }

    /// State of the given bunch replica, created on demand.
    pub fn bunch_or_default(&mut self, bunch: BunchId) -> &mut BunchReplicaGc {
        self.bunches
            .entry(bunch)
            .or_insert_with(|| BunchReplicaGc::new(bunch, Vec::new()))
    }

    /// Mints a fresh SSP sequence number.
    pub fn next_ssp_seq(&mut self) -> u64 {
        let s = self.next_ssp;
        self.next_ssp += 1;
        s
    }
}

/// The whole collector's state, plus shared infrastructure handles.
pub struct GcState {
    /// Per-node state, indexed by `NodeId`.
    pub nodes: Vec<GcNodeState>,
    /// The shared segment server (to map to-space segments on demand).
    pub server: SharedServer,
    /// Which nodes have each bunch mapped (report destinations).
    pub mappings: BTreeMap<BunchId, BTreeSet<NodeId>>,
    /// How relocations travel (experiment E3 knob).
    pub reloc_mode: RelocMode,
    /// Relocations awaiting explicit transmission (only used in
    /// [`RelocMode::Explicit`]); drained by the cluster driver.
    pub explicit_queue: Vec<(NodeId, NodeId, Vec<Relocation>)>,
}

impl GcState {
    /// Creates collector state for an `n`-node cluster sharing `server`.
    pub fn new(n: usize, server: SharedServer) -> Self {
        GcState {
            nodes: (0..n).map(|i| GcNodeState::new(NodeId(i as u32))).collect(),
            server,
            mappings: BTreeMap::new(),
            reloc_mode: RelocMode::default(),
            explicit_queue: Vec::new(),
        }
    }

    /// Borrows one node's state.
    pub fn node(&self, node: NodeId) -> &GcNodeState {
        &self.nodes[node.0 as usize]
    }

    /// Mutably borrows one node's state.
    pub fn node_mut(&mut self, node: NodeId) -> &mut GcNodeState {
        &mut self.nodes[node.0 as usize]
    }

    /// Records that `node` has `bunch` mapped.
    pub fn note_mapping(&mut self, bunch: BunchId, node: NodeId) {
        self.mappings.entry(bunch).or_default().insert(node);
    }

    /// Nodes that currently have `bunch` mapped.
    pub fn mapped_nodes(&self, bunch: BunchId) -> Vec<NodeId> {
        self.mappings
            .get(&bunch)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The bunch containing `addr`, from the shared server.
    pub fn bunch_of(&self, addr: Addr) -> Option<BunchId> {
        self.server.borrow().bunch_of(addr)
    }

    /// Convenience: the current local address of `oid` at `node`.
    pub fn local_addr_of(&self, node: NodeId, oid: Oid) -> Option<Addr> {
        self.node(node).directory.addr_of(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_addr::server::Protection;

    fn shared_server() -> SharedServer {
        SharedServer::new(SegmentServer::new(64))
    }

    #[test]
    fn roots_add_set_remove() {
        let mut ns = GcNodeState::new(NodeId(0));
        let r1 = ns.add_root(Addr(0x100));
        let r2 = ns.add_root(Addr(0x200));
        assert_ne!(r1, r2);
        assert_eq!(ns.root(r1), Some(Addr(0x100)));
        ns.set_root(r1, Addr(0x300));
        assert_eq!(ns.root(r1), Some(Addr(0x300)));
        assert_eq!(ns.remove_root(r2), Some(Addr(0x200)));
        assert_eq!(ns.root(r2), None);
    }

    #[test]
    fn ssp_seqs_are_unique() {
        let mut ns = GcNodeState::new(NodeId(0));
        let a = ns.next_ssp_seq();
        let b = ns.next_ssp_seq();
        assert_ne!(a, b);
    }

    #[test]
    fn mappings_registry() {
        let mut gc = GcState::new(3, shared_server());
        let b = BunchId(1);
        gc.note_mapping(b, NodeId(0));
        gc.note_mapping(b, NodeId(2));
        gc.note_mapping(b, NodeId(0));
        assert_eq!(gc.mapped_nodes(b), vec![NodeId(0), NodeId(2)]);
        assert!(gc.mapped_nodes(BunchId(9)).is_empty());
    }

    #[test]
    fn bunch_of_consults_server() {
        let server = shared_server();
        let b = server
            .borrow_mut()
            .create_bunch(NodeId(0), Protection::default());
        let seg = server.borrow_mut().alloc_segment(b).unwrap();
        let gc = GcState::new(1, server);
        assert_eq!(gc.bunch_of(seg.base), Some(b));
        assert_eq!(gc.bunch_of(Addr(1)), None);
    }

    #[test]
    fn bunch_or_default_creates_state() {
        let mut ns = GcNodeState::new(NodeId(1));
        assert!(ns.bunch(BunchId(5)).is_none());
        ns.bunch_or_default(BunchId(5))
            .stub_table
            .add_intra(crate::ssp::IntraStub {
                oid: Oid(1),
                bunch: BunchId(5),
                scion_at: NodeId(0),
            });
        assert_eq!(ns.bunch(BunchId(5)).unwrap().stub_table.len(), 1);
    }
}
