//! The write barrier.
//!
//! Every pointer store goes through [`write_ref`]. Same-bunch stores are the
//! fast path; a store that creates an inter-bunch reference triggers SSP
//! construction "immediately after detecting the creation of the
//! corresponding inter-bunch reference" (paper, Section 3.2): the stub is
//! recorded locally, and the scion is created locally if the target bunch is
//! mapped here, or requested with a *scion-message* otherwise. The paper
//! instruments writes with a compiler-inserted C++ macro; here the barrier
//! is the only pointer-store API, which is the same interposition point.

use bmx_addr::object;
use bmx_addr::NodeMemory;
use bmx_common::{Addr, NodeId, NodeStats, Result, StatKind};
use bmx_trace::{self as trace, SspKind, TraceEvent};

use crate::msg::GcMsg;
use crate::ssp::{InterScion, InterStub, SspId};
use crate::state::GcState;

/// Performs the barriered pointer store `(*src_obj).field = target` at
/// `node`.
///
/// Returns the scion-message to transmit, if the store created a cross-node
/// inter-bunch reference. The caller (the cluster driver) owns transmission;
/// the barrier itself never blocks.
pub fn write_ref(
    gc: &mut GcState,
    node: NodeId,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    src_obj: Addr,
    field: u64,
    target: Addr,
) -> Result<Option<(NodeId, GcMsg)>> {
    // The store itself (through local forwarding, so a mutator holding a
    // stale from-space pointer still writes the current copy).
    let src_cur = gc.node(node).directory.resolve(src_obj);
    let target_cur = gc.node(node).directory.resolve(target);
    object::write_ref_field(mem, src_cur, field, target_cur)?;
    if target_cur.is_null() {
        stats.bump(StatKind::BarrierFastPaths);
        return Ok(None);
    }
    let (Some(src_bunch), Some(tgt_bunch)) = (gc.bunch_of(src_cur), gc.bunch_of(target_cur)) else {
        stats.bump(StatKind::BarrierFastPaths);
        return Ok(None);
    };
    // Incremental-collection graying: a pointer stored while the target's
    // bunch is under collection makes the target reachable through a
    // possibly-already-scanned object; the collector must revisit it.
    gc.node_mut(node)
        .gray_if_active(Some(tgt_bunch), target_cur);
    if src_bunch == tgt_bunch {
        stats.bump(StatKind::BarrierFastPaths);
        return Ok(None);
    }
    stats.bump(StatKind::BarrierSlowPaths);

    let source_oid = object::view(mem, src_cur)?.oid;
    let target_oid = object::view(mem, target_cur).ok().map(|v| v.oid);
    let seq = gc.node_mut(node).next_ssp_seq();
    let id = SspId { node, seq };
    // The scion lives locally when the target bunch is mapped here;
    // otherwise at the target bunch's creator node (the stable home a
    // scion-message can always be routed to).
    let scion_at = if gc.node(node).bunches.contains_key(&tgt_bunch) {
        node
    } else {
        gc.server.borrow().bunch(tgt_bunch)?.creator
    };
    let stub = InterStub {
        id,
        source_bunch: src_bunch,
        source_oid,
        target_bunch: tgt_bunch,
        target_addr: target_cur,
        target_oid,
        scion_at,
    };
    if !gc
        .node_mut(node)
        .bunch_or_default(src_bunch)
        .stub_table
        .add_inter(stub)
    {
        // The reference was already described by an existing SSP.
        return Ok(None);
    }
    trace::emit(
        node,
        TraceEvent::SspCreate {
            kind: SspKind::InterStub,
            oid: Some(source_oid),
            peer: scion_at,
        },
    );
    let scion = InterScion {
        id,
        source_node: node,
        source_bunch: src_bunch,
        target_bunch: tgt_bunch,
        target_addr: target_cur,
        target_oid,
    };
    if scion_at == node {
        gc.node_mut(node)
            .bunch_or_default(tgt_bunch)
            .scion_table
            .add_inter(scion);
        trace::emit(
            node,
            TraceEvent::SspCreate {
                kind: SspKind::InterScion,
                oid: target_oid,
                peer: node,
            },
        );
        Ok(None)
    } else {
        stats.bump(StatKind::ScionMessages);
        Ok(Some((scion_at, GcMsg::ScionCreate { scion })))
    }
}

/// Installs a scion received in a scion-message.
pub fn install_scion(gc: &mut GcState, at: NodeId, scion: InterScion) {
    let event = TraceEvent::SspCreate {
        kind: SspKind::InterScion,
        oid: scion.target_oid,
        peer: scion.source_node,
    };
    if gc
        .node_mut(at)
        .bunch_or_default(scion.target_bunch)
        .scion_table
        .add_inter(scion)
    {
        trace::emit(at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_addr::server::Protection;
    use bmx_addr::SegmentServer;
    use bmx_common::Oid;

    struct Fix {
        gc: GcState,
        mem: NodeMemory,
        stats: NodeStats,
        b1: bmx_common::BunchId,
        b2: bmx_common::BunchId,
        o1: Addr,
        o2: Addr,
        o3: Addr,
    }

    /// Two bunches, both mapped at node 0; B2 also exists at node 1 (its
    /// creator). O1, O2 in B1; O3 in B2.
    fn fixture(map_b2_locally: bool) -> Fix {
        let server = crate::state::SharedServer::new(SegmentServer::new(128));
        let b1 = server
            .borrow_mut()
            .create_bunch(NodeId(0), Protection::default());
        let b2 = server
            .borrow_mut()
            .create_bunch(NodeId(1), Protection::default());
        let s1 = server.borrow_mut().alloc_segment(b1).unwrap();
        let s2 = server.borrow_mut().alloc_segment(b2).unwrap();
        let mut gc = GcState::new(2, server);
        let mut mem = NodeMemory::new(NodeId(0));
        mem.map_segment(s1);
        mem.map_segment(s2);
        gc.node_mut(NodeId(0))
            .bunch_or_default(b1)
            .alloc_segments
            .push(s1.id);
        if map_b2_locally {
            gc.node_mut(NodeId(0))
                .bunch_or_default(b2)
                .alloc_segments
                .push(s2.id);
        }
        let seg1 = mem.segment_mut(s1.id).unwrap();
        let o1 = object::alloc_in_segment(seg1, Oid(1), 2, &[0, 1]).unwrap();
        let o2 = object::alloc_in_segment(seg1, Oid(2), 1, &[0]).unwrap();
        let seg2 = mem.segment_mut(s2.id).unwrap();
        let o3 = object::alloc_in_segment(seg2, Oid(3), 1, &[]).unwrap();
        for (oid, a) in [(1, o1), (2, o2), (3, o3)] {
            gc.node_mut(NodeId(0)).directory.set_addr(Oid(oid), a);
        }
        Fix {
            gc,
            mem,
            stats: NodeStats::new(),
            b1,
            b2,
            o1,
            o2,
            o3,
        }
    }

    #[test]
    fn intra_bunch_store_is_fast_path() {
        let mut f = fixture(true);
        let out = write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            0,
            f.o2,
        )
        .unwrap();
        assert!(out.is_none());
        assert_eq!(f.stats.get(StatKind::BarrierFastPaths), 1);
        assert_eq!(f.stats.get(StatKind::BarrierSlowPaths), 0);
        assert_eq!(object::read_ref_field(&f.mem, f.o1, 0).unwrap(), f.o2);
        assert!(f
            .gc
            .node(NodeId(0))
            .bunch(f.b1)
            .unwrap()
            .stub_table
            .is_empty());
    }

    #[test]
    fn null_store_is_fast_path() {
        let mut f = fixture(true);
        let out = write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            0,
            Addr::NULL,
        )
        .unwrap();
        assert!(out.is_none());
        assert_eq!(f.stats.get(StatKind::BarrierFastPaths), 1);
    }

    #[test]
    fn inter_bunch_store_creates_local_ssp_when_target_mapped() {
        let mut f = fixture(true);
        let out = write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            1,
            f.o3,
        )
        .unwrap();
        assert!(
            out.is_none(),
            "target bunch mapped locally: no scion-message"
        );
        assert_eq!(f.stats.get(StatKind::BarrierSlowPaths), 1);
        let stubs = &f.gc.node(NodeId(0)).bunch(f.b1).unwrap().stub_table;
        assert_eq!(stubs.inter().len(), 1);
        assert_eq!(stubs.inter()[0].source_oid, Oid(1));
        assert_eq!(stubs.inter()[0].target_bunch, f.b2);
        let scions = &f.gc.node(NodeId(0)).bunch(f.b2).unwrap().scion_table;
        assert_eq!(scions.inter().len(), 1);
        assert_eq!(scions.inter()[0].id, stubs.inter()[0].id);
    }

    #[test]
    fn inter_bunch_store_to_unmapped_bunch_emits_scion_message() {
        let mut f = fixture(false);
        let out = write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            1,
            f.o3,
        )
        .unwrap();
        let (dest, msg) = out.expect("scion-message required");
        assert_eq!(dest, NodeId(1), "routed to the target bunch's creator");
        assert_eq!(f.stats.get(StatKind::ScionMessages), 1);
        let GcMsg::ScionCreate { scion } = msg else {
            panic!("wrong message")
        };
        assert_eq!(scion.source_node, NodeId(0));
        assert_eq!(scion.target_bunch, f.b2);
        // Deliver it and check installation.
        let mut gc2 = f.gc;
        install_scion(&mut gc2, NodeId(1), scion.clone());
        assert_eq!(
            gc2.node(NodeId(1))
                .bunch(f.b2)
                .unwrap()
                .scion_table
                .inter()
                .len(),
            1
        );
        // Idempotent.
        install_scion(&mut gc2, NodeId(1), scion);
        assert_eq!(
            gc2.node(NodeId(1))
                .bunch(f.b2)
                .unwrap()
                .scion_table
                .inter()
                .len(),
            1
        );
    }

    #[test]
    fn duplicate_reference_creates_single_ssp() {
        let mut f = fixture(true);
        write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            1,
            f.o3,
        )
        .unwrap();
        // Store the same target again (same field or another field).
        write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            0,
            f.o3,
        )
        .unwrap();
        assert_eq!(
            f.gc.node(NodeId(0))
                .bunch(f.b1)
                .unwrap()
                .stub_table
                .inter()
                .len(),
            1
        );
    }

    #[test]
    fn store_through_forwarded_source_hits_current_copy() {
        let mut f = fixture(true);
        // Pretend O1 moved: create the to-space copy and a forwarding edge.
        let img = object::ObjectImage::capture(&f.mem, f.o1).unwrap();
        let to = f.o2.add_words(16);
        object::install_object_at(&mut f.mem, to, &img).unwrap();
        f.gc.node_mut(NodeId(0))
            .directory
            .record_move(Oid(1), f.o1, to);
        write_ref(
            &mut f.gc,
            NodeId(0),
            &mut f.mem,
            &mut f.stats,
            f.o1,
            0,
            f.o2,
        )
        .unwrap();
        assert_eq!(
            object::read_ref_field(&f.mem, to, 0).unwrap(),
            f.o2,
            "write landed on the current copy"
        );
    }
}
