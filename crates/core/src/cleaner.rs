//! The scion cleaner (paper, Section 6).
//!
//! One cleaner service per node processes the reachability reports produced
//! by remote (and local-peer) bunch collections. Against the report from
//! `(source node, bunch)` it:
//!
//! * deletes local inter-bunch scions attributed to that source that no
//!   reported stub matches — and (re)creates scions for reported stubs whose
//!   scion site is this node, which makes a lost scion-message recoverable
//!   from the next table (the tables are the ground truth; that is what
//!   makes them re-sendable without a reliable transport);
//! * deletes local intra-bunch scions whose stub holder is the source node
//!   and whose stub is gone;
//! * deletes entering ownerPtrs from the source node that the report's
//!   exiting list no longer justifies (Section 6.2) — and adds ones it
//!   newly asserts.
//!
//! Reports are consumed at most once per epoch per `(source, bunch)`:
//! duplicates and stale retransmissions are ignored, so processing is
//! idempotent. FIFO per channel (message numbering) plus the epoch check
//! gives exactly the ordering Section 6.1 requires.

use bmx_common::{NodeId, NodeStats, StatKind};
use bmx_dsm::DsmEngine;
use bmx_trace::{self as trace, TraceEvent};

use crate::msg::ReachabilityReport;
use crate::ssp::InterScion;
use crate::state::GcState;

/// Outcome of processing one report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// The report was fresh (not a duplicate or stale retransmission).
    pub applied: bool,
    /// Inter- and intra-bunch scions removed.
    pub scions_removed: u64,
    /// Scions created from reported stubs (lost scion-message recovery).
    pub scions_created: u64,
    /// Entering ownerPtrs removed.
    pub owner_ptrs_removed: u64,
}

/// Processes `report` at node `at`.
pub fn process_report(
    gc: &mut GcState,
    engine: &mut DsmEngine,
    stats: &mut NodeStats,
    at: NodeId,
    report: &ReachabilityReport,
) -> CleanOutcome {
    let mut out = CleanOutcome::default();
    let key = (report.from, report.bunch);
    {
        let ns = gc.node_mut(at);
        if ns
            .cleaner_epochs
            .get(&key)
            .is_some_and(|&e| e >= report.epoch)
        {
            return out; // duplicate or stale: idempotent no-op
        }
        ns.cleaner_epochs.insert(key, report.epoch);
    }
    out.applied = true;
    // The apply event precedes every retirement below, which is exactly
    // the ordering the trace query asserts: no retirement without a prior
    // covering epoch.
    trace::emit(
        at,
        TraceEvent::ReportApply {
            source: report.from,
            bunch: report.bunch,
            epoch: report.epoch,
        },
    );

    // Index the report once: the cleaner must stay linear even for large
    // tables (it runs on every collection's publication).
    let reported_ids: std::collections::BTreeSet<crate::ssp::SspId> =
        report.inter_stubs.iter().map(|st| st.id).collect();
    let reported_intra: std::collections::BTreeSet<(bmx_common::Oid, NodeId)> = report
        .intra_stubs
        .iter()
        .map(|st| (st.oid, st.scion_at))
        .collect();

    // Inter-bunch scions: the reported stub table is authoritative for this
    // (source node, source bunch).
    let ns = gc.node_mut(at);
    for brs in ns.bunches.values_mut() {
        let before = brs.scion_table.inter().len();
        brs.scion_table.retain_inter(|s| {
            s.source_node != report.from
                || s.source_bunch != report.bunch
                || reported_ids.contains(&s.id)
        });
        out.scions_removed += (before - brs.scion_table.inter().len()) as u64;
    }
    // Recreate scions this node should hold but lost (e.g. dropped
    // scion-message). `add_inter` dedups through the table's sharded
    // membership index, so this stays linear for large tables.
    for stub in &report.inter_stubs {
        if stub.scion_at != at {
            continue;
        }
        let created = ns
            .bunch_or_default(stub.target_bunch)
            .scion_table
            .add_inter(InterScion {
                id: stub.id,
                source_node: report.from,
                source_bunch: stub.source_bunch,
                target_bunch: stub.target_bunch,
                target_addr: stub.target_addr,
                target_oid: stub.target_oid,
            });
        if created {
            out.scions_created += 1;
        }
    }

    // Intra-bunch scions of this bunch whose stub holder is the reporter.
    if let Some(brs) = ns.bunch_mut(report.bunch) {
        let before = brs.scion_table.intra().len();
        brs.scion_table
            .retain_intra(|s| s.stub_at != report.from || reported_intra.contains(&(s.oid, at)));
        out.scions_removed += (before - brs.scion_table.intra().len()) as u64;
    }
    // Create (or re-key) intra scions the report asserts: after an
    // ownership-transfer chain compression the stub may have moved to a
    // node this site never exchanged an intra SSP with directly.
    for stub in &report.intra_stubs {
        if stub.scion_at != at {
            continue;
        }
        let created =
            ns.bunch_or_default(stub.bunch)
                .scion_table
                .add_intra(crate::ssp::IntraScion {
                    oid: stub.oid,
                    bunch: stub.bunch,
                    stub_at: report.from,
                });
        if created {
            out.scions_created += 1;
        }
    }

    // Entering ownerPtrs from the reporter: remove those the exiting list
    // no longer justifies, add those it newly asserts.
    let stale: Vec<_> = engine
        .replicas(at)
        .into_iter()
        .filter(|(oid, st)| {
            st.bunch == report.bunch
                && st.entering.contains(&report.from)
                && !report
                    .exiting
                    .iter()
                    .any(|&(o, tgt)| o == *oid && tgt == at)
        })
        .map(|(oid, _)| oid)
        .collect();
    for oid in stale {
        engine.remove_entering(at, oid, report.from);
        out.owner_ptrs_removed += 1;
    }
    for &(oid, tgt) in &report.exiting {
        if tgt == at {
            engine.add_entering(at, oid, report.from);
        }
    }

    stats.add(StatKind::ScionsCleaned, out.scions_removed);
    stats.add(StatKind::OwnerPtrsCleaned, out.owner_ptrs_removed);
    crate::collect::refresh_node_gauges(gc, at);
    // Aggregate counts keep the cleaner allocation-free under tracing.
    if out.scions_removed > 0 {
        trace::emit(
            at,
            TraceEvent::ScionRetired {
                source: report.from,
                bunch: report.bunch,
                epoch: report.epoch,
                count: out.scions_removed,
            },
        );
    }
    if out.owner_ptrs_removed > 0 {
        trace::emit(
            at,
            TraceEvent::OwnerPtrRetired {
                source: report.from,
                bunch: report.bunch,
                epoch: report.epoch,
                count: out.owner_ptrs_removed,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssp::{InterStub, IntraScion, IntraStub, SspId};
    use bmx_addr::server::Protection;
    use bmx_addr::SegmentServer;
    use bmx_common::{Addr, BunchId, Epoch, Oid};

    fn gc_with(n: usize) -> GcState {
        let server = crate::state::SharedServer::new(SegmentServer::new(64));
        server
            .borrow_mut()
            .create_bunch(NodeId(0), Protection::default());
        GcState::new(n, server)
    }

    fn report(from: u32, bunch: u32, epoch: u64) -> ReachabilityReport {
        ReachabilityReport {
            from: NodeId(from),
            bunch: BunchId(bunch),
            epoch: Epoch(epoch),
            inter_stubs: vec![],
            intra_stubs: vec![],
            exiting: vec![],
        }
    }

    fn scion(id_seq: u64, src_node: u32, src_bunch: u32, tgt_bunch: u32) -> InterScion {
        InterScion {
            id: SspId {
                node: NodeId(src_node),
                seq: id_seq,
            },
            source_node: NodeId(src_node),
            source_bunch: BunchId(src_bunch),
            target_bunch: BunchId(tgt_bunch),
            target_addr: Addr(0x2_0000),
            target_oid: Some(Oid(5)),
        }
    }

    #[test]
    fn unmatched_scion_is_removed() {
        let mut gc = gc_with(2);
        let mut engine = DsmEngine::new(2);
        let mut stats = NodeStats::new();
        gc.node_mut(NodeId(1))
            .bunch_or_default(BunchId(2))
            .scion_table
            .add_inter(scion(1, 0, 1, 2));
        let out = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 1),
        );
        assert!(out.applied);
        assert_eq!(out.scions_removed, 1);
        assert!(gc
            .node(NodeId(1))
            .bunch(BunchId(2))
            .unwrap()
            .scion_table
            .inter()
            .is_empty());
        assert_eq!(stats.get(StatKind::ScionsCleaned), 1);
    }

    #[test]
    fn matched_scion_survives() {
        let mut gc = gc_with(2);
        let mut engine = DsmEngine::new(2);
        let mut stats = NodeStats::new();
        let sc = scion(1, 0, 1, 2);
        gc.node_mut(NodeId(1))
            .bunch_or_default(BunchId(2))
            .scion_table
            .add_inter(sc.clone());
        let mut rep = report(0, 1, 1);
        rep.inter_stubs.push(InterStub {
            id: sc.id,
            source_bunch: BunchId(1),
            source_oid: Oid(9),
            target_bunch: BunchId(2),
            target_addr: sc.target_addr,
            target_oid: sc.target_oid,
            scion_at: NodeId(1),
        });
        let out = process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &rep);
        assert_eq!(out.scions_removed, 0);
        assert_eq!(out.scions_created, 0, "already present");
        assert_eq!(
            gc.node(NodeId(1))
                .bunch(BunchId(2))
                .unwrap()
                .scion_table
                .inter()
                .len(),
            1
        );
    }

    #[test]
    fn lost_scion_message_recovered_from_table() {
        let mut gc = gc_with(2);
        let mut engine = DsmEngine::new(2);
        let mut stats = NodeStats::new();
        // The scion never arrived, but the stub table reports it.
        let mut rep = report(0, 1, 1);
        rep.inter_stubs.push(InterStub {
            id: SspId {
                node: NodeId(0),
                seq: 7,
            },
            source_bunch: BunchId(1),
            source_oid: Oid(3),
            target_bunch: BunchId(2),
            target_addr: Addr(0x2_0000),
            target_oid: None,
            scion_at: NodeId(1),
        });
        let out = process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &rep);
        assert_eq!(out.scions_created, 1);
        assert_eq!(
            gc.node(NodeId(1))
                .bunch(BunchId(2))
                .unwrap()
                .scion_table
                .inter()
                .len(),
            1
        );
    }

    #[test]
    fn duplicate_and_stale_reports_are_ignored() {
        let mut gc = gc_with(2);
        let mut engine = DsmEngine::new(2);
        let mut stats = NodeStats::new();
        let out1 = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 3),
        );
        assert!(out1.applied);
        let out2 = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 3),
        );
        assert!(!out2.applied, "same epoch: duplicate");
        let out3 = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 2),
        );
        assert!(!out3.applied, "older epoch: stale");
        let out4 = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 4),
        );
        assert!(out4.applied);
    }

    #[test]
    fn reports_from_different_sources_do_not_interfere() {
        let mut gc = gc_with(3);
        let mut engine = DsmEngine::new(3);
        let mut stats = NodeStats::new();
        // Scions from two different source nodes for the same bunch.
        let t = gc.node_mut(NodeId(2)).bunch_or_default(BunchId(2));
        t.scion_table.add_inter(scion(1, 0, 1, 2));
        t.scion_table.add_inter(scion(1, 1, 1, 2));
        // An empty report from node 0 must only prune node 0's scion.
        process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(2),
            &report(0, 1, 1),
        );
        let remaining = &gc
            .node(NodeId(2))
            .bunch(BunchId(2))
            .unwrap()
            .scion_table
            .inter();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].source_node, NodeId(1));
    }

    #[test]
    fn intra_scion_cleaning_follows_stub_holder() {
        let mut gc = gc_with(3);
        let mut engine = DsmEngine::new(3);
        let mut stats = NodeStats::new();
        let t = gc.node_mut(NodeId(1)).bunch_or_default(BunchId(1));
        t.scion_table.add_intra(IntraScion {
            oid: Oid(4),
            bunch: BunchId(1),
            stub_at: NodeId(0),
        });
        t.scion_table.add_intra(IntraScion {
            oid: Oid(5),
            bunch: BunchId(1),
            stub_at: NodeId(0),
        });
        let mut rep = report(0, 1, 1);
        // Node 0 still holds the stub for O4 (pointing at our scion) but
        // dropped the one for O5.
        rep.intra_stubs.push(IntraStub {
            oid: Oid(4),
            bunch: BunchId(1),
            scion_at: NodeId(1),
        });
        let out = process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &rep);
        assert_eq!(out.scions_removed, 1);
        let intra = &gc
            .node(NodeId(1))
            .bunch(BunchId(1))
            .unwrap()
            .scion_table
            .intra();
        assert_eq!(intra.len(), 1);
        assert_eq!(intra[0].oid, Oid(4));
    }

    #[test]
    fn entering_owner_ptrs_follow_exiting_lists() {
        let mut gc = gc_with(2);
        let mut engine = DsmEngine::new(2);
        let mut stats = NodeStats::new();
        engine.register_alloc(NodeId(1), Oid(7), BunchId(1));
        engine.add_entering(NodeId(1), Oid(7), NodeId(0));
        // Report from node 0 with no exiting entry for O7: entering removed.
        let out = process_report(
            &mut gc,
            &mut engine,
            &mut stats,
            NodeId(1),
            &report(0, 1, 1),
        );
        assert_eq!(out.owner_ptrs_removed, 1);
        assert!(engine
            .obj_state(NodeId(1), Oid(7))
            .unwrap()
            .entering
            .is_empty());
        // A later report asserting the pointer re-adds it.
        let mut rep = report(0, 1, 2);
        rep.exiting.push((Oid(7), NodeId(1)));
        process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &rep);
        assert!(engine
            .obj_state(NodeId(1), Oid(7))
            .unwrap()
            .entering
            .contains(&NodeId(0)));
    }

    #[test]
    fn exiting_ptr_to_third_party_does_not_protect_here() {
        let mut gc = gc_with(3);
        let mut engine = DsmEngine::new(3);
        let mut stats = NodeStats::new();
        engine.register_alloc(NodeId(1), Oid(7), BunchId(1));
        engine.add_entering(NodeId(1), Oid(7), NodeId(0));
        // Node 0's ownerPtr now enters node 2, not node 1.
        let mut rep = report(0, 1, 1);
        rep.exiting.push((Oid(7), NodeId(2)));
        let out = process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &rep);
        assert_eq!(out.owner_ptrs_removed, 1);
    }
}
