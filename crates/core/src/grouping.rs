//! Bunch-grouping heuristics for the group collector.
//!
//! The paper's GGC groups bunches "based on a heuristic that maximizes the
//! amount of inter-bunch garbage that is collected and minimizes the cost
//! of performing the collection. Currently, we use a locality-based
//! heuristic ... We believe that some of these cycles can be collected by
//! improving the grouping heuristic" (Section 7). This module implements
//! the locality heuristic plus two of the improvements the paper leaves as
//! future work:
//!
//! * [`Heuristic::Locality`] — every bunch mapped at the node (the paper's
//!   prototype);
//! * [`Heuristic::SizeBounded`] — locality capped at `k` bunches per group
//!   (bounds the collection cost, may split cycles across groups);
//! * [`Heuristic::SspClosure`] — connected components of the local
//!   SSP graph: bunches joined by an inter-bunch stub/scion pair at this
//!   node end up in the same group, so a locally-visible cycle is never
//!   split — the smallest groups that still collect every local cycle.

use std::collections::{BTreeMap, BTreeSet};

use bmx_common::{BunchId, NodeId};

use crate::state::GcState;

/// How the group collector picks its groups at one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Heuristic {
    /// All locally mapped bunches in one group (the paper's prototype).
    Locality,
    /// Locality, split into chunks of at most `k` bunches.
    SizeBounded(usize),
    /// Connected components of the local inter-bunch SSP graph.
    SspClosure,
}

/// Computes the groups the heuristic prescribes for `node`.
///
/// Groups are disjoint and cover every locally mapped bunch; collecting
/// them one by one is equivalent to one GGC run under
/// [`Heuristic::Locality`], cheaper under the others.
pub fn groups(gc: &GcState, node: NodeId, heuristic: Heuristic) -> Vec<Vec<BunchId>> {
    let all: Vec<BunchId> = gc.node(node).bunches.keys().copied().collect();
    match heuristic {
        Heuristic::Locality => {
            if all.is_empty() {
                Vec::new()
            } else {
                vec![all]
            }
        }
        Heuristic::SizeBounded(k) => {
            let k = k.max(1);
            all.chunks(k).map(<[BunchId]>::to_vec).collect()
        }
        Heuristic::SspClosure => ssp_components(gc, node, &all),
    }
}

/// Union of locally visible SSP edges between bunches, as connected
/// components.
fn ssp_components(gc: &GcState, node: NodeId, all: &[BunchId]) -> Vec<Vec<BunchId>> {
    // Union-find over the bunch ids.
    let index: BTreeMap<BunchId, usize> = all.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let mut parent: Vec<usize> = (0..all.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut Vec<usize>, a: BunchId, b: BunchId| {
        let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) else {
            return;
        };
        let (ra, rb) = (find(parent, ia), find(parent, ib));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    let ns = gc.node(node);
    for brs in ns.bunches.values() {
        for s in brs.stub_table.inter() {
            union(&mut parent, s.source_bunch, s.target_bunch);
        }
        for s in brs.scion_table.inter() {
            union(&mut parent, s.source_bunch, s.target_bunch);
        }
    }
    let mut by_root: BTreeMap<usize, Vec<BunchId>> = BTreeMap::new();
    for (i, &b) in all.iter().enumerate() {
        by_root.entry(find(&mut parent, i)).or_default().push(b);
    }
    by_root.into_values().collect()
}

/// Sanity: the produced groups partition the locally mapped bunches.
pub fn is_partition(gc: &GcState, node: NodeId, groups: &[Vec<BunchId>]) -> bool {
    let mut seen = BTreeSet::new();
    let mut count = 0;
    for g in groups {
        for &b in g {
            if !seen.insert(b) {
                return false;
            }
            count += 1;
        }
    }
    count == gc.node(node).bunches.len()
}
