//! A GCList-style sharded lock-free set with constant-time epoch-based
//! reclamation, used as the membership index behind the scion/stub tables
//! (see `ssp`).
//!
//! The structure follows the classic lock-free linked-list design (logical
//! delete via a mark bit folded into the successor pointer, physical unlink
//! during traversal) sharded by a deterministic hash so concurrent inserts
//! on different keys rarely contend. Retired nodes are *not* freed at
//! unlink time — a concurrent reader may still be traversing them — but
//! handed to an epoch-based reclamation scheme in the style of Wei &
//! Fatourou's constant-time EBR: three limbo generations, a global epoch,
//! and per-participant announcements. A node unlinked in epoch `e` is freed
//! only once the epoch has advanced twice past `e`, which requires every
//! pinned participant to have announced a newer epoch — at that point no
//! thread can still hold a reference into the retired generation.
//!
//! Two properties matter to the simulation:
//!
//! * **Determinism.** The shard hash is a fixed multiplicative mix (no
//!   `RandomState`), so single-threaded use — the deterministic cluster —
//!   behaves bit-identically across runs and replays.
//! * **No reclamation pauses.** `retire` is O(1) (a Treiber-stack push)
//!   and `try_advance` inspects a fixed-size participant table; neither
//!   walks the retired set, matching the constant-time-EBR bound.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards. A power of two so the hash folds with a mask.
const SHARDS: usize = 16;

/// Limbo generations. Three suffice: retire into `e % 3`, free `(e + 1) % 3`
/// (two generations behind) when advancing to `e + 1`.
const GENERATIONS: usize = 3;

/// Fixed-size participant table for epoch announcements.
const MAX_PARTICIPANTS: usize = 64;

/// Announcement value meaning "not inside a critical section".
const QUIESCENT: u64 = u64::MAX;

/// Low bit of a tagged successor pointer: set when the node owning the
/// pointer is logically deleted.
const MARK: usize = 1;

struct Node {
    key: u128,
    /// Tagged pointer: `Node*` in the high bits, [`MARK`] in bit 0.
    next: AtomicUsize,
}

#[inline]
fn untag(p: usize) -> *mut Node {
    (p & !MARK) as *mut Node
}

#[inline]
fn is_marked(p: usize) -> bool {
    p & MARK != 0
}

struct Shard {
    head: AtomicUsize,
    len: AtomicUsize,
}

/// A Treiber stack of retired nodes awaiting their reclamation epoch.
struct Limbo {
    head: AtomicUsize,
}

impl Limbo {
    const fn new() -> Self {
        Limbo {
            head: AtomicUsize::new(0),
        }
    }

    /// O(1) lock-free push of an unlinked node.
    ///
    /// The stack link is stored TAGGED: a retired node's `next` must keep
    /// its mark bit, because a straggler that found the node via `search`
    /// before it was unlinked may still inspect `next`. Every list CAS
    /// expects an unmarked value, so the preserved mark makes any such
    /// late CAS fail and the straggler restart from the head — storing an
    /// unmarked limbo link here would let a racing `remove` re-mark the
    /// node and report a second successful removal of the same key, or
    /// let a traversal follow the link into the limbo stack.
    fn push(&self, node: *mut Node) {
        let mut cur = self.head.load(Ordering::Acquire);
        loop {
            unsafe { (*node).next.store(cur | MARK, Ordering::Relaxed) };
            match self.head.compare_exchange_weak(
                cur,
                node as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Detaches the whole stack for freeing. Only the epoch-advancing
    /// thread frees a generation, and only one thread wins the epoch CAS,
    /// so the swap gives it exclusive ownership.
    fn take(&self) -> *mut Node {
        self.head.swap(0, Ordering::AcqRel) as *mut Node
    }
}

/// A sharded lock-free set of `u128` keys with epoch-based reclamation.
///
/// Callers compose their composite keys (oid + addr, oid + node, SSP id)
/// into the `u128` themselves; the set only hashes and compares it.
pub struct ShardedSet {
    shards: Box<[Shard]>,
    epoch: AtomicU64,
    limbo: [Limbo; GENERATIONS],
    /// Per-participant epoch announcements (QUIESCENT when unpinned).
    announce: Box<[AtomicU64]>,
    /// Participant-slot allocation bitmap-ish: slot is taken when `claimed`
    /// is nonzero.
    claimed: Box<[AtomicUsize]>,
    /// Retired nodes currently waiting in limbo (for tests / audits).
    limbo_count: AtomicUsize,
    /// Nodes physically freed so far (for tests / audits).
    freed: AtomicUsize,
}

impl Default for ShardedSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Deterministic multiplicative mix — no per-process hash randomization,
/// so the simulation's replay stays bit-exact.
#[inline]
fn mix(key: u128) -> u64 {
    let mut h = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 29;
    h
}

/// RAII pin on the current epoch: while alive, no generation the pin can
/// reach is freed.
pub struct Guard<'a> {
    set: &'a ShardedSet,
    slot: usize,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.set.announce[self.slot].store(QUIESCENT, Ordering::Release);
        self.set.claimed[self.slot].store(0, Ordering::Release);
    }
}

impl ShardedSet {
    /// An empty set.
    pub fn new() -> Self {
        let shards = (0..SHARDS)
            .map(|_| Shard {
                head: AtomicUsize::new(0),
                len: AtomicUsize::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedSet {
            shards,
            epoch: AtomicU64::new(0),
            limbo: [Limbo::new(), Limbo::new(), Limbo::new()],
            announce: (0..MAX_PARTICIPANTS)
                .map(|_| AtomicU64::new(QUIESCENT))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            claimed: (0..MAX_PARTICIPANTS)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            limbo_count: AtomicUsize::new(0),
            freed: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Shard {
        &self.shards[(mix(key) as usize) & (SHARDS - 1)]
    }

    /// Pins the current epoch. Every operation takes a guard internally;
    /// tests that want to model a stalled reader hold one across calls.
    pub fn pin(&self) -> Guard<'_> {
        let slot = self
            .claimed
            .iter()
            .position(|c| {
                c.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            })
            .expect("participant table full");
        let e = self.epoch.load(Ordering::SeqCst);
        self.announce[slot].store(e, Ordering::SeqCst);
        Guard { set: self, slot }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire))
            .sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nodes currently parked in limbo (unlinked, not yet freed).
    pub fn limbo_len(&self) -> usize {
        self.limbo_count.load(Ordering::Acquire)
    }

    /// Nodes physically freed so far.
    pub fn freed(&self) -> usize {
        self.freed.load(Ordering::Acquire)
    }

    /// Finds the first live node with `key` in `shard`, physically
    /// unlinking any marked nodes encountered. Returns `(prev_link,
    /// cur_tagged)` where `cur` either holds the key or is the first node
    /// past it (the list is unordered; we return on exact hit or end).
    fn search(&self, shard: &Shard, key: u128, guard: &Guard<'_>) -> Option<*mut Node> {
        'retry: loop {
            let mut prev: &AtomicUsize = &shard.head;
            let mut cur = prev.load(Ordering::Acquire);
            while !untag(cur).is_null() {
                let cur_ptr = untag(cur);
                let next = unsafe { (*cur_ptr).next.load(Ordering::Acquire) };
                if is_marked(next) {
                    // Logically deleted: unlink and retire, or restart if
                    // the predecessor moved under us.
                    if prev
                        .compare_exchange(cur, next & !MARK, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    self.retire(cur_ptr, guard);
                    cur = next & !MARK;
                    continue;
                }
                if unsafe { (*cur_ptr).key } == key {
                    return Some(cur_ptr);
                }
                prev = unsafe { &(*cur_ptr).next };
                cur = next;
            }
            return None;
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, key: u128) -> bool {
        let guard = self.pin();
        let shard = self.shard(key);
        loop {
            // Snapshot the head BEFORE the duplicate check. The publish
            // CAS below expects this snapshot, so it can only succeed if
            // no push landed since — a same-key insert racing in between
            // the search and the publish moves the head and forces a
            // retry, closing the window where two inserts of one key
            // could both pass the absence check and both publish.
            let head = shard.head.load(Ordering::Acquire);
            if is_marked(head) {
                continue; // impossible for a head link, but stay defensive
            }
            if self.search(shard, key, &guard).is_some() {
                return false;
            }
            if shard.head.load(Ordering::Acquire) != head {
                continue; // the shard moved under the search; re-check
            }
            let node = Box::into_raw(Box::new(Node {
                key,
                next: AtomicUsize::new(head),
            }));
            match shard.head.compare_exchange(
                head,
                node as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    shard.len.fetch_add(1, Ordering::AcqRel);
                    self.try_advance();
                    return true;
                }
                Err(_) => {
                    // Lost the race; free the unpublished node and retry
                    // (it was never visible, so no EBR needed).
                    drop(unsafe { Box::from_raw(node) });
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u128) -> bool {
        let guard = self.pin();
        self.search(self.shard(key), key, &guard).is_some()
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&self, key: u128) -> bool {
        let guard = self.pin();
        let shard = self.shard(key);
        loop {
            let Some(node) = self.search(shard, key, &guard) else {
                return false;
            };
            let next = unsafe { (*node).next.load(Ordering::Acquire) };
            if is_marked(next) {
                continue; // someone else is deleting it; re-search
            }
            // Logical delete: set the mark on the successor pointer. The
            // next traversal through it performs the physical unlink.
            if unsafe { &(*node).next }
                .compare_exchange(next, next | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                shard.len.fetch_sub(1, Ordering::AcqRel);
                // Eagerly attempt the unlink ourselves so quiescent
                // single-threaded use reclaims promptly.
                let _ = self.search(shard, key, &guard);
                self.try_advance();
                return true;
            }
        }
    }

    /// Removes every key. Single-owner operation (used when a table is
    /// rebuilt wholesale); concurrent readers remain safe because removal
    /// goes through the ordinary mark + retire path.
    pub fn clear(&self) {
        for i in 0..SHARDS {
            let shard = &self.shards[i];
            loop {
                let guard = self.pin();
                let cur = shard.head.load(Ordering::Acquire);
                let cur_ptr = untag(cur);
                if cur_ptr.is_null() {
                    break;
                }
                let key = unsafe { (*cur_ptr).key };
                drop(guard);
                self.remove(key);
            }
        }
    }

    /// Hands an unlinked node to the current limbo generation.
    fn retire(&self, node: *mut Node, _guard: &Guard<'_>) {
        let e = self.epoch.load(Ordering::SeqCst);
        self.limbo[(e as usize) % GENERATIONS].push(node);
        self.limbo_count.fetch_add(1, Ordering::AcqRel);
    }

    /// Advances the epoch if every pinned participant has announced the
    /// current one, then frees the generation two epochs behind. O(table
    /// size), not O(retired nodes) — the constant-time-EBR property.
    fn try_advance(&self) {
        let e = self.epoch.load(Ordering::SeqCst);
        for a in self.announce.iter() {
            let v = a.load(Ordering::SeqCst);
            if v != QUIESCENT && v < e {
                return; // a straggler still sits in an older epoch
            }
        }
        if self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return; // another advancer won; it will free the generation
        }
        // Generation (e + 2) % 3 == (e - 1) % 3's predecessor: everything
        // retired in epoch e - 1 or earlier parked there is unreachable.
        let gen = ((e as usize) + 2) % GENERATIONS;
        let mut cur = self.limbo[gen].take();
        while !cur.is_null() {
            let next = untag(unsafe { (*cur).next.load(Ordering::Relaxed) });
            drop(unsafe { Box::from_raw(cur) });
            self.limbo_count.fetch_sub(1, Ordering::AcqRel);
            self.freed.fetch_add(1, Ordering::AcqRel);
            cur = next;
        }
    }

    /// Drains every limbo generation that is safe to free by advancing the
    /// epoch repeatedly. Quiescent-time housekeeping (no guard may be held
    /// by the caller).
    pub fn flush_limbo(&self) {
        for _ in 0..GENERATIONS + 1 {
            self.try_advance();
        }
    }
}

impl Drop for ShardedSet {
    fn drop(&mut self) {
        // Exclusive access: free live chains and every limbo generation.
        for shard in self.shards.iter() {
            let mut cur = untag(shard.head.load(Ordering::Relaxed));
            while !cur.is_null() {
                let next = untag(unsafe { (*cur).next.load(Ordering::Relaxed) });
                drop(unsafe { Box::from_raw(cur) });
                cur = next;
            }
        }
        for limbo in &self.limbo {
            let mut cur = limbo.take();
            while !cur.is_null() {
                let next = untag(unsafe { (*cur).next.load(Ordering::Relaxed) });
                drop(unsafe { Box::from_raw(cur) });
                cur = next;
            }
        }
    }
}

unsafe impl Send for ShardedSet {}
unsafe impl Sync for ShardedSet {}

impl std::fmt::Debug for ShardedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSet")
            .field("len", &self.len())
            .field("limbo", &self.limbo_len())
            .finish()
    }
}

/// Packs two words into the composite key the tables use.
#[inline]
pub fn key2(a: u64, b: u64) -> u128 {
    ((a as u128) << 64) | b as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let s = ShardedSet::new();
        assert!(s.insert(key2(1, 2)));
        assert!(!s.insert(key2(1, 2)), "duplicate insert rejected");
        assert!(s.contains(key2(1, 2)));
        assert!(!s.contains(key2(2, 1)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(key2(1, 2)));
        assert!(!s.remove(key2(1, 2)));
        assert!(!s.contains(key2(1, 2)));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn many_keys_across_shards() {
        let s = ShardedSet::new();
        for i in 0..1000u64 {
            assert!(s.insert(key2(i, i * 7)));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u64 {
            assert!(s.contains(key2(i, i * 7)));
        }
        for i in (0..1000u64).step_by(2) {
            assert!(s.remove(key2(i, i * 7)));
        }
        assert_eq!(s.len(), 500);
        for i in 0..1000u64 {
            assert_eq!(s.contains(key2(i, i * 7)), i % 2 == 1);
        }
    }

    #[test]
    fn removed_nodes_flow_through_limbo_to_freed() {
        let s = ShardedSet::new();
        for i in 0..64u64 {
            s.insert(key2(0, i));
        }
        for i in 0..64u64 {
            s.remove(key2(0, i));
        }
        s.flush_limbo();
        assert_eq!(s.limbo_len(), 0, "quiescent flush drains all limbo");
        assert_eq!(s.freed(), 64);
    }

    #[test]
    fn pinned_guard_blocks_reclamation() {
        let s = ShardedSet::new();
        s.insert(key2(9, 9));
        let guard = s.pin(); // a "stalled reader" in the current epoch
        s.remove(key2(9, 9));
        let parked = s.limbo_len();
        assert!(parked >= 1, "removed node parked in limbo");
        s.flush_limbo();
        assert_eq!(
            s.limbo_len(),
            parked,
            "epoch cannot advance past a pinned guard, nothing freed"
        );
        drop(guard);
        s.flush_limbo();
        assert_eq!(s.limbo_len(), 0, "guard released: limbo drains");
    }

    #[test]
    fn clear_empties_the_set() {
        let s = ShardedSet::new();
        for i in 0..100u64 {
            s.insert(key2(i, 1));
        }
        s.clear();
        assert!(s.is_empty());
        for i in 0..100u64 {
            assert!(!s.contains(key2(i, 1)));
        }
    }
}
