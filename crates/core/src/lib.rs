//! The paper's contribution: copying garbage collection for persistent
//! distributed shared objects over weakly consistent DSM.
//!
//! Three cooperating sub-algorithms (paper, Section 3) are implemented here:
//!
//! * the **bunch garbage collector** ([`mod@collect`]) — collects one replica of
//!   one bunch, independently of every other bunch and of other replicas of
//!   the same bunch. It copies only *locally owned* live objects; non-owned
//!   (possibly inconsistent) replicas are merely scanned, which is safe
//!   because scanning stale data only makes reachability more conservative
//!   (Section 4.2). It acquires no tokens, ever.
//! * the **scion cleaner** ([`cleaner`]) — consumes the idempotent
//!   reachability tables (new stub tables and exiting-ownerPtr lists)
//!   produced by remote collections and prunes the local scions and entering
//!   ownerPtrs they no longer justify (Section 6).
//! * the **group garbage collector** — the same collector run over a *group*
//!   of locally mapped bunches with intra-group inter-bunch scions excluded
//!   from the roots, which is what reclaims inter-bunch cycles (Section 7).
//!   [`collect()`] is parameterized by the group, so BGC is the
//!   single-bunch case and GGC the locality-heuristic case.
//!
//! Supporting machinery: stub–scion pairs ([`ssp`]), the per-node relocation
//! directory and forwarding-pointer resolution ([`directory`]), the write
//! barrier ([`barrier`]), lazy reference updating and the Section-5 acquire
//! invariants ([`integration`] implements the DSM hooks), and the from-space
//! reuse protocol ([`fromspace`], Section 4.5).

pub mod barrier;
pub mod cleaner;
pub mod collect;
pub mod directory;
pub mod fromspace;
pub mod gclist;
pub mod grouping;
pub mod incremental;
pub mod integration;
pub mod msg;
pub mod ssp;
pub mod state;

pub use collect::{collect, refresh_node_gauges, CollectStats};
pub use directory::Directory;
pub use grouping::Heuristic;
pub use incremental::IncrementalBgc;
pub use msg::{GcMsg, ReachabilityReport};
pub use ssp::{InterScion, InterStub, IntraScion, IntraStub, ScionTable, SspId, StubTable};
pub use state::{BunchReplicaGc, GcNodeState, GcState, RelocMode, SharedServer};
