//! Stub–scion pairs (SSPs).
//!
//! SSPs make every bunch replica self-sufficient for reachability decisions
//! (paper, Section 3.1). They are simpler than RPC-system SSPs: they are not
//! indirections and do no marshaling — just auxiliary records.
//!
//! *Inter-bunch* SSPs describe references crossing bunch boundaries; the
//! stub sits with the source object (at the node that created the
//! reference — it is **not** replicated with the bunch, a single SSP keeps
//! the target alive system-wide), the scion with the target bunch.
//!
//! *Intra-bunch* SSPs run opposite to the ownerPtr: when ownership of an
//! object leaves a node that holds stubs for it, the new owner gets an
//! intra-bunch *stub* and the old owner keeps an intra-bunch *scion*, which
//! preserves the old owner's replica — and therefore the inter-bunch stubs
//! stored there — until the object dies everywhere (Section 3.2, 6.2).
//!
//! # Representation
//!
//! Each table keeps two structures in lockstep: an ordered `Vec` (the
//! deterministic view — reports, wire images, and BGC root scans iterate
//! it, so replay stays bit-exact) and a sharded lock-free membership index
//! ([`gclist::ShardedSet`]) that answers the dedup queries `add_*` used to
//! answer with O(n) scans. Retired entries leave the index through
//! epoch-based reclamation, so a concurrent reader (the threaded driver's
//! audit path) never observes freed memory. Mutation therefore goes through
//! methods — `add_*`, `retain_*`, `replace` — instead of raw field access;
//! the old `pub inter` / `pub intra` fields are exposed read-only via
//! [`StubTable::inter`]-style accessors.

use bmx_common::{Addr, BunchId, NodeId, Oid};

use crate::gclist::{key2, ShardedSet};

/// Globally unique identifier of one stub–scion pair.
///
/// Minted at the node that creates the reference; both halves carry it, so
/// the scion cleaner can match scions against reported stub tables exactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SspId {
    /// The node that created the pair.
    pub node: NodeId,
    /// Creation counter at that node.
    pub seq: u64,
}

impl SspId {
    /// Packs the id into a membership-index key.
    #[inline]
    fn key(self) -> u128 {
        key2(self.node.0 as u64, self.seq)
    }
}

/// Source half of an inter-bunch SSP: "this bunch replica holds a reference
/// into another bunch".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterStub {
    /// Pair identity.
    pub id: SspId,
    /// Bunch of the source object.
    pub source_bunch: BunchId,
    /// Source object (the one containing the reference).
    pub source_oid: Oid,
    /// Bunch of the target object.
    pub target_bunch: BunchId,
    /// Address of the target as known when the stub was (re)recorded.
    pub target_addr: Addr,
    /// Target OID if it was resolvable at creation.
    pub target_oid: Option<Oid>,
    /// The node holding the matching scion.
    pub scion_at: NodeId,
}

/// Target half of an inter-bunch SSP: "an object of this bunch is referenced
/// from another bunch". A root of the bunch garbage collector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterScion {
    /// Pair identity.
    pub id: SspId,
    /// Node holding the stub.
    pub source_node: NodeId,
    /// Bunch of the source object.
    pub source_bunch: BunchId,
    /// Bunch of the target object (the bunch this scion protects).
    pub target_bunch: BunchId,
    /// Local current address of the target (updated by the local BGC).
    pub target_addr: Addr,
    /// Target OID if known.
    pub target_oid: Option<Oid>,
}

/// Stub half of an intra-bunch SSP, held by the (once-)new owner; forwards
/// liveness to the inter-bunch stubs kept at `scion_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntraStub {
    /// The object whose ownership moved.
    pub oid: Oid,
    /// Its bunch.
    pub bunch: BunchId,
    /// The old owner holding the matching scion (and the preserved stubs).
    pub scion_at: NodeId,
}

/// Scion half of an intra-bunch SSP, held by the old owner; preserves the
/// local replica (a root of the local BGC — but one that suppresses the
/// exiting ownerPtr, Section 6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntraScion {
    /// The object whose ownership moved.
    pub oid: Oid,
    /// Its bunch.
    pub bunch: BunchId,
    /// The node holding the matching stub (the then-new owner).
    pub stub_at: NodeId,
}

/// The stub table of one bunch replica: outgoing reachability it asserts.
#[derive(Debug, Default)]
pub struct StubTable {
    /// Inter-bunch stubs created at this node (ordered, deterministic).
    inter: Vec<InterStub>,
    /// Intra-bunch stubs held at this node (ordered, deterministic).
    intra: Vec<IntraStub>,
    /// Membership index over `(source_oid, target_addr)`.
    addr_index: ShardedSet,
    /// Membership index over `(source_oid, target_oid)` for stubs whose
    /// target OID was resolvable.
    oid_index: ShardedSet,
    /// Membership index over `(oid, scion_at)` for intra stubs.
    intra_index: ShardedSet,
}

impl Clone for StubTable {
    fn clone(&self) -> Self {
        let mut t = StubTable {
            inter: self.inter.clone(),
            intra: self.intra.clone(),
            ..StubTable::default()
        };
        t.rebuild_index();
        t
    }
}

impl StubTable {
    fn rebuild_index(&mut self) {
        for s in &self.inter {
            self.addr_index
                .insert(key2(s.source_oid.0, s.target_addr.0));
            if let Some(t) = s.target_oid {
                self.oid_index.insert(key2(s.source_oid.0, t.0));
            }
        }
        for s in &self.intra {
            self.intra_index.insert(key2(s.oid.0, s.scion_at.0 as u64));
        }
    }

    /// Inter-bunch stubs, in insertion order.
    #[inline]
    pub fn inter(&self) -> &[InterStub] {
        &self.inter
    }

    /// Intra-bunch stubs, in insertion order.
    #[inline]
    pub fn intra(&self) -> &[IntraStub] {
        &self.intra
    }

    /// Adds an inter-bunch stub unless an equivalent one (same source object
    /// and same resolved target) is already present. Returns whether it was
    /// added. The duplicate check is two index probes, not a table scan.
    pub fn add_inter(&mut self, stub: InterStub) -> bool {
        let dup = self
            .addr_index
            .contains(key2(stub.source_oid.0, stub.target_addr.0))
            || stub
                .target_oid
                .is_some_and(|t| self.oid_index.contains(key2(stub.source_oid.0, t.0)));
        if dup {
            return false;
        }
        self.addr_index
            .insert(key2(stub.source_oid.0, stub.target_addr.0));
        if let Some(t) = stub.target_oid {
            self.oid_index.insert(key2(stub.source_oid.0, t.0));
        }
        self.inter.push(stub);
        true
    }

    /// Adds an intra-bunch stub, deduplicating by `(oid, scion_at)`.
    /// Returns whether it was added.
    pub fn add_intra(&mut self, stub: IntraStub) -> bool {
        if !self
            .intra_index
            .insert(key2(stub.oid.0, stub.scion_at.0 as u64))
        {
            return false;
        }
        self.intra.push(stub);
        true
    }

    /// Keeps only the inter-bunch stubs satisfying `f`; dropped entries are
    /// retired from the membership index (freed via its EBR limbo).
    pub fn retain_inter(&mut self, mut f: impl FnMut(&InterStub) -> bool) {
        let (addr_index, oid_index) = (&self.addr_index, &self.oid_index);
        self.inter.retain(|s| {
            let keep = f(s);
            if !keep {
                addr_index.remove(key2(s.source_oid.0, s.target_addr.0));
                if let Some(t) = s.target_oid {
                    oid_index.remove(key2(s.source_oid.0, t.0));
                }
            }
            keep
        });
    }

    /// Keeps only the intra-bunch stubs satisfying `f`.
    pub fn retain_intra(&mut self, mut f: impl FnMut(&IntraStub) -> bool) {
        let intra_index = &self.intra_index;
        self.intra.retain(|s| {
            let keep = f(s);
            if !keep {
                intra_index.remove(key2(s.oid.0, s.scion_at.0 as u64));
            }
            keep
        });
    }

    /// Replaces the whole table (a BGC publication regenerates it); the old
    /// index entries are retired wholesale.
    pub fn replace(&mut self, inter: Vec<InterStub>, intra: Vec<IntraStub>) {
        self.addr_index.clear();
        self.oid_index.clear();
        self.intra_index.clear();
        self.inter = inter;
        self.intra = intra;
        self.rebuild_index();
    }

    /// Inter-bunch stubs whose source is `oid`.
    pub fn inter_for(&self, oid: Oid) -> impl Iterator<Item = &InterStub> {
        self.inter().iter().filter(move |s| s.source_oid == oid)
    }

    /// Whether any stub (inter or intra) concerns `oid`.
    pub fn mentions(&self, oid: Oid) -> bool {
        self.inter().iter().any(|s| s.source_oid == oid)
            || self.intra().iter().any(|s| s.oid == oid)
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.inter().len() + self.intra().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inter().is_empty() && self.intra().is_empty()
    }
}

/// The scion table of one bunch replica: incoming reachability it honours.
#[derive(Debug, Default)]
pub struct ScionTable {
    /// Inter-bunch scions protecting objects of this bunch (ordered).
    inter: Vec<InterScion>,
    /// Intra-bunch scions preserving local replicas for remote stub sites.
    intra: Vec<IntraScion>,
    /// Membership index over pair ids.
    id_index: ShardedSet,
    /// Membership index over `(oid, stub_at)` for intra scions.
    intra_index: ShardedSet,
}

impl Clone for ScionTable {
    fn clone(&self) -> Self {
        let mut t = ScionTable {
            inter: self.inter.clone(),
            intra: self.intra.clone(),
            ..ScionTable::default()
        };
        t.rebuild_index();
        t
    }
}

impl ScionTable {
    fn rebuild_index(&mut self) {
        for s in &self.inter {
            self.id_index.insert(s.id.key());
        }
        for s in &self.intra {
            self.intra_index.insert(key2(s.oid.0, s.stub_at.0 as u64));
        }
    }

    /// Inter-bunch scions, in insertion order.
    #[inline]
    pub fn inter(&self) -> &[InterScion] {
        &self.inter
    }

    /// Mutable view of the inter-bunch scions for in-place `target_addr`
    /// rewrites (BGC reference update, from-space retirement). Identity
    /// fields (`id`) must not be changed through this — the membership
    /// index keys on them.
    #[inline]
    pub fn inter_mut(&mut self) -> &mut [InterScion] {
        &mut self.inter
    }

    /// Intra-bunch scions, in insertion order.
    #[inline]
    pub fn intra(&self) -> &[IntraScion] {
        &self.intra
    }

    /// Adds an inter-bunch scion, deduplicating by pair id. Returns whether
    /// it was added. The duplicate check is one index probe.
    pub fn add_inter(&mut self, scion: InterScion) -> bool {
        if !self.id_index.insert(scion.id.key()) {
            return false;
        }
        self.inter.push(scion);
        true
    }

    /// Adds an intra-bunch scion, deduplicating by `(oid, stub_at)`.
    /// Returns whether it was added.
    pub fn add_intra(&mut self, scion: IntraScion) -> bool {
        if !self
            .intra_index
            .insert(key2(scion.oid.0, scion.stub_at.0 as u64))
        {
            return false;
        }
        self.intra.push(scion);
        true
    }

    /// Keeps only the inter-bunch scions satisfying `f` (the cleaner's
    /// retirement path); dropped ids are retired from the index.
    pub fn retain_inter(&mut self, mut f: impl FnMut(&InterScion) -> bool) {
        let id_index = &self.id_index;
        self.inter.retain(|s| {
            let keep = f(s);
            if !keep {
                id_index.remove(s.id.key());
            }
            keep
        });
    }

    /// Keeps only the intra-bunch scions satisfying `f`.
    pub fn retain_intra(&mut self, mut f: impl FnMut(&IntraScion) -> bool) {
        let intra_index = &self.intra_index;
        self.intra.retain(|s| {
            let keep = f(s);
            if !keep {
                intra_index.remove(key2(s.oid.0, s.stub_at.0 as u64));
            }
            keep
        });
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.inter().len() + self.intra().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inter().is_empty() && self.intra().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub(seq: u64, src: u64, tgt_addr: u64) -> InterStub {
        InterStub {
            id: SspId {
                node: NodeId(0),
                seq,
            },
            source_bunch: BunchId(1),
            source_oid: Oid(src),
            target_bunch: BunchId(2),
            target_addr: Addr(tgt_addr),
            target_oid: None,
            scion_at: NodeId(1),
        }
    }

    #[test]
    fn inter_stub_dedupes_by_source_and_target() {
        let mut t = StubTable::default();
        assert!(t.add_inter(stub(1, 10, 0x100)));
        assert!(
            !t.add_inter(stub(2, 10, 0x100)),
            "same ref, new id: duplicate"
        );
        assert!(
            t.add_inter(stub(3, 10, 0x200)),
            "same source, new target: distinct"
        );
        assert!(t.add_inter(stub(4, 11, 0x100)), "new source: distinct");
        assert_eq!(t.inter().len(), 3);
        assert_eq!(t.inter_for(Oid(10)).count(), 2);
    }

    #[test]
    fn inter_stub_dedupes_by_target_oid_when_known() {
        let mut t = StubTable::default();
        let mut a = stub(1, 10, 0x100);
        a.target_oid = Some(Oid(5));
        let mut b = stub(2, 10, 0x900); // different addr (target moved)...
        b.target_oid = Some(Oid(5)); // ...but same object
        assert!(t.add_inter(a));
        assert!(!t.add_inter(b));
    }

    #[test]
    fn intra_stub_dedupe() {
        let mut t = StubTable::default();
        let s = IntraStub {
            oid: Oid(1),
            bunch: BunchId(1),
            scion_at: NodeId(2),
        };
        assert!(t.add_intra(s));
        assert!(!t.add_intra(s));
        assert!(t.add_intra(IntraStub {
            scion_at: NodeId(3),
            ..s
        }));
        assert_eq!(t.len(), 2);
        assert!(t.mentions(Oid(1)));
        assert!(!t.mentions(Oid(9)));
    }

    #[test]
    fn scion_table_dedupe() {
        let mut t = ScionTable::default();
        let sc = InterScion {
            id: SspId {
                node: NodeId(0),
                seq: 1,
            },
            source_node: NodeId(0),
            source_bunch: BunchId(1),
            target_bunch: BunchId(2),
            target_addr: Addr(0x100),
            target_oid: Some(Oid(5)),
        };
        assert!(t.add_inter(sc.clone()));
        assert!(!t.add_inter(sc));
        let ic = IntraScion {
            oid: Oid(1),
            bunch: BunchId(2),
            stub_at: NodeId(4),
        };
        assert!(t.add_intra(ic));
        assert!(!t.add_intra(ic));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn retain_retires_index_entries_and_readds_cleanly() {
        let mut t = StubTable::default();
        assert!(t.add_inter(stub(1, 10, 0x100)));
        assert!(t.add_inter(stub(2, 11, 0x200)));
        t.retain_inter(|s| s.source_oid != Oid(10));
        assert_eq!(t.inter().len(), 1);
        assert!(
            t.add_inter(stub(3, 10, 0x100)),
            "retired key must be re-insertable"
        );
        let mut sc = ScionTable::default();
        let mk = |seq| InterScion {
            id: SspId {
                node: NodeId(0),
                seq,
            },
            source_node: NodeId(0),
            source_bunch: BunchId(1),
            target_bunch: BunchId(2),
            target_addr: Addr(0x100),
            target_oid: None,
        };
        assert!(sc.add_inter(mk(1)));
        assert!(sc.add_inter(mk(2)));
        sc.retain_inter(|s| s.id.seq != 1);
        assert_eq!(sc.inter().len(), 1);
        assert!(sc.add_inter(mk(1)), "retired id re-insertable");
    }

    #[test]
    fn replace_rebuilds_the_index() {
        let mut t = StubTable::default();
        assert!(t.add_inter(stub(1, 10, 0x100)));
        t.replace(vec![stub(7, 20, 0x700)], Vec::new());
        assert!(t.add_inter(stub(8, 10, 0x100)), "old entries retired");
        assert!(!t.add_inter(stub(9, 20, 0x700)), "new entries indexed");
        let cl = t.clone();
        assert_eq!(cl.inter(), t.inter(), "clone keeps the ordered view");
        let mut cl = cl;
        assert!(
            !cl.add_inter(stub(10, 20, 0x700)),
            "clone rebuilt its index"
        );
    }
}
