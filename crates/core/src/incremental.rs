//! The incremental bunch collector — O'Toole-style bounded-work collection
//! with a short flip.
//!
//! The paper bases its BGC on O'Toole et al. explicitly because "the time
//! to flip is very small and therefore not disruptive to applications"
//! (Section 4.1, reason (i)). [`crate::collect()`] runs a whole collection in
//! one call; this module splits the same algorithm into bounded increments
//! that interleave with mutator work:
//!
//! * [`IncrementalBgc::start`] snapshots the roots;
//! * [`IncrementalBgc::step`] traces (and copies) a bounded number of
//!   objects; between steps the mutator runs freely — its pointer stores
//!   *gray* their targets through the write barrier (an incremental-update
//!   barrier: a reference written into an already-scanned object would
//!   otherwise escape the trace), and re-pointed roots gray likewise;
//! * [`IncrementalBgc::flip`] drains the remaining gray backlog and runs
//!   the terminal phases (reference update, sweep, table regeneration).
//!   The flip is the only mutator-visible pause, and its length is bounded
//!   by the mutation backlog, not by the heap — which is what experiment
//!   E4b measures.
//!
//! Strength bookkeeping: objects grayed by the mutator are strongly
//! reachable; if one was previously found only through an intra-bunch
//! scion, its strength (and transitively its referents') is upgraded so
//! the exiting-ownerPtr omission rule of Section 6.2 never hides a
//! mutator-reachable replica.

use bmx_addr::object;
use bmx_addr::NodeMemory;
use bmx_common::{Addr, BmxError, BunchId, NodeId, NodeStats, Result};
use bmx_dsm::DsmEngine;

use crate::collect::{CollectOutcome, Ctx, TraceCore};
use crate::state::GcState;

/// Phase of an in-flight incremental collection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Tracing strong roots (and grayed mutations).
    Strong,
    /// Strong trace drained; tracing intra-bunch-scion roots.
    Intra,
}

/// An in-flight incremental collection of a bunch group at one node.
pub struct IncrementalBgc {
    node: NodeId,
    group: Vec<BunchId>,
    core: TraceCore,
    strong_stack: Vec<Addr>,
    intra_stack: Vec<Addr>,
    phase: Phase,
}

impl IncrementalBgc {
    /// Starts an incremental collection: snapshots the roots and arms the
    /// graying barrier for the group's bunches.
    pub fn start(
        gc: &mut GcState,
        engine: &DsmEngine,
        mem: &mut NodeMemory,
        stats: &mut NodeStats,
        node: NodeId,
        group: &[BunchId],
    ) -> Result<IncrementalBgc> {
        for &b in group {
            if !gc.node(node).bunches.contains_key(&b) {
                return Err(BmxError::BunchUnmapped { node, bunch: b });
            }
            if gc.node(node).active_groups.contains(&b) {
                return Err(BmxError::CollectorBusy { bunch: b });
            }
        }
        let mut core = TraceCore::new(group);
        let (strong_stack, intra_stack) = {
            let ctx = Ctx {
                gc,
                engine,
                mem,
                stats,
                node,
                core: &mut core,
            };
            ctx.gather_roots()
        };
        for &b in group {
            gc.node_mut(node).active_groups.insert(b);
        }
        Ok(IncrementalBgc {
            node,
            group: group.to_vec(),
            core,
            strong_stack,
            intra_stack,
            phase: Phase::Strong,
        })
    }

    /// The node this collection runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The collected group.
    pub fn group(&self) -> &[BunchId] {
        &self.group
    }

    /// Moves the barrier's gray backlog into the strong work stack,
    /// upgrading the strength of anything previously found intra-only.
    fn absorb_grayed(&mut self, gc: &mut GcState, mem: &NodeMemory) -> Result<()> {
        let grayed = std::mem::take(&mut gc.node_mut(self.node).grayed);
        for g in grayed {
            self.upgrade_or_push(gc, mem, g)?;
        }
        Ok(())
    }

    /// If `addr` was already traced weakly, upgrade it (and its referents,
    /// transitively) to strong; otherwise queue it for a strong trace.
    fn upgrade_or_push(&mut self, gc: &GcState, mem: &NodeMemory, addr: Addr) -> Result<()> {
        let mut work = vec![addr];
        while let Some(a) = work.pop() {
            if a.is_null() {
                continue;
            }
            let cur = gc.node(self.node).directory.resolve(a);
            match self.core.live.get_mut(&cur) {
                Some(l) if !l.strong => {
                    l.strong = true;
                    for (_, t) in object::ref_fields(mem, cur)? {
                        work.push(t);
                    }
                }
                Some(_) => {}
                None => self.strong_stack.push(cur),
            }
        }
        Ok(())
    }

    /// Performs up to `budget` objects' worth of tracing work. Returns
    /// `true` when no work remains (the collection is ready to flip).
    pub fn step(
        &mut self,
        gc: &mut GcState,
        engine: &DsmEngine,
        mem: &mut NodeMemory,
        stats: &mut NodeStats,
        budget: usize,
    ) -> Result<bool> {
        self.absorb_grayed(gc, mem)?;
        let mut remaining = budget.max(1);
        while remaining > 0 {
            if !self.strong_stack.is_empty() {
                let mut ctx = Ctx {
                    gc,
                    engine,
                    mem,
                    stats,
                    node: self.node,
                    core: &mut self.core,
                };
                let done = ctx.trace_bounded(&mut self.strong_stack, true, Some(remaining))?;
                remaining = remaining.saturating_sub(done.max(1));
            } else if self.phase == Phase::Strong {
                self.phase = Phase::Intra;
            } else if !self.intra_stack.is_empty() {
                let mut ctx = Ctx {
                    gc,
                    engine,
                    mem,
                    stats,
                    node: self.node,
                    core: &mut self.core,
                };
                let done = ctx.trace_bounded(&mut self.intra_stack, false, Some(remaining))?;
                remaining = remaining.saturating_sub(done.max(1));
            } else {
                break;
            }
        }
        Ok(self.is_quiescent(gc))
    }

    fn is_quiescent(&self, gc: &GcState) -> bool {
        self.strong_stack.is_empty()
            && self.intra_stack.is_empty()
            && gc.node(self.node).grayed.is_empty()
    }

    /// The flip: drains the residual gray backlog, then runs the terminal
    /// phases — the only mutator-visible pause of the collection.
    pub fn flip(
        mut self,
        gc: &mut GcState,
        engine: &DsmEngine,
        mem: &mut NodeMemory,
        stats: &mut NodeStats,
    ) -> Result<CollectOutcome> {
        // Drain everything: mutations may gray during nothing here (the
        // mutator is not running inside this call), but backlog from the
        // last inter-step window remains.
        loop {
            self.absorb_grayed(gc, mem)?;
            if self.strong_stack.is_empty() && self.intra_stack.is_empty() {
                break;
            }
            let mut ctx = Ctx {
                gc,
                engine,
                mem,
                stats,
                node: self.node,
                core: &mut self.core,
            };
            ctx.trace_bounded(&mut self.strong_stack, true, None)?;
            ctx.trace_bounded(&mut self.intra_stack, false, None)?;
        }
        let reports = {
            let mut ctx = Ctx {
                gc,
                engine,
                mem,
                stats,
                node: self.node,
                core: &mut self.core,
            };
            ctx.phase(self.group[0], bmx_trace::GcPhase::Flip);
            ctx.update_references()?;
            ctx.sweep()?;
            ctx.regenerate_and_publish()?
        };
        for &b in &self.group {
            gc.node_mut(self.node).active_groups.remove(&b);
        }
        Ok(CollectOutcome {
            reports,
            dead: std::mem::take(&mut self.core.dead_oids),
            stats: self.core.out,
        })
    }

    /// Aborts the collection, disarming the barrier. Already-copied objects
    /// keep their forwarding state (harmless: the next collection resolves
    /// through it), but no space is swapped and no report is produced.
    pub fn abort(self, gc: &mut GcState) {
        for &b in &self.group {
            gc.node_mut(self.node).active_groups.remove(&b);
        }
        gc.node_mut(self.node).grayed.clear();
    }
}
