//! The per-node relocation directory.
//!
//! After a bunch garbage collection, the same object legitimately lives at
//! different addresses on different nodes (paper, Section 4.2); each node
//! therefore keeps a *local* view of where objects are: the current local
//! address per OID, and the set of forwarding edges (`from → to`) its own
//! collections performed or it learned from relocation records. Following a
//! pointer through [`Directory::resolve`] is the reproduction's version of
//! the paper's "special operation ... to perform pointer comparison"
//! (Section 4.2) — two references denote the same object iff they resolve to
//! the same address.
//!
//! # Examples
//!
//! ```
//! use bmx_common::{Addr, Oid};
//! use bmx_gc::Directory;
//!
//! let mut dir = Directory::new();
//! dir.set_addr(Oid(1), Addr(0x1_0000));
//! // Two collections move the object twice.
//! dir.record_move(Oid(1), Addr(0x1_0000), Addr(0x2_0000));
//! dir.record_move(Oid(1), Addr(0x2_0000), Addr(0x3_0000));
//! // Any historical name resolves to the current copy...
//! assert_eq!(dir.resolve(Addr(0x1_0000)), Addr(0x3_0000));
//! // ...and the pointer-comparison operation sees through the chain.
//! assert!(dir.ptr_eq(Addr(0x1_0000), Addr(0x3_0000)));
//! assert_eq!(dir.addr_of(Oid(1)), Some(Addr(0x3_0000)));
//! ```

use std::collections::BTreeMap;

use bmx_common::{Addr, Oid};
use bmx_dsm::Relocation;

/// Node-local knowledge of object locations and forwarding edges.
#[derive(Default, Clone)]
pub struct Directory {
    addr_of: BTreeMap<Oid, Addr>,
    /// Forwarding edges, possibly chained over multiple collections.
    forwarded: BTreeMap<Addr, Addr>,
    /// Reverse lookups for building grant relocations.
    reloc_by_oid: BTreeMap<Oid, Relocation>,
    reloc_by_from: BTreeMap<Addr, Relocation>,
    reloc_by_to: BTreeMap<Addr, Relocation>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current local address of `oid`, if known.
    pub fn addr_of(&self, oid: Oid) -> Option<Addr> {
        self.addr_of.get(&oid).copied()
    }

    /// Records the local address of `oid` (allocation, mapping, or install).
    pub fn set_addr(&mut self, oid: Oid, addr: Addr) {
        self.addr_of.insert(oid, addr);
    }

    /// Forgets `oid` (its local replica was reclaimed).
    pub fn drop_oid(&mut self, oid: Oid) {
        if let Some(a) = self.addr_of.remove(&oid) {
            // Keep forwarding edges: they may still be needed by stale
            // pointers; they die with the from-space reuse protocol.
            let _ = a;
        }
        self.reloc_by_oid.remove(&oid);
    }

    /// Follows forwarding edges from `addr` to the current address.
    ///
    /// Chains (an object moved again in a later collection) are followed to
    /// the end; an address with no edge resolves to itself.
    pub fn resolve(&self, addr: Addr) -> Addr {
        self.resolve_hops(addr).0
    }

    /// [`resolve`](Directory::resolve), also returning the number of
    /// forwarding edges followed (the metrics plane histograms chain
    /// lengths to show relocation debt building up).
    pub fn resolve_hops(&self, addr: Addr) -> (Addr, u32) {
        let mut cur = addr;
        let mut hops = 0;
        while let Some(&next) = self.forwarded.get(&cur) {
            cur = next;
            hops += 1;
            assert!(hops < 64, "forwarding cycle at {addr}");
        }
        (cur, hops)
    }

    /// The paper's pointer-comparison operation: do `a` and `b` denote the
    /// same object despite forwarding?
    pub fn ptr_eq(&self, a: Addr, b: Addr) -> bool {
        self.resolve(a) == self.resolve(b)
    }

    /// Records a move of `oid` from `from` to `to` and indexes the
    /// relocation record. Returns `false` if an edge from `from` was
    /// already known (idempotent re-application).
    ///
    /// The OID's current-address entry advances only when the move extends
    /// *this* replica's chain (`addr_of == from`). Relocation records from
    /// different source nodes may arrive in any relative order; an edge
    /// further down the chain (or for a replica this node does not track)
    /// must not teleport `addr_of` away from the local copy.
    ///
    /// A *conflicting* edge — same `from`, different `to` — is refused,
    /// not overwritten. Collections at different replica sites legitimately
    /// move the same object to different addresses (Section 4.2); the
    /// first edge this node recorded is the one its own copy (or knowledge)
    /// followed, and replacing it would dead-end local resolution mid-chain
    /// at an address this replica never populated.
    pub fn record_move(&mut self, oid: Oid, from: Addr, to: Addr) -> bool {
        if self.forwarded.contains_key(&from) {
            return false;
        }
        assert_ne!(from, to, "degenerate relocation for {oid}");
        self.forwarded.insert(from, to);
        let r = Relocation { oid, from, to };
        self.reloc_by_oid.insert(oid, r);
        self.reloc_by_from.insert(from, r);
        self.reloc_by_to.insert(to, r);
        if self.addr_of.get(&oid) == Some(&from) {
            let cur = self.resolve(to);
            self.addr_of.insert(oid, cur);
        }
        true
    }

    /// Whether a forwarding edge from `addr` exists.
    pub fn is_forwarded_from(&self, addr: Addr) -> bool {
        self.forwarded.contains_key(&addr)
    }

    /// The relocation record that moved `oid`, if any is still retained.
    pub fn reloc_of(&self, oid: Oid) -> Option<Relocation> {
        self.reloc_by_oid.get(&oid).copied()
    }

    /// The relocation record involving `addr` as either end, if any.
    pub fn reloc_touching(&self, addr: Addr) -> Option<Relocation> {
        self.reloc_by_from
            .get(&addr)
            .or_else(|| self.reloc_by_to.get(&addr))
            .copied()
    }

    /// Every retained relocation record whose from-address lies in
    /// `[start, start + len_words)` — the final address-change payload of
    /// the from-space reuse protocol.
    pub fn relocs_from_range(&self, start: Addr, len_words: u64) -> Vec<Relocation> {
        self.reloc_by_from
            .range(start..start.add_words(len_words))
            .map(|(_, r)| *r)
            .collect()
    }

    /// Drops forwarding edges and relocation records whose *from* address
    /// lies in `[start, start + len_words)` — called when that from-space
    /// range is reused and the edges are guaranteed unnecessary
    /// (Section 4.5).
    pub fn forget_range(&mut self, start: Addr, len_words: u64) {
        let in_range = |a: &Addr| a.in_range(start, len_words);
        self.forwarded.retain(|from, _| !in_range(from));
        let dropped: Vec<Oid> = self
            .reloc_by_from
            .iter()
            .filter(|(from, _)| in_range(from))
            .map(|(_, r)| r.oid)
            .collect();
        for oid in dropped {
            if let Some(r) = self.reloc_by_oid.remove(&oid) {
                self.reloc_by_from.remove(&r.from);
                self.reloc_by_to.remove(&r.to);
            }
        }
    }

    /// Number of known objects.
    pub fn len(&self) -> usize {
        self.addr_of.len()
    }

    /// Whether the directory knows no objects.
    pub fn is_empty(&self) -> bool {
        self.addr_of.is_empty()
    }

    /// All `(oid, current address)` pairs, for table rebuilding.
    pub fn entries(&self) -> impl Iterator<Item = (Oid, Addr)> + '_ {
        self.addr_of.iter().map(|(&o, &a)| (o, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_follows_chains() {
        let mut d = Directory::new();
        d.set_addr(Oid(1), Addr(0x100));
        d.record_move(Oid(1), Addr(0x100), Addr(0x200));
        d.record_move(Oid(1), Addr(0x200), Addr(0x300));
        assert_eq!(d.resolve(Addr(0x100)), Addr(0x300));
        assert_eq!(d.resolve(Addr(0x200)), Addr(0x300));
        assert_eq!(d.resolve(Addr(0x300)), Addr(0x300));
        assert_eq!(d.resolve(Addr(0x999)), Addr(0x999));
        assert_eq!(d.addr_of(Oid(1)), Some(Addr(0x300)));
    }

    #[test]
    fn ptr_eq_sees_through_forwarding() {
        let mut d = Directory::new();
        d.record_move(Oid(1), Addr(0x100), Addr(0x200));
        assert!(d.ptr_eq(Addr(0x100), Addr(0x200)));
        assert!(!d.ptr_eq(Addr(0x100), Addr(0x300)));
    }

    #[test]
    fn record_move_is_idempotent() {
        let mut d = Directory::new();
        assert!(d.record_move(Oid(1), Addr(0x100), Addr(0x200)));
        assert!(!d.record_move(Oid(1), Addr(0x100), Addr(0x200)));
    }

    #[test]
    fn out_of_order_edges_do_not_move_the_local_replica() {
        // The local replica sits at F; an edge further down the chain
        // (T1 -> T2, learned from another node before F -> T1) must not
        // teleport addr_of; once the missing edge arrives, addr_of jumps to
        // the end of the chain.
        let mut d = Directory::new();
        d.set_addr(Oid(5), Addr(0xF00));
        d.record_move(Oid(5), Addr(0x1000), Addr(0x2000)); // downstream edge
        assert_eq!(d.addr_of(Oid(5)), Some(Addr(0xF00)), "replica stays put");
        d.record_move(Oid(5), Addr(0xF00), Addr(0x1000)); // the missing link
        assert_eq!(d.addr_of(Oid(5)), Some(Addr(0x2000)), "chain resolved");
        assert_eq!(d.resolve(Addr(0xF00)), Addr(0x2000));
    }

    #[test]
    fn divergent_relocation_does_not_clobber_the_local_chain() {
        // This node's copy went 0x100 -> 0x200 (its own collection, or the
        // first record it applied). Another replica site later moves *its*
        // copy of the same object 0x100 -> 0x900; applying that record must
        // not redirect local resolution to an address this replica never
        // populated.
        let mut d = Directory::new();
        d.set_addr(Oid(3), Addr(0x100));
        assert!(d.record_move(Oid(3), Addr(0x100), Addr(0x200)));
        assert!(!d.record_move(Oid(3), Addr(0x100), Addr(0x900)), "refused");
        assert_eq!(d.resolve(Addr(0x100)), Addr(0x200));
        assert_eq!(d.addr_of(Oid(3)), Some(Addr(0x200)));
    }

    #[test]
    fn reloc_lookups() {
        let mut d = Directory::new();
        d.record_move(Oid(7), Addr(0x100), Addr(0x200));
        let r = d.reloc_of(Oid(7)).unwrap();
        assert_eq!((r.from, r.to), (Addr(0x100), Addr(0x200)));
        assert_eq!(d.reloc_touching(Addr(0x100)).unwrap().oid, Oid(7));
        assert_eq!(d.reloc_touching(Addr(0x200)).unwrap().oid, Oid(7));
        assert!(d.reloc_touching(Addr(0x300)).is_none());
    }

    #[test]
    fn forget_range_drops_edges_and_records() {
        let mut d = Directory::new();
        d.record_move(Oid(1), Addr(0x100), Addr(0x800));
        d.record_move(Oid(2), Addr(0x1000), Addr(0x880));
        d.forget_range(Addr(0x100), 16); // covers 0x100..0x180
        assert_eq!(d.resolve(Addr(0x100)), Addr(0x100), "edge gone");
        assert!(d.reloc_of(Oid(1)).is_none());
        assert_eq!(d.resolve(Addr(0x1000)), Addr(0x880), "other edge kept");
        assert!(d.reloc_of(Oid(2)).is_some());
    }

    #[test]
    fn drop_oid_keeps_forwarding() {
        let mut d = Directory::new();
        d.record_move(Oid(1), Addr(0x100), Addr(0x200));
        d.drop_oid(Oid(1));
        assert_eq!(d.addr_of(Oid(1)), None);
        assert_eq!(
            d.resolve(Addr(0x100)),
            Addr(0x200),
            "stale pointers still resolve"
        );
    }

    #[test]
    #[should_panic(expected = "forwarding cycle")]
    fn cycles_are_detected() {
        let mut d = Directory::new();
        d.record_move(Oid(1), Addr(0x100), Addr(0x200));
        d.record_move(Oid(1), Addr(0x200), Addr(0x100));
        d.resolve(Addr(0x100));
    }
}
