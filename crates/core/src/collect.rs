//! The bunch garbage collector — and, run over a group, the group collector.
//!
//! One invocation of [`collect`] collects the local replica of every bunch
//! in `group` at one node, independently of every other node (paper,
//! Sections 4 and 7). The algorithm:
//!
//! 1. **Roots** — the mutator stack, the inter-bunch scions whose source
//!    bunch lies *outside* the group (this exclusion is what lets the group
//!    collector reclaim intra-group inter-bunch cycles, Section 7), the
//!    intra-bunch scions, and the entering ownerPtrs.
//! 2. **Trace** — strong roots first, then intra-bunch-scion roots; objects
//!    reachable only from the latter are preserved but publish no exiting
//!    ownerPtr, which is the cycle-breaking rule of Section 6.2.
//! 3. **Copy/scan** — a locally *owned* live object is copied to to-space
//!    and a forwarding pointer is written into its from-space header; this
//!    is purely local, no token is acquired (Section 4.2). A non-owned live
//!    object — whose replica may be inconsistent — is merely scanned in
//!    place: scanning stale data is safe because it can only make
//!    reachability more conservative.
//! 4. **Local reference update** — every live object's pointer fields, the
//!    mutator roots, and the scion target addresses are rewritten through
//!    the local forwarding knowledge, again without tokens (Section 4.4).
//!    Remote replicas are *not* touched: their updates travel lazily as
//!    piggy-backed relocation records.
//! 5. **Table regeneration** (Section 4.3) — a new stub table (inter-bunch
//!    stubs whose source object is live and still holds the reference;
//!    intra-bunch stubs whose object is live locally) and a new
//!    exiting-ownerPtr list (live, non-owned, strongly reachable replicas).
//! 6. **Reclamation & publish** — dead local replicas are dropped, the
//!    spaces swap, and the reachability report goes out to every node that
//!    has the bunch mapped or holds scions matched by the old or new stub
//!    table.

use std::collections::{BTreeMap, BTreeSet};

use bmx_addr::layout::HEADER_WORDS;
use bmx_addr::object::{self, ObjectImage};
use bmx_addr::NodeMemory;
use bmx_common::WORD_BYTES;
use bmx_common::{Addr, BmxError, BunchId, NodeId, NodeStats, Oid, Result, SegmentId, StatKind};
use bmx_dsm::{DsmEngine, GcIntegration, Relocation};
use bmx_metrics::{self as metrics, Ctr, Gge, Hst};
use bmx_profile::{self as profile, SpanKind};
use bmx_trace::{self as trace, GcPhase, SspKind, TraceEvent};

use crate::msg::ReachabilityReport;
use crate::ssp::InterStub;
use crate::state::GcState;

/// Counters from one collection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Locally owned live objects copied to to-space.
    pub copied: u64,
    /// Words copied (headers included).
    pub copied_words: u64,
    /// Non-owned live objects scanned in place.
    pub scanned: u64,
    /// Dead local replicas reclaimed.
    pub reclaimed: u64,
    /// Words of dead replicas reclaimed.
    pub reclaimed_words: u64,
    /// Live objects found (copied + scanned).
    pub live: u64,
}

/// Result of one collection.
pub struct CollectOutcome {
    /// Reachability reports, one per collected bunch, with the remote
    /// destinations each must reach. The local scion cleaner must process
    /// each report too (scions for locally mapped target bunches live on
    /// this same node).
    pub reports: Vec<(Vec<NodeId>, ReachabilityReport)>,
    /// Local replicas that died: the caller drops their DSM replica
    /// records. (The collector takes the engine immutably so that "the GC
    /// cannot drive the protocol" is structural, not just discipline.)
    pub dead: Vec<Oid>,
    /// Collection counters.
    pub stats: CollectStats,
}

#[derive(Clone, Copy)]
pub(crate) struct LiveObj {
    pub(crate) oid: Oid,
    pub(crate) bunch: BunchId,
    pub(crate) owned: bool,
    pub(crate) strong: bool,
}

pub(crate) struct InterRef {
    source_oid: Oid,
    target: Addr,
}

/// The persistent working state of a collection — separated from the
/// borrows so the incremental collector can keep it alive across bounded
/// work increments (see [`crate::incremental`]).
pub(crate) struct TraceCore {
    pub(crate) group: BTreeSet<BunchId>,
    pub(crate) to_segs: BTreeMap<BunchId, Vec<SegmentId>>,
    /// Live objects keyed by their final (post-copy) address.
    pub(crate) live: BTreeMap<Addr, LiveObj>,
    pub(crate) visited: BTreeSet<Addr>,
    pub(crate) inter_refs: Vec<InterRef>,
    pub(crate) new_relocs: Vec<Relocation>,
    pub(crate) dead_oids: Vec<Oid>,
    pub(crate) out: CollectStats,
    /// Live words per bunch (headers included), for the per-bunch
    /// live-bytes metric. Maintained only while metrics are enabled.
    pub(crate) live_words_by_bunch: BTreeMap<BunchId, u64>,
}

impl TraceCore {
    /// Fresh working state for a collection of `group`.
    pub(crate) fn new(group: &[BunchId]) -> TraceCore {
        TraceCore {
            group: group.iter().copied().collect(),
            to_segs: BTreeMap::new(),
            live: BTreeMap::new(),
            visited: BTreeSet::new(),
            inter_refs: Vec::new(),
            new_relocs: Vec::new(),
            dead_oids: Vec::new(),
            out: CollectStats::default(),
            live_words_by_bunch: BTreeMap::new(),
        }
    }
}

/// Stopwatch for the per-phase / whole-pause metrics and the profiler's
/// BGC phase spans. Inert (no clock reads at all) when both planes are
/// disabled; the readings feed only observability, never the
/// simulation, so determinism is untouched.
pub(crate) struct PhaseClock {
    start: Option<std::time::Instant>,
    last: Option<std::time::Instant>,
    /// The previous lap's end on the profiler clock, µs since its epoch.
    last_us: u64,
}

/// The profiler span a phase counter corresponds to, for runs profiled
/// under real threads (the counters alone cannot show *when* a phase
/// ran relative to the acquires it paused).
fn phase_span(ctr: Ctr) -> Option<SpanKind> {
    match ctr {
        Ctr::BgcRootsMicros => Some(SpanKind::BgcRoots),
        Ctr::BgcTraceMicros => Some(SpanKind::BgcTrace),
        Ctr::BgcUpdateMicros => Some(SpanKind::BgcUpdate),
        Ctr::BgcSweepMicros => Some(SpanKind::BgcSweep),
        Ctr::BgcPublishMicros => Some(SpanKind::BgcPublish),
        _ => None,
    }
}

impl PhaseClock {
    pub(crate) fn start() -> PhaseClock {
        let now = (metrics::enabled() || profile::enabled()).then(std::time::Instant::now);
        PhaseClock {
            start: now,
            last: now,
            last_us: profile::now_us(),
        }
    }

    /// Credits the time since the previous lap to `ctr` (and, when
    /// profiling, records the lap as that phase's span).
    pub(crate) fn lap(&mut self, node: NodeId, ctr: Ctr) {
        if let Some(prev) = self.last {
            let now = std::time::Instant::now();
            let us = now.duration_since(prev).as_micros() as u64;
            metrics::add(node, ctr, us);
            if profile::enabled() {
                if let Some(kind) = phase_span(ctr) {
                    profile::record(kind, node, self.last_us, us);
                }
                self.last_us = profile::now_us();
            }
            self.last = Some(now);
        }
    }

    /// Records the whole elapsed span as one collection pause.
    pub(crate) fn finish(self, node: NodeId) {
        if let Some(start) = self.start {
            metrics::observe(
                node,
                Hst::BgcPauseMicros,
                start.elapsed().as_micros() as u64,
            );
            metrics::bump(node, Ctr::BgcCollections);
        }
    }
}

/// Re-derives `node`'s drain-watched gauges (from-space retention, scion
/// and stub table sizes) from the GC state. Called after every event that
/// can move them: a collection's publish, a reuse-protocol drain, a
/// cleaner cut. No-op when metrics are disabled.
pub fn refresh_node_gauges(gc: &GcState, node: NodeId) {
    if !metrics::enabled() {
        return;
    }
    let seg_words = gc.server.borrow().segment_words();
    let mut from_words = 0u64;
    let mut scions = 0u64;
    let mut stubs = 0u64;
    for brs in gc.node(node).bunches.values() {
        from_words += brs.pending_from.len() as u64 * seg_words;
        scions += (brs.scion_table.inter().len() + brs.scion_table.intra().len()) as u64;
        stubs += (brs.stub_table.inter().len() + brs.stub_table.intra().len()) as u64;
    }
    metrics::gauge_set(node, Gge::FromSpaceRetainedWords, from_words);
    metrics::gauge_set(node, Gge::ScionTableSize, scions);
    metrics::gauge_set(node, Gge::StubTableSize, stubs);
}

pub(crate) struct Ctx<'a> {
    pub(crate) gc: &'a mut GcState,
    pub(crate) engine: &'a DsmEngine,
    pub(crate) mem: &'a mut NodeMemory,
    pub(crate) stats: &'a mut NodeStats,
    pub(crate) node: NodeId,
    pub(crate) core: &'a mut TraceCore,
}

/// Collects the local replicas of `group` at `node`.
///
/// With a single-bunch group this is the paper's BGC; with the set of all
/// locally mapped bunches it is the GGC under the locality heuristic.
/// The collector never acquires a token: it takes the DSM engine immutably.
pub fn collect(
    gc: &mut GcState,
    engine: &DsmEngine,
    mem: &mut NodeMemory,
    stats: &mut NodeStats,
    node: NodeId,
    group: &[BunchId],
) -> Result<CollectOutcome> {
    for &b in group {
        if !gc.node(node).bunches.contains_key(&b) {
            return Err(BmxError::BunchUnmapped { node, bunch: b });
        }
    }
    let mut core = TraceCore::new(group);
    let mut ctx = Ctx {
        gc,
        engine,
        mem,
        stats,
        node,
        core: &mut core,
    };

    let lead = group[0];
    let mut clock = PhaseClock::start();
    ctx.phase(lead, GcPhase::Roots);
    let (strong_roots, intra_roots) = ctx.gather_roots();
    clock.lap(node, Ctr::BgcRootsMicros);
    ctx.phase(lead, GcPhase::Trace);
    ctx.trace(strong_roots, true)?;
    ctx.trace(intra_roots, false)?;
    clock.lap(node, Ctr::BgcTraceMicros);
    ctx.phase(lead, GcPhase::Update);
    ctx.update_references()?;
    clock.lap(node, Ctr::BgcUpdateMicros);
    ctx.phase(lead, GcPhase::Sweep);
    ctx.sweep()?;
    clock.lap(node, Ctr::BgcSweepMicros);
    ctx.phase(lead, GcPhase::Publish);
    let reports = ctx.regenerate_and_publish()?;
    clock.lap(node, Ctr::BgcPublishMicros);
    clock.finish(node);
    refresh_node_gauges(gc, node);
    Ok(CollectOutcome {
        reports,
        dead: core.dead_oids,
        stats: core.out,
    })
}

impl Ctx<'_> {
    pub(crate) fn phase(&self, bunch: BunchId, phase: GcPhase) {
        trace::emit(self.node, TraceEvent::BgcPhase { bunch, phase });
    }

    fn resolve(&self, addr: Addr) -> Addr {
        self.gc.node(self.node).directory.resolve(addr)
    }

    fn in_group(&self, addr: Addr) -> Option<BunchId> {
        self.gc
            .bunch_of(addr)
            .filter(|b| self.core.group.contains(b))
    }

    /// Roots per Section 4.1: mutator stacks, scions, entering ownerPtrs.
    pub(crate) fn gather_roots(&self) -> (Vec<Addr>, Vec<Addr>) {
        let ns = self.gc.node(self.node);
        let mut strong = Vec::new();
        let mut intra = Vec::new();
        for &addr in ns.roots.values() {
            if self.in_group(self.resolve(addr)).is_some() {
                strong.push(addr);
            }
        }
        for &b in &self.core.group {
            let Some(brs) = ns.bunch(b) else { continue };
            for s in brs.scion_table.inter() {
                // GGC rule: scions whose source bunch is inside the group do
                // not root — that is what lets intra-group cycles die.
                if !self.core.group.contains(&s.source_bunch) {
                    strong.push(s.target_addr);
                }
            }
            for s in brs.scion_table.intra() {
                if let Some(a) = ns.directory.addr_of(s.oid) {
                    intra.push(a);
                }
            }
        }
        for (oid, st) in self.engine.replicas(self.node) {
            if self.core.group.contains(&st.bunch) && !st.entering.is_empty() {
                if let Some(a) = ns.directory.addr_of(oid) {
                    strong.push(a);
                }
            }
        }
        (strong, intra)
    }

    pub(crate) fn trace(&mut self, roots: Vec<Addr>, strong: bool) -> Result<()> {
        let mut stack = roots;
        self.trace_bounded(&mut stack, strong, None)?;
        Ok(())
    }

    /// Traces at most `budget` objects from `stack` (all of them when
    /// `budget` is `None`). Returns the number of objects processed; the
    /// stack retains the unprocessed remainder, which is what lets the
    /// incremental collector interleave with the mutator.
    pub(crate) fn trace_bounded(
        &mut self,
        stack: &mut Vec<Addr>,
        strong: bool,
        budget: Option<usize>,
    ) -> Result<usize> {
        let mut done = 0;
        while let Some(raw) = stack.pop() {
            if raw.is_null() {
                continue;
            }
            let addr = self.resolve(raw);
            if self.core.visited.contains(&addr) {
                continue;
            }
            // A root or field may point at something this replica has never
            // materialized (e.g. a scion for an object allocated remotely
            // after mapping). Treat as opaque: conservative, nothing to do
            // locally — the owner's replica keeps it alive there.
            let Ok(view) = object::view(self.mem, addr) else {
                continue;
            };
            if view.is_forwarded() {
                // Header-level forwarding the directory did not know about
                // cannot normally happen (record_move maintains both), but
                // following it is the conservative move.
                stack.push(view.forwarding);
                continue;
            }
            let Some(bunch) = self.in_group(addr) else {
                continue;
            };
            done += 1;
            let owned = self.engine.is_owner(self.node, view.oid);
            let final_addr = if owned {
                let dst = self.copy_object(bunch, addr)?;
                self.core.out.copied += 1;
                self.core.out.copied_words += HEADER_WORDS + view.size;
                self.stats.bump(StatKind::ObjectsCopied);
                self.stats
                    .add(StatKind::WordsCopied, HEADER_WORDS + view.size);
                dst
            } else {
                self.core.out.scanned += 1;
                self.stats.bump(StatKind::ObjectsScanned);
                addr
            };
            self.core.visited.insert(addr);
            self.core.visited.insert(final_addr);
            self.core.out.live += 1;
            if metrics::enabled() {
                *self.core.live_words_by_bunch.entry(bunch).or_default() +=
                    HEADER_WORDS + view.size;
            }
            self.core.live.insert(
                final_addr,
                LiveObj {
                    oid: view.oid,
                    bunch,
                    owned,
                    strong,
                },
            );
            for (_, t) in object::ref_fields(self.mem, final_addr)? {
                if t.is_null() {
                    continue;
                }
                let tr = self.resolve(t);
                match self.gc.bunch_of(tr) {
                    Some(tb) if self.core.group.contains(&tb) => stack.push(tr),
                    Some(_) => {
                        self.core.inter_refs.push(InterRef {
                            source_oid: view.oid,
                            target: tr,
                        });
                    }
                    None => {}
                }
            }
            if budget.is_some_and(|b| done >= b) {
                break;
            }
        }
        Ok(done)
    }

    /// Copies one locally owned object to to-space and leaves a forwarding
    /// header. Strictly local: "this header modification ... does not imply
    /// acquiring the object's write token" (Section 4.2).
    fn copy_object(&mut self, bunch: BunchId, from: Addr) -> Result<Addr> {
        let img = ObjectImage::capture(self.mem, from)?;
        let need = HEADER_WORDS + img.data.len() as u64;
        let seg_id = self.target_seg_with_space(bunch, need)?;
        let dst = {
            let seg = self.mem.segment(seg_id)?;
            seg.info.base.add_words(seg.alloc_cursor)
        };
        object::install_object_at(self.mem, dst, &img)?;
        object::set_forwarding(self.mem, from, dst)?;
        self.gc
            .node_mut(self.node)
            .directory
            .record_move(img.oid, from, dst);
        trace::emit(
            self.node,
            TraceEvent::Relocate {
                oid: img.oid,
                from,
                to: dst,
            },
        );
        self.core.new_relocs.push(Relocation {
            oid: img.oid,
            from,
            to: dst,
        });
        Ok(dst)
    }

    fn target_seg_with_space(&mut self, bunch: BunchId, need: u64) -> Result<SegmentId> {
        if let Some(&last) = self.core.to_segs.get(&bunch).and_then(|v| v.last()) {
            if self.mem.segment(last)?.free_words() >= need {
                return Ok(last);
            }
        }
        let info = self.gc.server.borrow_mut().alloc_segment(bunch)?;
        if need > info.words {
            return Err(BmxError::OutOfMemory { bunch, words: need });
        }
        self.mem.map_segment(info);
        self.core.to_segs.entry(bunch).or_default().push(info.id);
        Ok(info.id)
    }

    /// Rewrites every live object's pointer fields, the mutator roots, and
    /// the scion addresses through the local forwarding knowledge.
    pub(crate) fn update_references(&mut self) -> Result<()> {
        let addrs: Vec<Addr> = self.core.live.keys().copied().collect();
        for addr in addrs {
            for (f, t) in object::ref_fields(self.mem, addr)? {
                if t.is_null() {
                    continue;
                }
                let tr = self.resolve(t);
                if tr != t {
                    object::write_ref_field(self.mem, addr, f, tr)?;
                }
            }
        }
        let ns = self.gc.node_mut(self.node);
        let root_updates: Vec<(u64, Addr)> = ns
            .roots
            .iter()
            .map(|(&id, &a)| (id, a, ns.directory.resolve(a)))
            .filter(|&(_, a, r)| a != r)
            .map(|(id, _, r)| (id, r))
            .collect();
        for (id, r) in root_updates {
            ns.set_root(id, r);
        }
        for &b in &self.core.group {
            let Some(brs) = ns.bunches.get_mut(&b) else {
                continue;
            };
            for s in brs.scion_table.inter_mut() {
                s.target_addr = ns.directory.resolve(s.target_addr);
            }
        }
        Ok(())
    }

    /// Drops dead local replicas from the collected spaces.
    ///
    /// Sweeps every locally mapped segment of each collected bunch — the
    /// current space, the retired from-space, and *foreign* to-space
    /// segments that relocation records caused this node to map (replicas
    /// installed there die like any other) — except the to-space segments
    /// this very run created, which hold only live copies.
    pub(crate) fn sweep(&mut self) -> Result<()> {
        for &b in &self.core.group.clone() {
            let fresh: Vec<SegmentId> = self.core.to_segs.get(&b).cloned().unwrap_or_default();
            let seg_ids: Vec<SegmentId> = self
                .mem
                .mapped_segments()
                .into_iter()
                .filter(|&sid| {
                    self.mem.segment(sid).is_ok_and(|s| s.info.bunch == b) && !fresh.contains(&sid)
                })
                .collect();
            for seg_id in seg_ids {
                if !self.mem.has_segment(seg_id) {
                    continue;
                }
                let objs = object::objects_in(self.mem.segment(seg_id)?);
                for addr in objs {
                    let view = object::view(self.mem, addr)?;
                    if view.is_forwarded() || self.core.live.contains_key(&addr) {
                        continue;
                    }
                    // Dead local replica.
                    self.core.out.reclaimed += 1;
                    self.core.out.reclaimed_words += view.footprint();
                    self.stats.bump(StatKind::ObjectsReclaimed);
                    self.stats.add(StatKind::WordsReclaimed, view.footprint());
                    let ns = self.gc.node_mut(self.node);
                    if ns.directory.addr_of(view.oid) == Some(addr) {
                        ns.directory.drop_oid(view.oid);
                    }
                    let (seg, off) = self.mem.resolve_mut(addr)?;
                    seg.object_map.clear(off as usize);
                    // The replica record disappears: the next report's
                    // exiting list will no longer mention it, and the scion
                    // cleaner at the owner will drop the entering ownerPtr
                    // (Section 6.2). The engine is only touched through this
                    // record-drop — never through a token.
                    self.drop_replica_record(view.oid);
                }
            }
        }
        Ok(())
    }

    fn drop_replica_record(&mut self, oid: Oid) {
        // The engine reference is immutable in `Ctx`, so record the drop;
        // the caller applies it after the collection (`CollectOutcome`).
        self.core.dead_oids.push(oid);
    }

    /// Builds the new stub tables and exiting lists, swaps spaces, and
    /// prepares the reports (Section 4.3).
    pub(crate) fn regenerate_and_publish(
        &mut self,
    ) -> Result<Vec<(Vec<NodeId>, ReachabilityReport)>> {
        let mut reports = Vec::new();
        for &b in &self.core.group.clone() {
            let live_of_bunch: BTreeMap<Oid, (bool, bool)> = self
                .core
                .live
                .values()
                .filter(|l| l.bunch == b)
                .map(|l| (l.oid, (l.owned, l.strong)))
                .collect();
            // Stub retention.
            let (old_inter, old_intra) = {
                let brs = self.gc.node(self.node).bunch(b).expect("mapped");
                (
                    brs.stub_table.inter().to_vec(),
                    brs.stub_table.intra().to_vec(),
                )
            };
            let new_inter: Vec<InterStub> = old_inter
                .iter()
                .filter(|s| {
                    live_of_bunch.contains_key(&s.source_oid)
                        && self.core.inter_refs.iter().any(|r| {
                            r.source_oid == s.source_oid && self.resolve(s.target_addr) == r.target
                        })
                })
                .map(|s| {
                    let mut s = s.clone();
                    s.target_addr = self.resolve(s.target_addr);
                    s
                })
                .collect();
            let new_intra: Vec<_> = old_intra
                .iter()
                .filter(|s| live_of_bunch.contains_key(&s.oid))
                .copied()
                .collect();
            // Exiting ownerPtrs: live, non-owned, strongly reachable; an
            // object alive only through an intra-bunch scion publishes none
            // (the cycle-breaking rule of Section 6.2).
            let exiting: Vec<(Oid, NodeId)> = live_of_bunch
                .iter()
                .filter(|(_, &(owned, strong))| !owned && strong)
                .filter_map(|(&oid, _)| {
                    self.engine
                        .obj_state(self.node, oid)
                        .map(|st| (oid, st.owner_hint))
                })
                .collect();
            // Report destinations: replica holders of the bunch, scion sites
            // of the old and new stub tables, exiting-ptr targets.
            let mut dests: BTreeSet<NodeId> = self.gc.mapped_nodes(b).into_iter().collect();
            dests.extend(old_inter.iter().map(|s| s.scion_at));
            dests.extend(new_inter.iter().map(|s| s.scion_at));
            dests.extend(old_intra.iter().map(|s| s.scion_at));
            dests.extend(new_intra.iter().map(|s| s.scion_at));
            dests.extend(exiting.iter().map(|&(_, n)| n));
            dests.remove(&self.node);

            let bunch_relocs: Vec<Relocation> = self
                .core
                .new_relocs
                .iter()
                .filter(|r| self.gc.server.borrow().bunch_of(r.from) == Some(b))
                .copied()
                .collect();
            // Swap spaces and store the new tables.
            let epoch = {
                let brs = self.gc.node_mut(self.node).bunch_mut(b).expect("mapped");
                brs.stub_table.replace(new_inter.clone(), new_intra.clone());
                if let Some(to) = self.core.to_segs.remove(&b) {
                    let old = std::mem::replace(&mut brs.alloc_segments, to);
                    brs.pending_from.extend(old);
                }
                brs.relocations.extend(bunch_relocs);
                brs.epoch.bump()
            };
            if trace::enabled() {
                let inter_cut = (old_inter.len() - new_inter.len()) as u64;
                if inter_cut > 0 {
                    trace::emit(
                        self.node,
                        TraceEvent::SspCut {
                            kind: SspKind::InterStub,
                            count: inter_cut,
                        },
                    );
                }
                let intra_cut = (old_intra.len() - new_intra.len()) as u64;
                if intra_cut > 0 {
                    trace::emit(
                        self.node,
                        TraceEvent::SspCut {
                            kind: SspKind::IntraStub,
                            count: intra_cut,
                        },
                    );
                }
                trace::emit(self.node, TraceEvent::ReportPublish { bunch: b, epoch });
            }
            if metrics::enabled() {
                let words = self.core.live_words_by_bunch.get(&b).copied().unwrap_or(0);
                metrics::set_bunch_live_bytes(self.node, b.0 as u64, words * WORD_BYTES);
            }
            reports.push((
                dests,
                ReachabilityReport {
                    from: self.node,
                    bunch: b,
                    epoch,
                    inter_stubs: new_inter,
                    intra_stubs: new_intra,
                    exiting,
                },
            ));
        }
        // Lazy relocation propagation: queue every local move for every
        // replica holder of its bunch; the records ride the next DSM
        // message to each destination (Section 4.4).
        for r in std::mem::take(&mut self.core.new_relocs) {
            if let Some(b) = self.gc.bunch_of(r.from) {
                let dests: Vec<NodeId> = self
                    .gc
                    .mapped_nodes(b)
                    .into_iter()
                    .filter(|&d| d != self.node)
                    .collect();
                GcIntegration::queue_forward(self.gc, self.node, &dests, &[r]);
            }
        }
        Ok(reports
            .into_iter()
            .map(|(dests, rep)| (dests.into_iter().collect(), rep))
            .collect())
    }
}
