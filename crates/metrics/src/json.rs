//! JSON codec for [`Snapshot`] and snapshot diffs.
//!
//! The format is deliberately flat — one JSON object mapping metric path
//! to integer value — so dumps diff cleanly under `jq`/`diff` and the
//! parser can stay a page long (no dependency budget for serde here).
//! Paths contain only `[A-Za-z0-9_/.-]`, so no string escaping is needed
//! in either direction; the parser still rejects anything it does not
//! understand rather than guessing.

use std::collections::BTreeMap;

use crate::registry::Snapshot;

/// Renders a snapshot as a pretty-printed JSON object, keys sorted.
pub fn to_json(snap: &Snapshot) -> String {
    render_map(snap.entries.iter().map(|(k, &v)| (k.as_str(), v as i64)))
}

/// Renders a signed snapshot diff (see [`Snapshot::diff`]) as JSON.
pub fn diff_to_json(diff: &BTreeMap<String, i64>) -> String {
    render_map(diff.iter().map(|(k, &v)| (k.as_str(), v)))
}

fn render_map<'a>(entries: impl Iterator<Item = (&'a str, i64)>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v}"));
    }
    out.push_str("\n}\n");
    out
}

/// Parses a snapshot previously rendered by [`to_json`]. Returns an error
/// message describing the first malformed construct.
pub fn from_json(text: &str) -> Result<Snapshot, String> {
    let mut entries = BTreeMap::new();
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("snapshot JSON must be a single object")?;
    for (lineno, raw) in body.split(',').enumerate() {
        let pair = raw.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("entry {lineno}: missing ':' in {pair:?}"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("entry {lineno}: key must be quoted, got {key:?}"))?;
        if key.contains('"') || key.contains('\\') {
            return Err(format!("entry {lineno}: unsupported escape in key {key:?}"));
        }
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|e| format!("entry {lineno}: bad value for {key:?}: {e}"))?;
        if entries.insert(key.to_string(), value).is_some() {
            return Err(format!("entry {lineno}: duplicate key {key:?}"));
        }
    }
    Ok(Snapshot { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Ctr, Gge, LinkCtr, Registry};

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::default();
        reg.node(0).add(Ctr::RetiredRouteHits, 12);
        reg.node(1).set(Gge::StubTableSize, 30);
        reg.node(1)
            .observe(crate::registry::Hst::InvalidationFanout, 2);
        reg.link(2, 0).add(LinkCtr::Bytes, 8192);
        reg.set_bunch_live_bytes(1, 3, 777);
        let snap = reg.snapshot();
        let text = to_json(&snap);
        let back = from_json(&text).expect("parse");
        assert_eq!(back, snap, "round-trip must be lossless");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(from_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"a\" 1}").is_err());
        assert!(from_json("{\"a\": -3}").is_err(), "snapshots are unsigned");
        assert!(from_json("{\"a\": 1, \"a\": 2}").is_err(), "duplicate keys");
        assert!(from_json("{a: 1}").is_err(), "unquoted key");
    }

    #[test]
    fn diff_json_carries_signed_deltas() {
        let mut diff = BTreeMap::new();
        diff.insert("node0/gauge/retry_queue_depth".to_string(), -4i64);
        diff.insert("node0/ctr/bgc_collections".to_string(), 2i64);
        let text = diff_to_json(&diff);
        assert!(text.contains("\"node0/gauge/retry_queue_depth\": -4"));
        assert!(text.contains("\"node0/ctr/bgc_collections\": 2"));
    }
}
