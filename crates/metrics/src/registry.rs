//! The metric registry: fixed per-node metric sets, per-link counters,
//! and a keyed per-bunch gauge table.
//!
//! Metric identity is an enum, not a string: instrumentation sites pay an
//! array index, never a hash or an allocation. The registry grows its
//! per-node scopes on demand (mirroring the trace recorder's clock
//! vector), so installation needs no node count up front.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use bmx_common::{NodeStats, StatKind};
use bmx_trace::AlarmKind;

use crate::histogram::Histogram;
use crate::watchdog::{WatchdogConfig, WatchdogState};

/// Per-node monotone counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Ctr {
    /// Fault-plan transitions that activated at this node (crashes,
    /// restarts, partition heals).
    FaultActivations,
    /// Collections run (BGC or GGC groups) with this node as collector.
    BgcCollections,
    /// Wall-clock microseconds spent in the Roots phase.
    BgcRootsMicros,
    /// Wall-clock microseconds spent in the Trace phase.
    BgcTraceMicros,
    /// Wall-clock microseconds spent in the Update phase.
    BgcUpdateMicros,
    /// Wall-clock microseconds spent in the Sweep phase.
    BgcSweepMicros,
    /// Wall-clock microseconds spent in the Publish phase.
    BgcPublishMicros,
    /// Stale addresses resolved through the segment server's
    /// retired-range routing (from-space reuse aftermath).
    RetiredRouteHits,
    /// Wall-clock microseconds of RVM replay during crash recovery.
    RecoveryReplayMicros,
    /// Wall-clock CPU microseconds of complete recovery pipelines: RVM
    /// replay plus the rejoin-finish work (reconciliation, scion/stub
    /// regeneration). Simulated waiting between the two is measured in
    /// ticks by `StatKind::RecoveryLatencyTicks`, not here.
    RecoveryTotalMicros,
    /// Times the from-space retention gauge decreased (a drain the leak
    /// watchdog credits).
    FromSpaceDrains,
    /// Mutator operations completed through a parallel-runtime node
    /// handle (the numerator of E13's sustained ops/sec).
    ParallelOps,
    /// Envelopes fully applied by this node's parallel-runtime driver
    /// thread. Together with [`Ctr::ParallelOps`] this is the progress
    /// signal the parallel watchdog's stall detector watches.
    ParallelDeliveries,
}

/// Per-node gauges (set to the current value; may go down).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Gge {
    /// Payload bytes this node has sent that are still in flight.
    InflightBytes,
    /// Words retained in retired from-space segments awaiting the reuse
    /// protocol, summed over this node's bunch replicas.
    FromSpaceRetainedWords,
    /// Scions across this node's bunch replicas (the cleaner's backlog).
    ScionTableSize,
    /// Stubs across this node's bunch replicas.
    StubTableSize,
    /// Reports this node still tracks in the retry daemon.
    RetryQueueDepth,
}

/// Per-node histograms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Hst {
    /// Ticks a mutator read acquire waited for its remote grant.
    AcquireReadTicks,
    /// Ticks a mutator write acquire waited for its remote grant.
    AcquireWriteTicks,
    /// Read replicas invalidated per write-token transfer at the owner.
    InvalidationFanout,
    /// Words carried by a token grant's object image (the DSM diff the
    /// grant ships).
    GrantImageWords,
    /// Whole-collection pause, microseconds.
    BgcPauseMicros,
    /// Forwarding hops a mutator access walked before reaching the
    /// current copy.
    ForwardingChainLen,
    /// Ticks between a report's publication and the retry daemon
    /// confirming every destination applied it.
    ReportRetireLagTicks,
    /// Constituent protocol messages coalesced into one DSM envelope.
    /// Values above 1 are rounds the envelope batching actually compressed.
    EnvelopeMsgs,
    /// Wall-clock microseconds a parallel-mode read acquire blocked,
    /// request start to critical-section entry (ticks don't advance
    /// meaningfully under the parallel runtime, so these histograms are
    /// the real-time siblings of the `*Ticks` pair).
    AcquireReadMicros,
    /// Wall-clock microseconds a parallel-mode write acquire blocked.
    AcquireWriteMicros,
    /// Wall-clock microseconds a thread waited for the coarse protocol
    /// mutex, attributed to the node the thread was working for (holder
    /// attribution: a hot node shows up in its *own* wait/hold rows).
    MutexWaitMicros,
    /// Wall-clock microseconds the protocol mutex was held per critical
    /// section, same attribution as [`Hst::MutexWaitMicros`].
    MutexHoldMicros,
    /// Wall-clock microseconds a driver thread spent applying one
    /// delivered envelope (dispatch + staged-send export, lock held).
    DriverApplyMicros,
}

/// Per-(src, dst) link counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum LinkCtr {
    /// Messages accepted for delivery on this link.
    Send,
    /// Messages discarded on this link (loss injection, outages).
    Drop,
    /// Duplicate copies injected on this link.
    Duplicate,
    /// Report resends the retry daemon pushed over this link.
    Retry,
    /// Payload bytes accepted on this link.
    Bytes,
}

impl Ctr {
    pub(crate) const COUNT: usize = 13;
    /// All counters, in index order.
    pub const ALL: [Ctr; Self::COUNT] = [
        Ctr::FaultActivations,
        Ctr::BgcCollections,
        Ctr::BgcRootsMicros,
        Ctr::BgcTraceMicros,
        Ctr::BgcUpdateMicros,
        Ctr::BgcSweepMicros,
        Ctr::BgcPublishMicros,
        Ctr::RetiredRouteHits,
        Ctr::RecoveryReplayMicros,
        Ctr::RecoveryTotalMicros,
        Ctr::FromSpaceDrains,
        Ctr::ParallelOps,
        Ctr::ParallelDeliveries,
    ];
}

impl Gge {
    pub(crate) const COUNT: usize = 5;
    /// All gauges, in index order.
    pub const ALL: [Gge; Self::COUNT] = [
        Gge::InflightBytes,
        Gge::FromSpaceRetainedWords,
        Gge::ScionTableSize,
        Gge::StubTableSize,
        Gge::RetryQueueDepth,
    ];
}

impl Hst {
    pub(crate) const COUNT: usize = 13;
    /// All histograms, in index order.
    pub const ALL: [Hst; Self::COUNT] = [
        Hst::AcquireReadTicks,
        Hst::AcquireWriteTicks,
        Hst::InvalidationFanout,
        Hst::GrantImageWords,
        Hst::BgcPauseMicros,
        Hst::ForwardingChainLen,
        Hst::ReportRetireLagTicks,
        Hst::EnvelopeMsgs,
        Hst::AcquireReadMicros,
        Hst::AcquireWriteMicros,
        Hst::MutexWaitMicros,
        Hst::MutexHoldMicros,
        Hst::DriverApplyMicros,
    ];
}

impl LinkCtr {
    pub(crate) const COUNT: usize = 5;
    /// All link counters, in index order.
    pub const ALL: [LinkCtr; Self::COUNT] = [
        LinkCtr::Send,
        LinkCtr::Drop,
        LinkCtr::Duplicate,
        LinkCtr::Retry,
        LinkCtr::Bytes,
    ];
}

/// Converts a `Debug`-rendered CamelCase metric name to snake_case for
/// exposition (`BgcPauseMicros` -> `bgc_pause_micros`).
pub(crate) fn snake(debug_name: impl std::fmt::Debug) -> String {
    let camel = format!("{debug_name:?}");
    let mut out = String::with_capacity(camel.len() + 4);
    for (i, c) in camel.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// One node's metric block.
#[derive(Default)]
pub struct NodeScope {
    ctrs: [AtomicU64; Ctr::COUNT],
    gges: [AtomicU64; Gge::COUNT],
    hsts: [Histogram; Hst::COUNT],
    /// Live alias of the cluster's `NodeStats` cells for this node, once
    /// bound — satellite of the single-counting-mechanism migration: the
    /// registry exposes the very cells the simulation bumps.
    stats: RwLock<Option<NodeStats>>,
}

impl NodeScope {
    /// Adds to a counter.
    #[inline]
    pub fn add(&self, c: Ctr, n: u64) {
        self.ctrs[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn ctr(&self, c: Ctr) -> u64 {
        self.ctrs[c as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&self, g: Gge, v: u64) {
        self.gges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Adds to a gauge.
    #[inline]
    pub fn gauge_add(&self, g: Gge, n: u64) {
        self.gges[g as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from a gauge (saturating: a racy double-sub must not
    /// wrap to a colossal reading).
    #[inline]
    pub fn gauge_sub(&self, g: Gge, n: u64) {
        let cell = &self.gges[g as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reads a gauge.
    pub fn gauge(&self, g: Gge) -> u64 {
        self.gges[g as usize].load(Ordering::Relaxed)
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, h: Hst, v: u64) {
        self.hsts[h as usize].observe(v);
    }

    /// Borrows a histogram.
    pub fn hist(&self, h: Hst) -> &Histogram {
        &self.hsts[h as usize]
    }

    fn bind_stats(&self, stats: NodeStats) {
        *self.stats.write().expect("stats lock") = Some(stats);
    }

    /// Reads one bound `StatKind` counter (0 when unbound).
    pub fn stat(&self, kind: StatKind) -> u64 {
        self.stats
            .read()
            .expect("stats lock")
            .as_ref()
            .map_or(0, |s| s.get(kind))
    }

    fn stats_bound(&self) -> bool {
        self.stats.read().expect("stats lock").is_some()
    }
}

/// One link's counter block.
#[derive(Default)]
pub struct LinkScope {
    ctrs: [AtomicU64; LinkCtr::COUNT],
}

impl LinkScope {
    /// Adds to a link counter.
    #[inline]
    pub fn add(&self, c: LinkCtr, n: u64) {
        self.ctrs[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a link counter.
    pub fn ctr(&self, c: LinkCtr) -> u64 {
        self.ctrs[c as usize].load(Ordering::Relaxed)
    }
}

/// The whole registry. Shareable across threads (`Arc<Registry>`): the
/// hot path touches only relaxed atomics; the scope maps take an
/// uncontended lock on growth and exposition.
pub struct Registry {
    nodes: RwLock<Vec<Arc<NodeScope>>>,
    links: RwLock<BTreeMap<(u32, u32), Arc<LinkScope>>>,
    /// Per-(node, bunch) live bytes at the bunch's last collection.
    bunch_live_bytes: RwLock<BTreeMap<(u32, u64), u64>>,
    /// Alarms fired per detector kind.
    alarms: [AtomicU64; AlarmKind::ALL.len()],
    /// Most recent alarm per node, for liveness dashboards (`bmx_top`).
    last_alarms: Mutex<BTreeMap<u32, AlarmKind>>,
    pub(crate) watchdog: Mutex<WatchdogState>,
    pub(crate) cfg: WatchdogConfig,
}

impl Registry {
    /// Creates an empty registry with the given watchdog tuning.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Registry {
            nodes: RwLock::new(Vec::new()),
            links: RwLock::new(BTreeMap::new()),
            bunch_live_bytes: RwLock::new(BTreeMap::new()),
            alarms: core::array::from_fn(|_| AtomicU64::new(0)),
            last_alarms: Mutex::new(BTreeMap::new()),
            watchdog: Mutex::new(WatchdogState::default()),
            cfg,
        }
    }

    /// The watchdog tuning in force.
    pub fn watchdog_config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// This node's scope, created on demand.
    pub fn node(&self, node: u32) -> Arc<NodeScope> {
        let idx = node as usize;
        {
            let nodes = self.nodes.read().expect("nodes lock");
            if let Some(s) = nodes.get(idx) {
                return Arc::clone(s);
            }
        }
        let mut nodes = self.nodes.write().expect("nodes lock");
        while nodes.len() <= idx {
            nodes.push(Arc::new(NodeScope::default()));
        }
        Arc::clone(&nodes[idx])
    }

    /// Number of node scopes materialized so far.
    pub fn node_count(&self) -> usize {
        self.nodes.read().expect("nodes lock").len()
    }

    /// The `(src, dst)` link's scope, created on demand.
    pub fn link(&self, src: u32, dst: u32) -> Arc<LinkScope> {
        {
            let links = self.links.read().expect("links lock");
            if let Some(s) = links.get(&(src, dst)) {
                return Arc::clone(s);
            }
        }
        let mut links = self.links.write().expect("links lock");
        Arc::clone(links.entry((src, dst)).or_default())
    }

    /// Binds the cluster's live `NodeStats` cells for `node`.
    pub fn bind_stats(&self, node: u32, stats: NodeStats) {
        self.node(node).bind_stats(stats);
    }

    /// Records the live bytes of `bunch` as accounted at `node`'s last
    /// collection of it.
    pub fn set_bunch_live_bytes(&self, node: u32, bunch: u64, bytes: u64) {
        self.bunch_live_bytes
            .write()
            .expect("bunch lock")
            .insert((node, bunch), bytes);
    }

    /// Notes that detector `kind` fired.
    pub(crate) fn count_alarm(&self, kind: AlarmKind) {
        let idx = AlarmKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind");
        self.alarms[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Remembers `kind` as the most recent alarm at `node`.
    pub(crate) fn note_alarm(&self, node: u32, kind: AlarmKind) {
        self.last_alarms
            .lock()
            .expect("last-alarm lock")
            .insert(node, kind);
    }

    /// The most recent watchdog alarm fired at `node`, if any.
    pub fn last_alarm(&self, node: u32) -> Option<AlarmKind> {
        self.last_alarms
            .lock()
            .expect("last-alarm lock")
            .get(&node)
            .copied()
    }

    /// Alarms fired so far for `kind`.
    pub fn alarms(&self, kind: AlarmKind) -> u64 {
        let idx = AlarmKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind");
        self.alarms[idx].load(Ordering::Relaxed)
    }

    /// Total alarms fired across every detector.
    pub fn total_alarms(&self) -> u64 {
        AlarmKind::ALL.iter().map(|&k| self.alarms(k)).sum()
    }

    /// Flattens the whole registry into a point-in-time [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = BTreeMap::new();
        let nodes = self.nodes.read().expect("nodes lock");
        for (i, scope) in nodes.iter().enumerate() {
            for c in Ctr::ALL {
                entries.insert(format!("node{i}/ctr/{}", snake(c)), scope.ctr(c));
            }
            for g in Gge::ALL {
                entries.insert(format!("node{i}/gauge/{}", snake(g)), scope.gauge(g));
            }
            for h in Hst::ALL {
                let hist = scope.hist(h);
                let base = format!("node{i}/hist/{}", snake(h));
                entries.insert(format!("{base}/sum"), hist.sum());
                entries.insert(format!("{base}/count"), hist.count());
                for (bound, cum) in hist.cumulative() {
                    let le = bound.map_or("inf".to_string(), |b| b.to_string());
                    entries.insert(format!("{base}/le_{le}"), cum);
                }
            }
            if scope.stats_bound() {
                for kind in StatKind::ALL {
                    entries.insert(format!("node{i}/stat/{}", snake(kind)), scope.stat(kind));
                }
            }
        }
        drop(nodes);
        for (&(s, d), scope) in self.links.read().expect("links lock").iter() {
            for c in LinkCtr::ALL {
                entries.insert(format!("link{s}-{d}/{}", snake(c)), scope.ctr(c));
            }
        }
        for (&(n, b), &v) in self.bunch_live_bytes.read().expect("bunch lock").iter() {
            entries.insert(format!("bunch/node{n}/b{b}/live_bytes"), v);
        }
        for k in AlarmKind::ALL {
            entries.insert(format!("alarm/{}", snake(k)), self.alarms(k));
        }
        Snapshot { entries }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(WatchdogConfig::default())
    }
}

/// A flat point-in-time reading of every metric, keyed by a stable
/// `scope/kind/name` path. The JSON codec and the diff operate on this —
/// see [`crate::json`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// Metric path -> value, sorted by path.
    pub entries: BTreeMap<String, u64>,
}

impl Snapshot {
    /// The reading at `path`, or 0.
    pub fn get(&self, path: &str) -> u64 {
        self.entries.get(path).copied().unwrap_or(0)
    }

    /// Stamps post-hoc ordering metadata onto the snapshot: the
    /// wall-clock capture time (`meta/captured_unix_ms`, milliseconds
    /// since the Unix epoch) and each node's failure-domain generation
    /// (`node{i}/meta/generation`). Registry readings are monotonic
    /// *within* one process life, but blackbox dumps and chaos-soak
    /// snapshots are compared across threads, runs, and node restarts —
    /// the capture time orders dumps from different threads after the
    /// fact, and the generation says which incarnation of a crashed
    /// node a reading belongs to. Meta entries ride the same flat
    /// `path -> u64` map, so the JSON codec and `diff` handle them
    /// unmodified; plain `Registry::snapshot()` output stays meta-free
    /// (equality tests diff unstamped snapshots).
    pub fn stamp_meta(&mut self, generations: &[(u32, u64)]) {
        let ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.entries.insert("meta/captured_unix_ms".into(), ms);
        for &(node, generation) in generations {
            self.entries
                .insert(format!("node{node}/meta/generation"), generation);
        }
    }

    /// Per-path change from `baseline` to `self`, dropping unchanged
    /// paths. Gauges may move down, so deltas are signed; a path present
    /// on only one side diffs against zero.
    pub fn diff(&self, baseline: &Snapshot) -> BTreeMap<String, i64> {
        let mut out = BTreeMap::new();
        let keys = self.entries.keys().chain(baseline.entries.keys());
        for k in keys {
            let d = self.get(k) as i64 - baseline.get(k) as i64;
            if d != 0 {
                out.insert(k.clone(), d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_index_orders_match_all_arrays() {
        for (i, c) in Ctr::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?}");
        }
        for (i, g) in Gge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{g:?}");
        }
        for (i, h) in Hst::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "{h:?}");
        }
        for (i, l) in LinkCtr::ALL.iter().enumerate() {
            assert_eq!(*l as usize, i, "{l:?}");
        }
    }

    #[test]
    fn snake_case_names() {
        assert_eq!(snake(Hst::BgcPauseMicros), "bgc_pause_micros");
        assert_eq!(snake(LinkCtr::Send), "send");
        assert_eq!(snake(StatKind::GcTokenAcquires), "gc_token_acquires");
    }

    #[test]
    fn gauge_sub_saturates() {
        let s = NodeScope::default();
        s.gauge_add(Gge::InflightBytes, 5);
        s.gauge_sub(Gge::InflightBytes, 9);
        assert_eq!(s.gauge(Gge::InflightBytes), 0);
    }

    #[test]
    fn snapshot_diff_reports_only_changes() {
        let reg = Registry::default();
        reg.node(0).add(Ctr::BgcCollections, 1);
        let base = reg.snapshot();
        reg.node(0).add(Ctr::BgcCollections, 2);
        reg.node(1).set(Gge::RetryQueueDepth, 4);
        reg.link(0, 1).add(LinkCtr::Send, 7);
        let now = reg.snapshot();
        let d = now.diff(&base);
        assert_eq!(d.get("node0/ctr/bgc_collections"), Some(&2));
        assert_eq!(d.get("node1/gauge/retry_queue_depth"), Some(&4));
        assert_eq!(d.get("link0-1/send"), Some(&7));
        assert!(!d.contains_key("node0/ctr/fault_activations"));
        // Gauges can move down: signed delta.
        reg.node(1).set(Gge::RetryQueueDepth, 1);
        let later = reg.snapshot();
        assert_eq!(
            later.diff(&now).get("node1/gauge/retry_queue_depth"),
            Some(&-3)
        );
    }

    #[test]
    fn bound_stats_surface_in_snapshots() {
        let reg = Registry::default();
        let mut stats = NodeStats::new();
        reg.bind_stats(0, stats.handle());
        stats.add(StatKind::MessagesSent, 41);
        let snap = reg.snapshot();
        assert_eq!(snap.get("node0/stat/messages_sent"), 41);
        stats.bump(StatKind::MessagesSent);
        assert_eq!(
            reg.snapshot().get("node0/stat/messages_sent"),
            42,
            "the registry reads the live cells, not a copy"
        );
    }
}
