//! Fixed-bucket histograms on relaxed atomics.
//!
//! Buckets are powers of two: observation `v` lands in the first bucket
//! whose upper bound `2^i` satisfies `v <= 2^i`, with one overflow bucket
//! past [`Histogram::MAX_BOUND`]. Power-of-two bounds cover the dynamic
//! range of every latency/size signal in the repro (ticks, microseconds,
//! words, fan-out counts) with a handful of cells and no configuration,
//! which keeps observation allocation-free and the layout identical
//! across all histograms — one `[AtomicU64; 18]` block plus sum and
//! count, cheap enough to embed per metric per node.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bounded buckets (upper bounds `2^0 ..= 2^16`).
pub const BUCKETS: usize = 17;

/// A fixed-bucket histogram. All operations are relaxed atomics: the
/// cells are observational only and carry no synchronization duties.
#[derive(Debug, Default)]
pub struct Histogram {
    /// `buckets[i]` counts observations with `v <= 2^i`; the slot past
    /// the last bound counts the overflow.
    buckets: [AtomicU64; BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// The largest bounded bucket's upper bound (`2^16`).
    pub const MAX_BOUND: u64 = 1 << (BUCKETS - 1);

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The index of the bucket `v` falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        if v > Self::MAX_BOUND {
            return BUCKETS;
        }
        // Smallest i with v <= 2^i, i.e. ceil(log2(v)).
        (64 - (v - 1).leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i`, or `None` for the
    /// overflow bucket.
    pub fn bound(i: usize) -> Option<u64> {
        (i < BUCKETS).then(|| 1u64 << i)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Count in bucket `i` (not cumulative).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (Prometheus `le` semantics), ending
    /// with the overflow bucket (`+Inf`, equal to [`Histogram::count`]).
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0;
        (0..=BUCKETS)
            .map(|i| {
                acc += self.bucket(i);
                (Self::bound(i), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // v <= 2^i lands at index i; the boundary value itself stays in
        // the lower bucket, one past it moves up.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert_eq!(Histogram::bucket_index(Histogram::MAX_BOUND), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(Histogram::MAX_BOUND + 1), BUCKETS);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn observe_accumulates_sum_count_and_cells() {
        let h = Histogram::new();
        for v in [1, 2, 2, 7, 100_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 100_000_012);
        assert_eq!(h.bucket(0), 1, "v=1");
        assert_eq!(h.bucket(1), 2, "v=2 twice");
        assert_eq!(h.bucket(3), 1, "v=7 in (4, 8]");
        assert_eq!(h.bucket(BUCKETS), 1, "overflow");
    }

    #[test]
    fn cumulative_ends_at_total_count() {
        let h = Histogram::new();
        for v in 0..100 {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum.last().unwrap(), &(None, 100));
        // Monotone non-decreasing.
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
        // le=64 holds v in 0..=64 -> 65 observations.
        assert_eq!(cum[6], (Some(64), 65));
    }
}
