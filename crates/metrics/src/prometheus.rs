//! Hand-rolled Prometheus text exposition (version 0.0.4).
//!
//! Renders straight from the live [`Registry`] — no intermediate
//! allocation-heavy model. Every metric is prefixed `bmx_` and labelled
//! with its node (`node="0"`) or link (`src`/`dst`); histograms follow
//! the `_bucket{le=...}` / `_sum` / `_count` convention with cumulative
//! buckets, so the output scrapes cleanly into a real Prometheus if one
//! is ever pointed at a dump.

use std::fmt::Write as _;

use bmx_common::StatKind;
use bmx_trace::AlarmKind;

use crate::registry::{snake, Ctr, Gge, Hst, LinkCtr, Registry};

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Escapes a label value per the text-exposition format: backslash,
/// double quote, and line feed must be written `\\`, `\"`, `\n`.
/// Today's label values are numeric or snake_case and pass through
/// untouched, but the bunch/link values are parsed back out of snapshot
/// *paths* — one creative path segment must not be able to smuggle a
/// quote into the exposition and corrupt every later sample.
pub(crate) fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry in Prometheus text-exposition format.
pub fn render(reg: &Registry) -> String {
    let mut out = String::new();
    let n = reg.node_count();

    for c in Ctr::ALL {
        let name = format!("bmx_{}_total", snake(c));
        header(&mut out, &name, &format!("bmx counter {:?}", c), "counter");
        for i in 0..n {
            let v = reg.node(i as u32).ctr(c);
            let _ = writeln!(out, "{name}{{node=\"{i}\"}} {v}");
        }
    }

    for g in Gge::ALL {
        let name = format!("bmx_{}", snake(g));
        header(&mut out, &name, &format!("bmx gauge {:?}", g), "gauge");
        for i in 0..n {
            let v = reg.node(i as u32).gauge(g);
            let _ = writeln!(out, "{name}{{node=\"{i}\"}} {v}");
        }
    }

    for h in Hst::ALL {
        let name = format!("bmx_{}", snake(h));
        header(
            &mut out,
            &name,
            &format!("bmx histogram {:?}", h),
            "histogram",
        );
        for i in 0..n {
            let scope = reg.node(i as u32);
            let hist = scope.hist(h);
            for (bound, cum) in hist.cumulative() {
                let le = bound.map_or("+Inf".to_string(), |b| b.to_string());
                let _ = writeln!(out, "{name}_bucket{{node=\"{i}\",le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_sum{{node=\"{i}\"}} {}", hist.sum());
            let _ = writeln!(out, "{name}_count{{node=\"{i}\"}} {}", hist.count());
        }
    }

    // The migrated simulation counters (StatKind), read live from the
    // bound NodeStats cells.
    for kind in StatKind::ALL {
        let name = format!("bmx_stat_{}_total", snake(kind));
        header(
            &mut out,
            &name,
            &format!("bmx sim counter {:?}", kind),
            "counter",
        );
        for i in 0..n {
            let v = reg.node(i as u32).stat(kind);
            let _ = writeln!(out, "{name}{{node=\"{i}\"}} {v}");
        }
    }

    // Per-link counters via the snapshot path set (link scopes are keyed,
    // not dense) — rendered from the registry's snapshot keys to avoid a
    // second keyed accessor.
    let snap = reg.snapshot();
    for c in LinkCtr::ALL {
        let suffix = format!("/{}", snake(c));
        let name = format!("bmx_link_{}_total", snake(c));
        header(
            &mut out,
            &name,
            &format!("bmx link counter {:?}", c),
            "counter",
        );
        for (path, v) in &snap.entries {
            if let Some(rest) = path.strip_prefix("link") {
                if let Some(pair) = rest.strip_suffix(&suffix) {
                    if let Some((s, d)) = pair.split_once('-') {
                        let _ = writeln!(
                            out,
                            "{name}{{src=\"{}\",dst=\"{}\"}} {v}",
                            escape_label(s),
                            escape_label(d)
                        );
                    }
                }
            }
        }
    }

    let name = "bmx_bunch_live_bytes";
    header(
        &mut out,
        name,
        "live bytes per bunch at last collection",
        "gauge",
    );
    for (path, v) in &snap.entries {
        if let Some(rest) = path.strip_prefix("bunch/node") {
            if let Some((node, tail)) = rest.split_once("/b") {
                if let Some(bunch) = tail.strip_suffix("/live_bytes") {
                    let _ = writeln!(
                        out,
                        "{name}{{node=\"{}\",bunch=\"{}\"}} {v}",
                        escape_label(node),
                        escape_label(bunch)
                    );
                }
            }
        }
    }

    let name = "bmx_watchdog_alarms_total";
    header(
        &mut out,
        name,
        "leak-watchdog alarms fired per detector",
        "counter",
    );
    for k in AlarmKind::ALL {
        let _ = writeln!(
            out,
            "{name}{{kind=\"{}\"}} {}",
            escape_label(&snake(k)),
            reg.alarms(k)
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn exposition_has_types_labels_and_cumulative_buckets() {
        let reg = Registry::default();
        reg.node(0).add(Ctr::BgcCollections, 3);
        reg.node(1).observe(Hst::BgcPauseMicros, 5);
        reg.node(1).observe(Hst::BgcPauseMicros, 900);
        reg.link(0, 1).add(LinkCtr::Drop, 2);
        reg.set_bunch_live_bytes(0, 7, 4096);
        let text = render(&reg);

        assert!(text.contains("# TYPE bmx_bgc_collections_total counter"));
        assert!(text.contains("bmx_bgc_collections_total{node=\"0\"} 3"));
        assert!(text.contains("# TYPE bmx_bgc_pause_micros histogram"));
        // v=5 -> le=8; v=900 -> le=1024; both <= +Inf.
        assert!(text.contains("bmx_bgc_pause_micros_bucket{node=\"1\",le=\"8\"} 1"));
        assert!(text.contains("bmx_bgc_pause_micros_bucket{node=\"1\",le=\"1024\"} 2"));
        assert!(text.contains("bmx_bgc_pause_micros_bucket{node=\"1\",le=\"+Inf\"} 2"));
        assert!(text.contains("bmx_bgc_pause_micros_sum{node=\"1\"} 905"));
        assert!(text.contains("bmx_bgc_pause_micros_count{node=\"1\"} 2"));
        assert!(text.contains("bmx_link_drop_total{src=\"0\",dst=\"1\"} 2"));
        assert!(text.contains("bmx_bunch_live_bytes{node=\"0\",bunch=\"7\"} 4096"));
        assert!(text.contains("bmx_watchdog_alarms_total{kind=\"from_space_leak\"} 0"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains('{') && line.contains("} "),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain_0-9"), "plain_0-9");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        // All three at once, in order.
        assert_eq!(escape_label("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn empty_histograms_render_complete_zeroed_series() {
        let reg = Registry::default();
        // Touch node 0 so one scope exists but every histogram is empty.
        reg.node(0).add(Ctr::BgcCollections, 0);
        let text = render(&reg);
        // An empty histogram still exposes the full series: every bucket
        // at 0, sum 0, count 0 — scrape targets must see consistent
        // families whether or not an observation has landed yet.
        assert!(text.contains("bmx_mutex_wait_micros_bucket{node=\"0\",le=\"1\"} 0"));
        assert!(text.contains("bmx_mutex_wait_micros_bucket{node=\"0\",le=\"+Inf\"} 0"));
        assert!(text.contains("bmx_mutex_wait_micros_sum{node=\"0\"} 0"));
        assert!(text.contains("bmx_mutex_wait_micros_count{node=\"0\"} 0"));
        // And the bucket series stays cumulative (all-zero is trivially
        // monotone, but the le bounds must be present and ordered).
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("bmx_driver_apply_micros_bucket{node=\"0\""))
            .collect();
        assert_eq!(buckets.len(), crate::histogram::BUCKETS + 1, "{buckets:?}");
        assert!(buckets.last().unwrap().contains("le=\"+Inf\""));
    }

    #[test]
    fn zero_node_registry_renders_headers_only() {
        let reg = Registry::default();
        let text = render(&reg);
        // No scopes yet: families are declared (HELP/TYPE) but carry no
        // samples except the dense alarm table.
        assert!(text.contains("# TYPE bmx_mutex_hold_micros histogram"));
        assert!(!text.contains("bmx_mutex_hold_micros_count"));
        assert!(text.contains("bmx_watchdog_alarms_total{kind=\"progress_stall\"} 0"));
    }
}
