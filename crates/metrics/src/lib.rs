//! `bmx-metrics`: the cluster-wide metrics plane for the BMX
//! reproduction.
//!
//! The trace plane (`bmx-trace`) answers "what order did things happen
//! in?"; this crate answers "how much, how often, how long?" — and,
//! through its watchdogs, "is something quietly leaking?". It provides:
//!
//! * **A per-node registry** ([`Registry`]) of fixed-identity counters,
//!   gauges, and power-of-two-bucket histograms ([`Ctr`], [`Gge`],
//!   [`Hst`]), plus per-link counters ([`LinkCtr`]) and a per-bunch
//!   live-bytes table. Metric identity is an enum index; recording is a
//!   relaxed atomic op — no strings, hashing, or allocation on the hot
//!   path.
//! * **Exposition**: a hand-rolled Prometheus text renderer
//!   ([`prometheus::render`]) and a flat JSON [`Snapshot`] codec with
//!   lossless round-trip and signed diffs ([`json`]).
//! * **Watchdogs** ([`watchdog`]): drain-based leak detectors (from-space
//!   retention that never drains, monotone scion backlog, retry storms,
//!   stalled Lamport clocks) evaluated on the network tick, emitting
//!   [`bmx_trace::TraceEvent::MetricAlarm`] with a causal witness.
//! * **One counting mechanism**: the pre-existing `NodeStats` simulation
//!   counters are atomic cells that the registry binds live
//!   ([`bind_stats`]), so snapshots and Prometheus dumps include them
//!   without double counting.
//!
//! Like tracing, metrics are observational only: no simulation state,
//! RNG draw, or wire byte depends on whether a registry is installed, so
//! a metered run is bit-identical to an unmetered run with the same seed
//! (tier-1 enforces this). When disabled, every free function below is a
//! thread-local flag check.
//!
//! The registry handle is thread-local (the simulated cluster is
//! single-threaded), but the [`Registry`] itself is `Sync` — a dashboard
//! thread may hold the same `Arc` and render concurrently.

mod histogram;
pub mod json;
pub mod prometheus;
mod registry;
pub mod watchdog;

pub use histogram::{Histogram, BUCKETS};
pub use registry::{Ctr, Gge, Hst, LinkCtr, LinkScope, NodeScope, Registry, Snapshot};
pub use watchdog::{evaluate_parallel, inject_alarm, WatchdogConfig};

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use bmx_common::{NodeId, NodeStats};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Is a registry installed on this thread? Instrumentation sites that
/// need to *compute* a value before recording it (a table size, a clock
/// delta) should guard on this to keep the disabled path free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Installs a fresh registry with default watchdog tuning.
pub fn install() -> Arc<Registry> {
    install_with(WatchdogConfig::default())
}

/// Installs a fresh registry with the given watchdog tuning.
pub fn install_with(cfg: WatchdogConfig) -> Arc<Registry> {
    let reg = Arc::new(Registry::new(cfg));
    install_registry(Arc::clone(&reg));
    reg
}

/// Installs an existing registry handle (e.g. one shared with a
/// dashboard thread). Replaces any previously installed registry.
pub fn install_registry(reg: Arc<Registry>) {
    REGISTRY.with(|r| *r.borrow_mut() = Some(reg));
    ENABLED.with(|e| e.set(true));
}

/// Disables metrics and drops this thread's registry handle.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
    REGISTRY.with(|r| *r.borrow_mut() = None);
}

/// This thread's registry handle, if one is installed.
pub fn registry() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    REGISTRY.with(|r| r.borrow().clone())
}

#[cold]
fn with_registry(f: impl FnOnce(&Registry)) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow().as_ref() {
            f(reg);
        }
    });
}

/// Adds 1 to `node`'s counter `c`. No-op when disabled.
#[inline]
pub fn bump(node: NodeId, c: Ctr) {
    add(node, c, 1);
}

/// Adds `n` to `node`'s counter `c`. No-op when disabled.
#[inline]
pub fn add(node: NodeId, c: Ctr, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.node(node.0).add(c, n));
}

/// Sets `node`'s gauge `g` to `v`. No-op when disabled.
#[inline]
pub fn gauge_set(node: NodeId, g: Gge, v: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.node(node.0).set(g, v));
}

/// Adds `n` to `node`'s gauge `g`. No-op when disabled.
#[inline]
pub fn gauge_add(node: NodeId, g: Gge, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.node(node.0).gauge_add(g, n));
}

/// Subtracts `n` from `node`'s gauge `g` (saturating). No-op when
/// disabled.
#[inline]
pub fn gauge_sub(node: NodeId, g: Gge, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.node(node.0).gauge_sub(g, n));
}

/// Records `v` into `node`'s histogram `h`. No-op when disabled.
#[inline]
pub fn observe(node: NodeId, h: Hst, v: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.node(node.0).observe(h, v));
}

/// Adds `n` to the `(src, dst)` link counter `c`. No-op when disabled.
#[inline]
pub fn link(src: NodeId, dst: NodeId, c: LinkCtr, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.link(src.0, dst.0).add(c, n));
}

/// Binds `node`'s live simulation-counter cells to the registry (see
/// `NodeStats::handle`). No-op when disabled.
pub fn bind_stats(node: NodeId, stats: NodeStats) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.bind_stats(node.0, stats));
}

/// Records `bunch`'s live bytes as accounted at `node`'s last collection
/// of it. No-op when disabled.
pub fn set_bunch_live_bytes(node: NodeId, bunch: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| reg.set_bunch_live_bytes(node.0, bunch, bytes));
}

/// Clock pulse from the network's `tick()`: runs the watchdogs every
/// [`WatchdogConfig::interval`] ticks. No-op when disabled.
#[inline]
pub fn tick(now: u64) {
    if !enabled() {
        return;
    }
    with_registry(|reg| {
        if now.is_multiple_of(reg.cfg.interval) {
            watchdog::evaluate(reg, now);
        }
    });
}

/// Snapshot of this thread's registry, or an empty snapshot when
/// disabled.
pub fn snapshot() -> Snapshot {
    registry().map(|r| r.snapshot()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn disabled_metrics_are_a_no_op() {
        disable();
        assert!(!enabled());
        bump(n(0), Ctr::BgcCollections);
        gauge_set(n(0), Gge::ScionTableSize, 9);
        observe(n(0), Hst::BgcPauseMicros, 5);
        link(n(0), n(1), LinkCtr::Send, 1);
        tick(0);
        assert!(registry().is_none());
        assert!(snapshot().entries.is_empty());
    }

    #[test]
    fn install_records_and_snapshot_reads_back() {
        let reg = install();
        bump(n(0), Ctr::BgcCollections);
        add(n(0), Ctr::BgcCollections, 2);
        gauge_add(n(1), Gge::InflightBytes, 100);
        gauge_sub(n(1), Gge::InflightBytes, 40);
        observe(n(2), Hst::AcquireReadTicks, 3);
        link(n(0), n(2), LinkCtr::Bytes, 64);
        let snap = snapshot();
        assert_eq!(snap.get("node0/ctr/bgc_collections"), 3);
        assert_eq!(snap.get("node1/gauge/inflight_bytes"), 60);
        assert_eq!(snap.get("node2/hist/acquire_read_ticks/count"), 1);
        assert_eq!(snap.get("link0-2/bytes"), 64);
        assert_eq!(reg.node(0).ctr(Ctr::BgcCollections), 3, "shared handle");
        disable();
        assert!(registry().is_none());
    }

    #[test]
    fn tick_respects_the_watchdog_interval() {
        let reg = install_with(WatchdogConfig {
            interval: 10,
            retry_depth: 1,
            retry_window: 0,
            ..WatchdogConfig::default()
        });
        tick(0); // primes baselines (queue still empty)
        gauge_set(n(0), Gge::RetryQueueDepth, 5);
        tick(5); // off-interval: ignored
        assert_eq!(reg.alarms(bmx_trace::AlarmKind::RetryStorm), 0);
        tick(10); // evaluates: depth 5 >= 1 sustained >= 0 ticks
        assert_eq!(reg.alarms(bmx_trace::AlarmKind::RetryStorm), 1);
        disable();
    }
}
