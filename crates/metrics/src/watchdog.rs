//! Drain-based leak watchdogs.
//!
//! Each detector watches a registry signal that healthy runs *drain* —
//! from-space retention drops when the reuse protocol hands segments
//! back, scion tables shrink when the cleaner cuts dead scions, retry
//! queues empty when acks land, Lamport clocks advance while neighbours
//! make progress. A leak is the absence of drain over a calibrated
//! window, not a threshold crossing: absolute sizes vary wildly across
//! workloads, but "never goes down" is workload-independent.
//!
//! Detectors are evaluated from [`crate::tick`] every
//! [`WatchdogConfig::interval`] ticks. A firing emits
//! [`bmx_trace::TraceEvent::MetricAlarm`] carrying the tick the episode
//! started and a causal witness (the node's Lamport clock just before
//! the alarm), and latches: the same episode fires once, and the latch
//! clears only when the signal drains.

use bmx_common::NodeId;
use bmx_trace::{AlarmKind, TraceEvent};

use crate::registry::{Ctr, Gge, Registry};

/// Watchdog tuning. Defaults are calibrated so the repo's chaos soaks —
/// thousands of ticks of faults, partitions, and collector rotation —
/// stay silent while injected leaks (a disabled cleaner, a from-space
/// that never reuses, a wedged retry ack) fire within one soak.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Ticks between detector evaluations.
    pub interval: u64,
    /// Ticks the from-space retention gauge may sit nonzero without a
    /// single decrease before [`AlarmKind::FromSpaceLeak`] fires. Chaos
    /// soaks legitimately accumulate retention for their whole ~7k-tick
    /// run (they exercise retirement, not reuse), so the default is far
    /// past that.
    pub fromspace_window: u64,
    /// Consecutive strictly-increasing scion-table readings before
    /// [`AlarmKind::ScionBacklog`] fires; any decrease resets the streak.
    pub scion_increases: u32,
    /// Retry-queue depth at or above which the storm clock runs.
    pub retry_depth: u64,
    /// Ticks the retry queue must sustain [`retry_depth`] before
    /// [`AlarmKind::RetryStorm`] fires.
    ///
    /// [`retry_depth`]: WatchdogConfig::retry_depth
    pub retry_window: u64,
    /// Ticks a node's Lamport clock may sit still before
    /// [`AlarmKind::ClockStall`] fires — but only if the rest of the
    /// cluster advanced meanwhile (see
    /// [`stall_min_progress`](WatchdogConfig::stall_min_progress)), so
    /// global quiescence (settle loops) never alarms.
    pub stall_window: u64,
    /// Minimum advance of the cluster-wide max Lamport clock over the
    /// stall window for the stall to count as "left behind".
    pub stall_min_progress: u64,
    /// Parallel mode only: ticks (supervisor pulses) the cluster-wide
    /// progress total ([`Ctr::ParallelOps`] + [`Ctr::ParallelDeliveries`])
    /// may sit frozen *while messages are in flight* before
    /// [`AlarmKind::ProgressStall`] fires. Quiet clusters (no pending
    /// work) never alarm, so idle time is fine; the detector is only run
    /// from [`evaluate_parallel`], so the deterministic simulation is
    /// untouched.
    pub progress_window: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval: 32,
            fromspace_window: 20_000,
            scion_increases: 12,
            retry_depth: 16,
            retry_window: 600,
            stall_window: 1_000,
            stall_min_progress: 64,
            progress_window: 2_000,
        }
    }
}

/// One node's detector state.
#[derive(Default, Clone, Debug)]
struct NodeWd {
    // From-space leak: value last seen, episode start, latch.
    fs_last: u64,
    fs_since: Option<u64>,
    fs_latched: bool,
    // Scion backlog: value last seen, strictly-increasing streak, streak
    // start, latch.
    sc_last: u64,
    sc_streak: u32,
    sc_since: u64,
    sc_latched: bool,
    // Retry storm: episode start, latch.
    rt_since: Option<u64>,
    rt_latched: bool,
    // Clock stall: clock last seen, tick it last moved, cluster-wide max
    // clock at that moment, latch.
    ck_last: u64,
    ck_changed_at: u64,
    ck_global_at_change: u64,
    ck_latched: bool,
}

/// All per-node detector state, grown to match the registry.
#[derive(Default, Debug)]
pub(crate) struct WatchdogState {
    nodes: Vec<NodeWd>,
    primed: bool,
    // Progress stall (cluster-wide, parallel mode): last progress total,
    // the tick pending work was first seen with that total, and the latch.
    pg_last: u64,
    pg_since: Option<u64>,
    pg_latched: bool,
}

fn fire(reg: &Registry, node: u32, kind: AlarmKind, value: u64, since_tick: u64) {
    reg.count_alarm(kind);
    reg.note_alarm(node, kind);
    let witness_lamport = bmx_trace::clock(NodeId(node));
    bmx_trace::emit(
        NodeId(node),
        TraceEvent::MetricAlarm {
            kind,
            value,
            since_tick,
            witness_lamport,
        },
    );
}

/// Fires `kind` at `node` immediately, bypassing every detector. The
/// alarm is indistinguishable from a detector-fired one (counted, noted
/// per node, emitted on the trace plane), which is the point: test
/// harnesses use it to exercise the alarm -> blackbox pipeline without
/// having to manufacture a real leak or stall first.
pub fn inject_alarm(reg: &Registry, node: u32, kind: AlarmKind) {
    fire(reg, node, kind, 0, 0);
}

/// Runs every detector against the registry's current readings, plus the
/// parallel-only progress-stall detector: `pending_work` is the
/// transport's `in_flight()` reading. While it stays nonzero and the
/// cluster-wide progress total (completed ops + applied deliveries)
/// never advances for [`WatchdogConfig::progress_window`] ticks, the
/// runtime is livelocked or deadlocked — [`AlarmKind::ProgressStall`]
/// fires once (at node 0, as the cluster-wide designee) and latches
/// until progress resumes. The parallel runtime's supervisor calls this;
/// the tick simulation keeps calling [`evaluate`], which never runs this
/// detector.
pub fn evaluate_parallel(reg: &Registry, now: u64, pending_work: u64) {
    evaluate(reg, now);
    let cfg = reg.cfg;
    let n = reg.node_count();
    if n == 0 {
        return;
    }
    let progress: u64 = (0..n as u32)
        .map(|i| {
            let scope = reg.node(i);
            scope.ctr(Ctr::ParallelOps) + scope.ctr(Ctr::ParallelDeliveries)
        })
        .sum();
    let mut wd = reg.watchdog.lock().expect("watchdog lock");
    if progress != wd.pg_last || pending_work == 0 {
        wd.pg_last = progress;
        wd.pg_since = None;
        wd.pg_latched = false;
        return;
    }
    let since = *wd.pg_since.get_or_insert(now);
    if !wd.pg_latched && now.saturating_sub(since) >= cfg.progress_window {
        wd.pg_latched = true;
        drop(wd);
        fire(reg, 0, AlarmKind::ProgressStall, pending_work, since);
    }
}

/// Runs every detector against the registry's current readings.
pub(crate) fn evaluate(reg: &Registry, now: u64) {
    let cfg = reg.cfg;
    let n = reg.node_count();
    if n == 0 {
        return;
    }
    let trace_on = bmx_trace::enabled();
    let global_clock = if trace_on {
        (0..n as u32)
            .map(|i| bmx_trace::clock(NodeId(i)))
            .max()
            .unwrap_or(0)
    } else {
        0
    };

    let mut wd = reg.watchdog.lock().expect("watchdog lock");
    if wd.nodes.len() < n {
        wd.nodes.resize(n, NodeWd::default());
    }
    // The first evaluation only seeds baselines: a registry installed
    // mid-run must not read pre-existing values as fresh increases.
    let primed = wd.primed;
    wd.primed = true;

    for i in 0..n {
        let scope = reg.node(i as u32);
        let st = &mut wd.nodes[i];

        // --- From-space leak: nonzero and never draining. ---
        let fs = scope.gauge(Gge::FromSpaceRetainedWords);
        if fs == 0 {
            if primed && st.fs_last > 0 {
                scope.add(Ctr::FromSpaceDrains, 1);
            }
            st.fs_since = None;
            st.fs_latched = false;
        } else if primed && fs < st.fs_last {
            scope.add(Ctr::FromSpaceDrains, 1);
            st.fs_since = None;
            st.fs_latched = false;
        } else {
            let since = *st.fs_since.get_or_insert(now);
            if !st.fs_latched && now.saturating_sub(since) >= cfg.fromspace_window {
                st.fs_latched = true;
                fire(reg, i as u32, AlarmKind::FromSpaceLeak, fs, since);
            }
        }
        st.fs_last = fs;

        // --- Scion backlog: monotone growth with no cut in between. ---
        let sc = scope.gauge(Gge::ScionTableSize);
        if primed {
            if sc > st.sc_last {
                if st.sc_streak == 0 {
                    st.sc_since = now;
                }
                st.sc_streak += 1;
                if !st.sc_latched && st.sc_streak >= cfg.scion_increases {
                    st.sc_latched = true;
                    fire(reg, i as u32, AlarmKind::ScionBacklog, sc, st.sc_since);
                }
            } else if sc < st.sc_last {
                st.sc_streak = 0;
                st.sc_latched = false;
            }
        }
        st.sc_last = sc;

        // --- Retry storm: deep queue that never empties. ---
        let rq = scope.gauge(Gge::RetryQueueDepth);
        if rq >= cfg.retry_depth {
            let since = *st.rt_since.get_or_insert(now);
            if !st.rt_latched && now.saturating_sub(since) >= cfg.retry_window {
                st.rt_latched = true;
                fire(reg, i as u32, AlarmKind::RetryStorm, rq, since);
            }
        } else {
            st.rt_since = None;
            st.rt_latched = false;
        }

        // --- Clock stall: this node frozen while the cluster moves. ---
        if trace_on {
            let ck = bmx_trace::clock(NodeId(i as u32));
            if ck != st.ck_last || !primed {
                st.ck_last = ck;
                st.ck_changed_at = now;
                st.ck_global_at_change = global_clock;
                st.ck_latched = false;
            } else if !st.ck_latched
                && now.saturating_sub(st.ck_changed_at) >= cfg.stall_window
                && global_clock.saturating_sub(st.ck_global_at_change) >= cfg.stall_min_progress
            {
                st.ck_latched = true;
                fire(reg, i as u32, AlarmKind::ClockStall, ck, st.ck_changed_at);
                // Emitting the alarm ticked this node's clock; swallow
                // that self-inflicted advance or the latch would clear
                // and the same stall would re-fire every window.
                st.ck_last = bmx_trace::clock(NodeId(i as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Registry {
        Registry::new(WatchdogConfig {
            interval: 1,
            fromspace_window: 100,
            scion_increases: 3,
            retry_depth: 4,
            retry_window: 50,
            stall_window: 40,
            stall_min_progress: 8,
            progress_window: 30,
        })
    }

    #[test]
    fn fromspace_leak_fires_only_when_retention_never_drains() {
        let r = reg();
        let n0 = r.node(0);
        n0.set(Gge::FromSpaceRetainedWords, 512);
        evaluate(&r, 0); // primes baselines
        for t in 1..=90 {
            evaluate(&r, t);
        }
        assert_eq!(r.alarms(AlarmKind::FromSpaceLeak), 0, "window not elapsed");
        // One drain resets the episode...
        n0.set(Gge::FromSpaceRetainedWords, 500);
        evaluate(&r, 95);
        assert_eq!(n0.ctr(Ctr::FromSpaceDrains), 1);
        for t in 96..=190 {
            evaluate(&r, t);
        }
        assert_eq!(
            r.alarms(AlarmKind::FromSpaceLeak),
            0,
            "drain reset the clock"
        );
        // ...but stuck-nonzero retention eventually fires, exactly once.
        for t in 191..=300 {
            evaluate(&r, t);
        }
        assert_eq!(r.alarms(AlarmKind::FromSpaceLeak), 1);
        evaluate(&r, 301);
        assert_eq!(r.alarms(AlarmKind::FromSpaceLeak), 1, "latched");
    }

    #[test]
    fn zero_retention_never_alarms() {
        let r = reg();
        r.node(0);
        for t in 0..500 {
            evaluate(&r, t);
        }
        assert_eq!(r.total_alarms(), 0);
    }

    #[test]
    fn scion_backlog_needs_uninterrupted_growth() {
        let r = reg();
        let n0 = r.node(0);
        let mut t = 0;
        let feed = |r: &Registry, v: u64, t: &mut u64| {
            n0.set(Gge::ScionTableSize, v);
            evaluate(r, *t);
            *t += 1;
        };
        feed(&r, 10, &mut t); // baseline
        feed(&r, 11, &mut t);
        feed(&r, 12, &mut t);
        feed(&r, 9, &mut t); // the cleaner cut scions: streak resets
        feed(&r, 10, &mut t);
        feed(&r, 11, &mut t);
        assert_eq!(r.alarms(AlarmKind::ScionBacklog), 0);
        feed(&r, 12, &mut t); // third consecutive increase
        assert_eq!(r.alarms(AlarmKind::ScionBacklog), 1);
        feed(&r, 13, &mut t);
        assert_eq!(r.alarms(AlarmKind::ScionBacklog), 1, "latched");
    }

    #[test]
    fn retry_storm_requires_sustained_depth() {
        let r = reg();
        let n0 = r.node(0);
        n0.set(Gge::RetryQueueDepth, 6);
        for t in 0..30 {
            evaluate(&r, t);
        }
        n0.set(Gge::RetryQueueDepth, 1); // drained before the window
        evaluate(&r, 30);
        n0.set(Gge::RetryQueueDepth, 6);
        for t in 31..100 {
            evaluate(&r, t);
        }
        assert_eq!(r.alarms(AlarmKind::RetryStorm), 1);
    }

    #[test]
    fn clock_stall_ignores_global_quiescence() {
        bmx_trace::install_vec();
        let r = reg();
        r.node(0);
        r.node(1);
        evaluate(&r, 0); // primes
                         // Nobody emits anything: both clocks frozen, no alarm.
        for t in 1..200 {
            evaluate(&r, t);
        }
        assert_eq!(r.alarms(AlarmKind::ClockStall), 0, "quiescence is fine");
        // Node 1 races ahead while node 0 stays frozen.
        for t in 200..300 {
            bmx_trace::emit(
                NodeId(1),
                TraceEvent::TokenRelease {
                    oid: bmx_common::Oid(1),
                },
            );
            evaluate(&r, t);
        }
        assert_eq!(r.alarms(AlarmKind::ClockStall), 1);
        bmx_trace::disable();
    }

    #[test]
    fn progress_stall_needs_frozen_progress_with_pending_work() {
        let r = reg();
        let n0 = r.node(0);
        n0.add(Ctr::ParallelOps, 10);
        evaluate_parallel(&r, 0, 5); // primes
                                     // Pending work but progress keeps advancing: no alarm.
        for t in 1..100 {
            n0.add(Ctr::ParallelDeliveries, 1);
            evaluate_parallel(&r, t, 5);
        }
        assert_eq!(r.alarms(AlarmKind::ProgressStall), 0, "progress is fine");
        // Idle cluster (nothing pending) with frozen progress: no alarm.
        for t in 100..200 {
            evaluate_parallel(&r, t, 0);
        }
        assert_eq!(r.alarms(AlarmKind::ProgressStall), 0, "idle is fine");
        // Frozen progress while messages are in flight: fires, once.
        for t in 200..300 {
            evaluate_parallel(&r, t, 5);
        }
        assert_eq!(r.alarms(AlarmKind::ProgressStall), 1);
        assert_eq!(r.last_alarm(0), Some(AlarmKind::ProgressStall));
        for t in 300..350 {
            evaluate_parallel(&r, t, 5);
        }
        assert_eq!(r.alarms(AlarmKind::ProgressStall), 1, "latched");
        // Progress resumes: the latch clears, a fresh stall re-fires.
        n0.add(Ctr::ParallelOps, 1);
        for t in 350..450 {
            evaluate_parallel(&r, t, 5);
        }
        assert_eq!(r.alarms(AlarmKind::ProgressStall), 2);
    }

    #[test]
    fn alarm_event_carries_a_witness_from_the_node_clock() {
        bmx_trace::install_vec();
        let r = reg();
        let n0 = r.node(0);
        // Give node 0 some causal history to witness.
        bmx_trace::emit(
            NodeId(0),
            TraceEvent::TokenRelease {
                oid: bmx_common::Oid(9),
            },
        );
        n0.set(Gge::RetryQueueDepth, 100);
        for t in 0..=60 {
            evaluate(&r, t);
        }
        let recs = bmx_trace::take();
        let alarm = recs
            .iter()
            .find(|rec| matches!(rec.event, TraceEvent::MetricAlarm { .. }))
            .expect("alarm emitted");
        if let TraceEvent::MetricAlarm {
            kind,
            witness_lamport,
            since_tick,
            ..
        } = alarm.event
        {
            assert_eq!(kind, AlarmKind::RetryStorm);
            assert_eq!(witness_lamport, 1, "witnessed by the prior event");
            assert!(witness_lamport < alarm.lamport);
            assert!(since_tick <= alarm.tick);
        }
        assert!(
            bmx_trace::query::metric_alarm_hb_violations(&recs).is_empty(),
            "watchdog alarms must satisfy their own causality checker"
        );
        bmx_trace::disable();
    }
}
