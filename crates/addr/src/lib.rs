//! The BMX memory substrate.
//!
//! BMX offers a 64-bit single address space spanning all nodes of the network
//! including secondary storage; objects are contiguous byte runs identified
//! by their address, preceded by a header; objects are allocated within
//! *segments* (constant-size runs of pages with globally non-overlapping
//! addresses), and segments are logically grouped into *bunches*, each with
//! an owner and protection attributes (paper, Section 2.1).
//!
//! This crate implements that model:
//!
//! * [`server::SegmentServer`] — the BMX-server role: creates bunches and
//!   hands out non-overlapping segment address ranges;
//! * [`memory::NodeMemory`] — a node's view of the address space: the set of
//!   locally mapped segment replicas with their backing words, object-map and
//!   reference-map bit arrays (paper, Section 8);
//! * [`object`] — object layout and access: headers (size, stable OID,
//!   forwarding pointer), bounds-checked field access split into pointer and
//!   non-pointer words, and bump allocation.
//!
//! Nothing here knows about tokens or collection; the DSM layer and the
//! collector are built on top.

pub mod layout;
pub mod memory;
pub mod object;
pub mod server;

pub use layout::{ObjFlags, HEADER_WORDS};
pub use memory::{MappedSegment, NodeMemory, SegmentImage};
pub use object::{ObjectImage, ObjectView};
pub use server::{BunchInfo, Protection, SegmentInfo, SegmentServer};
