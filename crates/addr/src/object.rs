//! Object layout and access on top of [`NodeMemory`].
//!
//! An object reference is the address of its header (see [`crate::layout`]).
//! Which data words hold pointers is fixed at allocation time and recorded in
//! the segment's reference-map; the accessors here enforce that split —
//! writing a pointer into a non-pointer slot (or vice versa) is a
//! [`BmxError::RefMapMismatch`], the reproduction's equivalent of the paper's
//! compiler-enforced write instrumentation.

use bmx_common::{Addr, BmxError, Oid, Result, SharedWords};

use crate::layout::{self, ObjFlags, HEADER_WORDS};
use crate::memory::{MappedSegment, NodeMemory};

/// Decoded header of one object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectView {
    /// The object's address (header start).
    pub addr: Addr,
    /// Data size in words (header excluded).
    pub size: u64,
    /// Stable object id.
    pub oid: Oid,
    /// Header flags.
    pub flags: ObjFlags,
    /// Forwarding address left by a collector copy, or null.
    pub forwarding: Addr,
}

impl ObjectView {
    /// Total footprint in words, header included.
    pub fn footprint(&self) -> u64 {
        HEADER_WORDS + self.size
    }

    /// Returns `true` if the object has been copied and forwards elsewhere.
    pub fn is_forwarded(&self) -> bool {
        self.flags.contains(ObjFlags::FORWARDED)
    }

    /// Address of data word `field`.
    pub fn field_addr(&self, field: u64) -> Addr {
        self.addr.add_words(HEADER_WORDS + field)
    }
}

/// Bump-allocates an object with `data_words` data words inside `seg`.
///
/// `ref_fields` lists the field indices that will hold pointers; they are
/// recorded in the segment's reference-map. The caller supplies the stable
/// `oid` (the integrated platform derives it from a per-node counter).
/// Returns the new object's address. All data words start as zero / null.
pub fn alloc_in_segment(
    seg: &mut MappedSegment,
    oid: Oid,
    data_words: u64,
    ref_fields: &[u64],
) -> Result<Addr> {
    let need = HEADER_WORDS + data_words;
    if seg.free_words() < need {
        return Err(BmxError::OutOfMemory {
            bunch: seg.info.bunch,
            words: data_words,
        });
    }
    for &f in ref_fields {
        if f >= data_words {
            return Err(BmxError::FieldOutOfBounds {
                addr: seg.info.base.add_words(seg.alloc_cursor),
                field: f,
                size: data_words,
            });
        }
    }
    let start = seg.alloc_cursor;
    seg.alloc_cursor += need;
    let addr = seg.info.base.add_words(start);
    seg.words[start as usize] = layout::pack_header0(data_words, ObjFlags::default());
    seg.words[start as usize + 1] = oid.0;
    seg.words[start as usize + 2] = Addr::NULL.0;
    // Data words were either never used or belong to a reused from-space;
    // clear them and the stale map bits of the footprint.
    for w in &mut seg.words[(start + HEADER_WORDS) as usize..(start + need) as usize] {
        *w = 0;
    }
    for i in start..start + need {
        seg.ref_map.clear(i as usize);
        if i != start {
            seg.object_map.clear(i as usize);
        }
    }
    seg.object_map.set(start as usize);
    for &f in ref_fields {
        seg.ref_map.set((start + HEADER_WORDS + f) as usize);
    }
    Ok(addr)
}

/// Reads and decodes the header of the object at `addr`.
///
/// Fails with [`BmxError::NotAnObject`] if the object-map has no header bit
/// at `addr`.
pub fn view(mem: &NodeMemory, addr: Addr) -> Result<ObjectView> {
    let (seg, off) = mem.resolve(addr)?;
    if !seg.object_map.get(off as usize) {
        return Err(BmxError::NotAnObject { addr });
    }
    let h0 = seg.words[off as usize];
    Ok(ObjectView {
        addr,
        size: layout::header0_size(h0),
        oid: Oid(seg.words[off as usize + 1]),
        flags: layout::header0_flags(h0),
        forwarding: Addr(seg.words[off as usize + 2]),
    })
}

fn field_slot(mem: &NodeMemory, addr: Addr, field: u64) -> Result<(ObjectView, Addr, bool)> {
    let v = view(mem, addr)?;
    if field >= v.size {
        return Err(BmxError::FieldOutOfBounds {
            addr,
            field,
            size: v.size,
        });
    }
    let slot = v.field_addr(field);
    let (seg, off) = mem.resolve(slot)?;
    Ok((v, slot, seg.ref_map.get(off as usize)))
}

/// Reads data word `field` of the object at `addr` (pointer or not).
pub fn read_field(mem: &NodeMemory, addr: Addr, field: u64) -> Result<u64> {
    let (_, slot, _) = field_slot(mem, addr, field)?;
    mem.read_word(slot)
}

/// Reads pointer field `field` of the object at `addr`.
///
/// Fails with [`BmxError::RefMapMismatch`] if the slot is not a pointer slot.
pub fn read_ref_field(mem: &NodeMemory, addr: Addr, field: u64) -> Result<Addr> {
    let (_, slot, is_ref) = field_slot(mem, addr, field)?;
    if !is_ref {
        return Err(BmxError::RefMapMismatch { addr, field });
    }
    Ok(Addr(mem.read_word(slot)?))
}

/// Writes a non-pointer value into data word `field`.
///
/// Fails with [`BmxError::RefMapMismatch`] if the slot is a pointer slot.
pub fn write_data_field(mem: &mut NodeMemory, addr: Addr, field: u64, value: u64) -> Result<()> {
    let (_, slot, is_ref) = field_slot(mem, addr, field)?;
    if is_ref {
        return Err(BmxError::RefMapMismatch { addr, field });
    }
    mem.write_word(slot, value)
}

/// Writes a pointer into pointer slot `field` (no barrier — the write
/// barrier lives in the platform layer, which calls this after its
/// bookkeeping).
///
/// Fails with [`BmxError::RefMapMismatch`] if the slot is not a pointer slot.
pub fn write_ref_field(mem: &mut NodeMemory, addr: Addr, field: u64, target: Addr) -> Result<()> {
    let (_, slot, is_ref) = field_slot(mem, addr, field)?;
    if !is_ref {
        return Err(BmxError::RefMapMismatch { addr, field });
    }
    mem.write_word(slot, target.0)
}

/// Marks the object at `addr` as forwarded to `to` (collector use).
pub fn set_forwarding(mem: &mut NodeMemory, addr: Addr, to: Addr) -> Result<()> {
    let v = view(mem, addr)?;
    let (seg, off) = mem.resolve_mut(addr)?;
    seg.words[off as usize] = layout::pack_header0(v.size, v.flags.with(ObjFlags::FORWARDED));
    seg.words[off as usize + 2] = to.0;
    Ok(())
}

/// Returns `(field index, target)` for every pointer field of the object.
///
/// Scans the reference map word-parallel ([`Bitmap::ones_in`]): the trace
/// and update phases of every collection call this once per live object,
/// so the per-slot loop it replaced dominated BGC phase time on sparse
/// maps.
///
/// [`Bitmap::ones_in`]: bmx_common::Bitmap::ones_in
pub fn ref_fields(mem: &NodeMemory, addr: Addr) -> Result<Vec<(u64, Addr)>> {
    let v = view(mem, addr)?;
    let (seg, off) = mem.resolve(addr)?;
    let base = (off + HEADER_WORDS) as usize;
    let mut out = Vec::new();
    for idx in seg.ref_map.ones_in(base, base + v.size as usize) {
        out.push(((idx - base) as u64, Addr(seg.words[idx])));
    }
    Ok(out)
}

/// Copies the data words of the object at `addr` (for transfer or GC copy).
pub fn data_words(mem: &NodeMemory, addr: Addr) -> Result<Vec<u64>> {
    let v = view(mem, addr)?;
    let (seg, off) = mem.resolve(addr)?;
    let start = (off + HEADER_WORDS) as usize;
    Ok(seg.words[start..start + v.size as usize].to_vec())
}

/// Overwrites the data words of the object at `addr` (DSM install of a
/// received consistent copy).
pub fn install_data_words(mem: &mut NodeMemory, addr: Addr, data: &[u64]) -> Result<()> {
    let v = view(mem, addr)?;
    if data.len() as u64 != v.size {
        return Err(BmxError::FieldOutOfBounds {
            addr,
            field: data.len() as u64,
            size: v.size,
        });
    }
    let (seg, off) = mem.resolve_mut(addr)?;
    let start = (off + HEADER_WORDS) as usize;
    seg.words[start..start + data.len()].copy_from_slice(data);
    Ok(())
}

/// Shape and contents of an object, as shipped in DSM grants and relocation
/// installs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectImage {
    /// Stable object id.
    pub oid: Oid,
    /// Field indices that hold pointers.
    pub ref_fields: Vec<u64>,
    /// Data words (length = object size), in a refcounted slab: cloning an
    /// image (network fault duplication, retries) shares the words instead
    /// of copying them. The only memcpy is the capture itself.
    pub data: SharedWords,
}

impl ObjectImage {
    /// Captures the image of the object at `addr`.
    ///
    /// Single pass over the segment: the reference map is scanned
    /// word-parallel and the data words sliced once, instead of the two
    /// separate resolve-and-walk passes this used to take.
    pub fn capture(mem: &NodeMemory, addr: Addr) -> Result<ObjectImage> {
        let v = view(mem, addr)?;
        let (seg, off) = mem.resolve(addr)?;
        let base = (off + HEADER_WORDS) as usize;
        let end = base + v.size as usize;
        let refs: Vec<u64> = seg
            .ref_map
            .ones_in(base, end)
            .map(|idx| (idx - base) as u64)
            .collect();
        Ok(ObjectImage {
            oid: v.oid,
            ref_fields: refs,
            data: SharedWords::from(&seg.words[base..end]),
        })
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        16 + 8 * (self.ref_fields.len() as u64 + self.data.len() as u64)
    }
}

/// Materializes an object at a specific address (not bump-allocated).
///
/// Used when a node installs a replica it received (DSM grant into an
/// address the node never allocated itself) or applies a relocation. Any
/// previous contents of the footprint are overwritten and the maps updated.
/// The segment's allocation cursor is advanced past the object if needed, so
/// local bump allocation can never collide with installed replicas.
pub fn install_object_at(mem: &mut NodeMemory, addr: Addr, image: &ObjectImage) -> Result<()> {
    let size = image.data.len() as u64;
    for &f in &image.ref_fields {
        if f >= size {
            return Err(BmxError::FieldOutOfBounds {
                addr,
                field: f,
                size,
            });
        }
    }
    let (seg, off) = mem.resolve_mut(addr)?;
    let need = HEADER_WORDS + size;
    if off + need > seg.info.words {
        return Err(BmxError::OutOfMemory {
            bunch: seg.info.bunch,
            words: size,
        });
    }
    seg.words[off as usize] = layout::pack_header0(size, ObjFlags::default());
    seg.words[off as usize + 1] = image.oid.0;
    seg.words[off as usize + 2] = Addr::NULL.0;
    seg.words[(off + HEADER_WORDS) as usize..(off + need) as usize].copy_from_slice(&image.data);
    seg.ref_map.clear_range(off as usize, (off + need) as usize);
    seg.object_map
        .clear_range(off as usize + 1, (off + need) as usize);
    seg.object_map.set(off as usize);
    for &f in &image.ref_fields {
        seg.ref_map.set((off + HEADER_WORDS + f) as usize);
    }
    if seg.alloc_cursor < off + need {
        seg.alloc_cursor = off + need;
    }
    Ok(())
}

/// Addresses of every object header in the segment, ascending.
pub fn objects_in(seg: &MappedSegment) -> Vec<Addr> {
    seg.object_offsets()
        .iter()
        .map(|&o| seg.info.base.add_words(o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Protection, SegmentServer};
    use bmx_common::NodeId;

    fn setup() -> (NodeMemory, crate::server::SegmentInfo) {
        let mut srv = SegmentServer::new(128);
        let b = srv.create_bunch(NodeId(0), Protection::default());
        let info = srv.alloc_segment(b).unwrap();
        let mut mem = NodeMemory::new(NodeId(0));
        mem.map_segment(info);
        (mem, info)
    }

    fn alloc(
        mem: &mut NodeMemory,
        info: &crate::server::SegmentInfo,
        oid: u64,
        size: u64,
        refs: &[u64],
    ) -> Addr {
        let seg = mem.segment_mut(info.id).unwrap();
        alloc_in_segment(seg, Oid(oid), size, refs).unwrap()
    }

    #[test]
    fn alloc_and_view() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 4, &[0, 2]);
        let v = view(&mem, a).unwrap();
        assert_eq!(v.size, 4);
        assert_eq!(v.oid, Oid(1));
        assert!(!v.is_forwarded());
        assert_eq!(v.forwarding, Addr::NULL);
        assert_eq!(v.footprint(), 7);
    }

    #[test]
    fn consecutive_allocations_do_not_overlap() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 4, &[]);
        let b = alloc(&mut mem, &info, 2, 2, &[]);
        assert_eq!(b, a.add_words(HEADER_WORDS + 4));
        let objs = objects_in(mem.segment(info.id).unwrap());
        assert_eq!(objs, vec![a, b]);
    }

    #[test]
    fn field_access_respects_ref_map() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 3, &[1]);
        // Field 1 is a pointer slot, fields 0 and 2 are data slots.
        write_data_field(&mut mem, a, 0, 99).unwrap();
        write_ref_field(&mut mem, a, 1, Addr(0x4040)).unwrap();
        assert_eq!(read_field(&mem, a, 0).unwrap(), 99);
        assert_eq!(read_ref_field(&mem, a, 1).unwrap(), Addr(0x4040));
        assert!(matches!(
            write_ref_field(&mut mem, a, 0, Addr(1)),
            Err(BmxError::RefMapMismatch { .. })
        ));
        assert!(matches!(
            write_data_field(&mut mem, a, 1, 5),
            Err(BmxError::RefMapMismatch { .. })
        ));
        assert!(matches!(
            read_ref_field(&mem, a, 2),
            Err(BmxError::RefMapMismatch { .. })
        ));
    }

    #[test]
    fn out_of_bounds_field_rejected() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 2, &[]);
        assert!(matches!(
            read_field(&mem, a, 2),
            Err(BmxError::FieldOutOfBounds { .. })
        ));
    }

    #[test]
    fn ref_fields_enumerates_pointers() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 5, &[0, 3]);
        write_ref_field(&mut mem, a, 0, Addr(0x100)).unwrap();
        write_ref_field(&mut mem, a, 3, Addr(0x200)).unwrap();
        assert_eq!(
            ref_fields(&mem, a).unwrap(),
            vec![(0, Addr(0x100)), (3, Addr(0x200))]
        );
    }

    #[test]
    fn forwarding_round_trip() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 1, &[]);
        set_forwarding(&mut mem, a, Addr(0xF00)).unwrap();
        let v = view(&mem, a).unwrap();
        assert!(v.is_forwarded());
        assert_eq!(v.forwarding, Addr(0xF00));
        assert_eq!(v.size, 1, "size survives the flag update");
    }

    #[test]
    fn data_words_transfer() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 3, &[2]);
        write_data_field(&mut mem, a, 0, 11).unwrap();
        write_ref_field(&mut mem, a, 2, Addr(0x42 * 8)).unwrap();
        let words = data_words(&mem, a).unwrap();
        assert_eq!(words, vec![11, 0, 0x42 * 8]);
        install_data_words(&mut mem, a, &[7, 8, 9]).unwrap();
        assert_eq!(read_field(&mem, a, 0).unwrap(), 7);
        assert!(install_data_words(&mut mem, a, &[1]).is_err());
    }

    #[test]
    fn exhausting_a_segment_fails_cleanly() {
        let (mut mem, info) = setup();
        // 128-word segment, each object needs 3 + 10 words.
        let seg = mem.segment_mut(info.id).unwrap();
        let mut count = 0;
        while alloc_in_segment(seg, Oid(count), 10, &[]).is_ok() {
            count += 1;
        }
        assert_eq!(count, 128 / 13);
        assert!(matches!(
            alloc_in_segment(seg, Oid(99), 10, &[]),
            Err(BmxError::OutOfMemory { .. })
        ));
        // A smaller object may still fit.
        assert!(alloc_in_segment(seg, Oid(100), 1, &[]).is_ok());
    }

    #[test]
    fn view_rejects_non_object_addresses() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 4, &[]);
        assert!(matches!(
            view(&mem, a.add_words(1)),
            Err(BmxError::NotAnObject { .. })
        ));
    }

    #[test]
    fn invalid_ref_field_index_rejected_at_alloc() {
        let (mut mem, info) = setup();
        let seg = mem.segment_mut(info.id).unwrap();
        assert!(matches!(
            alloc_in_segment(seg, Oid(1), 2, &[2]),
            Err(BmxError::FieldOutOfBounds { .. })
        ));
    }

    #[test]
    fn image_capture_and_install_round_trip() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 7, 4, &[1, 3]);
        write_data_field(&mut mem, a, 0, 123).unwrap();
        write_ref_field(&mut mem, a, 1, Addr(0x5550)).unwrap();
        let img = ObjectImage::capture(&mem, a).unwrap();
        assert_eq!(img.oid, Oid(7));
        assert_eq!(img.ref_fields, vec![1, 3]);
        assert_eq!(&img.data[..], &[123, 0x5550, 0, 0]);
        // The send path never copies the words again: a clone (network
        // duplication, retry re-enqueue) aliases the captured slab.
        let dup = img.clone();
        assert!(bmx_common::SharedWords::same_slab(&img.data, &dup.data));

        // Install the image into a different node's fresh replica at the same
        // address (the single-address-space property).
        let mut mem2 = NodeMemory::new(NodeId(1));
        mem2.map_segment(info);
        install_object_at(&mut mem2, a, &img).unwrap();
        let v = view(&mem2, a).unwrap();
        assert_eq!(v.oid, Oid(7));
        assert_eq!(v.size, 4);
        assert_eq!(read_ref_field(&mem2, a, 1).unwrap(), Addr(0x5550));
        assert_eq!(read_field(&mem2, a, 0).unwrap(), 123);
        assert!(read_ref_field(&mem2, a, 0).is_err(), "field 0 is data");
        // The cursor advanced past the installed object.
        assert!(mem2.segment(info.id).unwrap().alloc_cursor >= 7);
    }

    #[test]
    fn install_rejects_overflow_and_bad_refs() {
        let (mut mem, info) = setup();
        let near_end = info.base.add_words(info.words - 2);
        let img = ObjectImage {
            oid: Oid(1),
            ref_fields: vec![],
            data: vec![0; 4].into(),
        };
        assert!(install_object_at(&mut mem, near_end, &img).is_err());
        let bad = ObjectImage {
            oid: Oid(1),
            ref_fields: vec![4],
            data: vec![0; 4].into(),
        };
        assert!(install_object_at(&mut mem, info.base, &bad).is_err());
    }

    #[test]
    fn realloc_over_reused_space_clears_stale_state() {
        let (mut mem, info) = setup();
        let a = alloc(&mut mem, &info, 1, 3, &[1]);
        write_ref_field(&mut mem, a, 1, Addr(0xAAA0)).unwrap();
        // Simulate from-space reuse: reset the cursor and clear the header
        // bit, then allocate a differently shaped object over the same spot.
        {
            let seg = mem.segment_mut(info.id).unwrap();
            let off = a.words_from(info.base) as usize;
            seg.object_map.clear(off);
            seg.alloc_cursor = off as u64;
        }
        let b = alloc(&mut mem, &info, 2, 3, &[0]);
        assert_eq!(b, a);
        let v = view(&mem, b).unwrap();
        assert_eq!(v.oid, Oid(2));
        // Field 1 was a pointer slot before; it must now be plain data.
        assert_eq!(read_field(&mem, b, 1).unwrap(), 0);
        assert!(read_ref_field(&mem, b, 1).is_err());
        assert_eq!(read_ref_field(&mem, b, 0).unwrap(), Addr::NULL);
    }
}
