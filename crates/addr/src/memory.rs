//! A node's view of the single address space.
//!
//! Every node maps some subset of the world's segments into local backing
//! memory. Replicas of a segment occupy the *same* addresses on every node
//! (single address space); their contents may diverge — that is exactly the
//! weak consistency the collector is designed to tolerate.
//!
//! Along with the words, each mapped segment carries the two GC bit arrays of
//! the paper's Section 8: the *object-map* (set bit = an object header starts
//! at this word) and the *reference-map* (set bit = this word holds a
//! pointer), plus the local bump-allocation cursor.

use std::collections::BTreeMap;

use bmx_common::{Addr, Bitmap, BmxError, NodeId, Result, SegmentId};

use crate::server::SegmentInfo;

/// One locally mapped segment replica.
#[derive(Clone)]
pub struct MappedSegment {
    /// The global descriptor (id, base, length, bunch).
    pub info: SegmentInfo,
    /// Backing words.
    pub words: Vec<u64>,
    /// Object-map: set bit = object header starts at this word offset.
    pub object_map: Bitmap,
    /// Reference-map: set bit = this word offset holds a pointer.
    pub ref_map: Bitmap,
    /// Bump-allocation cursor, in words from the segment base.
    pub alloc_cursor: u64,
}

impl MappedSegment {
    /// Creates an empty (all-zero) mapping of `info`.
    pub fn new(info: SegmentInfo) -> Self {
        let n = info.words as usize;
        MappedSegment {
            info,
            words: vec![0; n],
            object_map: Bitmap::new(n),
            ref_map: Bitmap::new(n),
            alloc_cursor: 0,
        }
    }

    /// Words still available for bump allocation.
    pub fn free_words(&self) -> u64 {
        self.info.words - self.alloc_cursor
    }

    /// Word offsets of every object header in this segment, ascending.
    pub fn object_offsets(&self) -> Vec<u64> {
        self.object_map.iter_ones().map(|i| i as u64).collect()
    }
}

/// A transferable snapshot of a mapped segment (used when a second node maps
/// an already-mapped bunch: the image travels as DSM traffic).
#[derive(Clone)]
pub struct SegmentImage {
    /// The snapshot itself; [`SegmentImage::install`] re-creates a mapping.
    pub segment: MappedSegment,
}

impl SegmentImage {
    /// Approximate wire size in bytes, for network accounting.
    pub fn wire_size(&self) -> u64 {
        // Words + two bitmaps (1/64th each) + descriptor.
        let words = self.segment.info.words;
        words * 8 + words / 4 + 64
    }

    /// Installs the image into `mem`, replacing any existing mapping.
    pub fn install(self, mem: &mut NodeMemory) {
        mem.install_segment(self.segment);
    }
}

/// The set of segments mapped on one node.
pub struct NodeMemory {
    node: NodeId,
    /// Keyed by base address for O(log n) address resolution.
    by_base: BTreeMap<u64, MappedSegment>,
    /// Segment id → base address.
    bases: BTreeMap<SegmentId, u64>,
}

impl NodeMemory {
    /// Creates an empty memory for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeMemory {
            node,
            by_base: BTreeMap::new(),
            bases: BTreeMap::new(),
        }
    }

    /// The owning node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Maps a fresh, zeroed replica of `info`.
    pub fn map_segment(&mut self, info: SegmentInfo) {
        self.install_segment(MappedSegment::new(info));
    }

    /// Installs a pre-populated segment replica (e.g. a received image).
    pub fn install_segment(&mut self, seg: MappedSegment) {
        self.bases.insert(seg.info.id, seg.info.base.0);
        self.by_base.insert(seg.info.base.0, seg);
    }

    /// Unmaps a segment, dropping the local replica.
    pub fn unmap_segment(&mut self, id: SegmentId) -> Result<MappedSegment> {
        let base = self.bases.remove(&id).ok_or(BmxError::NoSuchSegment(id))?;
        Ok(self.by_base.remove(&base).expect("bases/by_base in sync"))
    }

    /// Returns `true` if the segment is mapped locally.
    pub fn has_segment(&self, id: SegmentId) -> bool {
        self.bases.contains_key(&id)
    }

    /// Returns `true` if `addr` falls in a locally mapped segment.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.resolve(addr).is_ok()
    }

    /// Borrows the mapped segment with the given id.
    pub fn segment(&self, id: SegmentId) -> Result<&MappedSegment> {
        let base = self.bases.get(&id).ok_or(BmxError::NoSuchSegment(id))?;
        Ok(&self.by_base[base])
    }

    /// Mutably borrows the mapped segment with the given id.
    pub fn segment_mut(&mut self, id: SegmentId) -> Result<&mut MappedSegment> {
        let base = *self.bases.get(&id).ok_or(BmxError::NoSuchSegment(id))?;
        Ok(self.by_base.get_mut(&base).expect("bases/by_base in sync"))
    }

    /// Ids of all locally mapped segments, ascending by base address.
    pub fn mapped_segments(&self) -> Vec<SegmentId> {
        self.by_base.values().map(|s| s.info.id).collect()
    }

    /// Resolves an address to its mapped segment and word offset.
    pub fn resolve(&self, addr: Addr) -> Result<(&MappedSegment, u64)> {
        let unmapped = || BmxError::Unmapped {
            node: self.node,
            addr,
        };
        if addr.is_null() || !addr.is_aligned() {
            return Err(unmapped());
        }
        let (_, seg) = self
            .by_base
            .range(..=addr.0)
            .next_back()
            .ok_or_else(unmapped)?;
        if !seg.info.contains(addr) {
            return Err(unmapped());
        }
        Ok((seg, addr.words_from(seg.info.base)))
    }

    /// Resolves an address to its mapped segment (mutably) and word offset.
    pub fn resolve_mut(&mut self, addr: Addr) -> Result<(&mut MappedSegment, u64)> {
        let node = self.node;
        let unmapped = || BmxError::Unmapped { node, addr };
        if addr.is_null() || !addr.is_aligned() {
            return Err(unmapped());
        }
        let (_, seg) = self
            .by_base
            .range_mut(..=addr.0)
            .next_back()
            .ok_or_else(unmapped)?;
        if !seg.info.contains(addr) {
            return Err(unmapped());
        }
        let off = addr.words_from(seg.info.base);
        Ok((seg, off))
    }

    /// Reads the word at `addr`.
    pub fn read_word(&self, addr: Addr) -> Result<u64> {
        let (seg, off) = self.resolve(addr)?;
        Ok(seg.words[off as usize])
    }

    /// Writes the word at `addr`.
    pub fn write_word(&mut self, addr: Addr, value: u64) -> Result<()> {
        let (seg, off) = self.resolve_mut(addr)?;
        seg.words[off as usize] = value;
        Ok(())
    }

    /// Takes a transferable snapshot of a mapped segment.
    pub fn image(&self, id: SegmentId) -> Result<SegmentImage> {
        Ok(SegmentImage {
            segment: self.segment(id)?.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Protection, SegmentServer};
    use bmx_common::NodeId;

    fn setup() -> (SegmentServer, NodeMemory, SegmentInfo) {
        let mut srv = SegmentServer::new(64);
        let b = srv.create_bunch(NodeId(0), Protection::default());
        let info = srv.alloc_segment(b).unwrap();
        let mut mem = NodeMemory::new(NodeId(0));
        mem.map_segment(info);
        (srv, mem, info)
    }

    #[test]
    fn read_write_round_trip() {
        let (_, mut mem, info) = setup();
        let a = info.base.add_words(3);
        mem.write_word(a, 0xDEAD_BEEF).unwrap();
        assert_eq!(mem.read_word(a).unwrap(), 0xDEAD_BEEF);
        assert_eq!(mem.read_word(info.base).unwrap(), 0);
    }

    #[test]
    fn unmapped_and_null_and_unaligned_fail() {
        let (_, mem, info) = setup();
        assert!(matches!(
            mem.read_word(Addr::NULL),
            Err(BmxError::Unmapped { .. })
        ));
        assert!(mem.read_word(Addr(info.base.0 + 1)).is_err());
        assert!(mem.read_word(info.base.add_words(64)).is_err());
        assert!(mem.read_word(Addr(info.base.0 - 8)).is_err());
    }

    #[test]
    fn images_transfer_contents_between_nodes() {
        let (_, mut mem1, info) = setup();
        let a = info.base.add_words(5);
        mem1.write_word(a, 42).unwrap();
        mem1.segment_mut(info.id).unwrap().object_map.set(5);
        mem1.segment_mut(info.id).unwrap().alloc_cursor = 9;

        let mut mem2 = NodeMemory::new(NodeId(1));
        mem1.image(info.id).unwrap().install(&mut mem2);
        assert_eq!(mem2.read_word(a).unwrap(), 42);
        assert!(mem2.segment(info.id).unwrap().object_map.get(5));
        assert_eq!(mem2.segment(info.id).unwrap().alloc_cursor, 9);
    }

    #[test]
    fn replicas_occupy_same_addresses_but_diverge() {
        let (_, mut mem1, info) = setup();
        let mut mem2 = NodeMemory::new(NodeId(1));
        mem2.map_segment(info);
        let a = info.base.add_words(2);
        mem1.write_word(a, 7).unwrap();
        mem2.write_word(a, 8).unwrap();
        assert_eq!(mem1.read_word(a).unwrap(), 7);
        assert_eq!(mem2.read_word(a).unwrap(), 8);
    }

    #[test]
    fn unmap_then_access_fails() {
        let (_, mut mem, info) = setup();
        let seg = mem.unmap_segment(info.id).unwrap();
        assert_eq!(seg.info.id, info.id);
        assert!(mem.read_word(info.base).is_err());
        assert!(!mem.has_segment(info.id));
        assert!(mem.unmap_segment(info.id).is_err());
    }

    #[test]
    fn resolution_with_multiple_segments() {
        let mut srv = SegmentServer::new(16);
        let b = srv.create_bunch(NodeId(0), Protection::default());
        let s1 = srv.alloc_segment(b).unwrap();
        let s2 = srv.alloc_segment(b).unwrap();
        let s3 = srv.alloc_segment(b).unwrap();
        let mut mem = NodeMemory::new(NodeId(0));
        mem.map_segment(s1);
        mem.map_segment(s3);
        // s2 not mapped: its addresses must not resolve to s1.
        assert!(mem.read_word(s2.base).is_err());
        assert!(mem.read_word(s1.base.add_words(15)).is_ok());
        assert!(mem.read_word(s3.base).is_ok());
        assert_eq!(mem.mapped_segments(), vec![s1.id, s3.id]);
    }

    #[test]
    fn free_words_tracks_cursor() {
        let (_, mut mem, info) = setup();
        let seg = mem.segment_mut(info.id).unwrap();
        assert_eq!(seg.free_words(), 64);
        seg.alloc_cursor = 10;
        assert_eq!(seg.free_words(), 54);
    }
}
