//! The segment server (BMX-server role).
//!
//! "A BMX-server runs on every node in the system and provides basic
//! services, such as allocation of non-overlapping segments" (paper,
//! Section 8). In the reproduction, the server is a single authoritative
//! registry shared by the simulated cluster: it creates bunches, assigns
//! each segment a globally unique address range, and records which segments
//! belong to which bunch. It holds *no* object data — nodes keep their own
//! replicas in [`crate::NodeMemory`].

use std::collections::BTreeMap;

use bmx_common::{Addr, BmxError, BunchId, NodeId, Oid, Result, SegmentId};

/// Unix-style protection attributes of a bunch (paper, Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Protection {
    /// Readable by mappers.
    pub read: bool,
    /// Writable by mappers.
    pub write: bool,
    /// Executable (carried for fidelity; unused by the collector).
    pub execute: bool,
}

impl Default for Protection {
    fn default() -> Self {
        Protection {
            read: true,
            write: true,
            execute: false,
        }
    }
}

/// Descriptor of one segment: a constant-size run of contiguous virtual
/// memory pages with a globally unique address range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentInfo {
    /// Segment identifier.
    pub id: SegmentId,
    /// First address of the range.
    pub base: Addr,
    /// Length in words (constant per server).
    pub words: u64,
    /// Bunch this segment belongs to.
    pub bunch: BunchId,
}

impl SegmentInfo {
    /// Returns `true` if `addr` falls inside this segment.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.in_range(self.base, self.words)
    }
}

/// Descriptor of a bunch: a logical group of segments with an owner node and
/// protection attributes.
#[derive(Clone, Debug)]
pub struct BunchInfo {
    /// Bunch identifier.
    pub id: BunchId,
    /// The node that created the bunch (administrative owner; distinct from
    /// per-object token ownership, which lives in the DSM layer).
    pub creator: NodeId,
    /// Segments of the bunch, in allocation order.
    pub segments: Vec<SegmentId>,
    /// Protection attributes.
    pub protection: Protection,
}

/// Authoritative allocator of bunches and non-overlapping segment ranges.
pub struct SegmentServer {
    segment_words: u64,
    next_base: u64,
    next_segment: u64,
    next_bunch: u32,
    segments: BTreeMap<SegmentId, SegmentInfo>,
    /// Sorted by base address for address→segment resolution.
    by_base: BTreeMap<u64, SegmentId>,
    bunches: BTreeMap<BunchId, BunchInfo>,
    /// Address-keyed routing for *retired* ranges: `from -> (oid, to)` for
    /// every relocation whose from-space was reclaimed by the reuse
    /// protocol. Nodes drop their forwarding knowledge when a range is
    /// wiped (Section 4.5); a mutator still holding a pre-collection
    /// pointer resolves it here (the stand-in for the original system's
    /// address-keyed routing, like the header fetch in `oid_at`).
    retired: BTreeMap<Addr, (Oid, Addr)>,
}

/// Lowest address ever handed out; keeps `Addr::NULL` and a guard band
/// unmappable.
const FIRST_BASE: u64 = 0x1_0000;

impl SegmentServer {
    /// Creates a server issuing segments of `segment_words` words each.
    ///
    /// # Panics
    ///
    /// Panics if `segment_words` is zero.
    pub fn new(segment_words: u64) -> Self {
        assert!(segment_words > 0, "segments must be non-empty");
        SegmentServer {
            segment_words,
            next_base: FIRST_BASE,
            next_segment: 1,
            next_bunch: 1,
            segments: BTreeMap::new(),
            by_base: BTreeMap::new(),
            bunches: BTreeMap::new(),
            retired: BTreeMap::new(),
        }
    }

    /// The constant segment size, in words.
    pub fn segment_words(&self) -> u64 {
        self.segment_words
    }

    /// Creates a new, initially segment-less bunch created by `creator`.
    pub fn create_bunch(&mut self, creator: NodeId, protection: Protection) -> BunchId {
        let id = BunchId(self.next_bunch);
        self.next_bunch += 1;
        self.bunches.insert(
            id,
            BunchInfo {
                id,
                creator,
                segments: Vec::new(),
                protection,
            },
        );
        id
    }

    /// Allocates a fresh segment for `bunch` with a globally unique range.
    pub fn alloc_segment(&mut self, bunch: BunchId) -> Result<SegmentInfo> {
        let entry = self
            .bunches
            .get_mut(&bunch)
            .ok_or(BmxError::BunchUnmapped {
                node: NodeId(u32::MAX),
                bunch,
            })?;
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        let base = Addr(self.next_base);
        self.next_base = self
            .next_base
            .checked_add(self.segment_words * bmx_common::WORD_BYTES)
            .ok_or(BmxError::SegmentExhausted { bunch })?;
        let info = SegmentInfo {
            id,
            base,
            words: self.segment_words,
            bunch,
        };
        self.segments.insert(id, info);
        self.by_base.insert(base.0, id);
        entry.segments.push(id);
        Ok(info)
    }

    /// Re-registers a segment known from a persistent store (recovery).
    ///
    /// Idempotent for an identical registration; rejects conflicts with
    /// existing segments. Advances the allocation cursors past the adopted
    /// range so later allocations cannot overlap it.
    pub fn adopt_segment(
        &mut self,
        bunch: BunchId,
        id: SegmentId,
        base: Addr,
        words: u64,
    ) -> Result<SegmentInfo> {
        if let Some(existing) = self.segments.get(&id) {
            if existing.base == base && existing.words == words && existing.bunch == bunch {
                return Ok(*existing);
            }
            return Err(BmxError::Protocol(format!(
                "segment {id} already registered with a different shape"
            )));
        }
        let entry = self
            .bunches
            .get_mut(&bunch)
            .ok_or(BmxError::BunchUnmapped {
                node: NodeId(u32::MAX),
                bunch,
            })?;
        let info = SegmentInfo {
            id,
            base,
            words,
            bunch,
        };
        self.segments.insert(id, info);
        self.by_base.insert(base.0, id);
        entry.segments.push(id);
        let end = base.add_words(words).0;
        if self.next_base < end {
            self.next_base = end;
        }
        if self.next_segment <= id.0 {
            self.next_segment = id.0 + 1;
        }
        Ok(info)
    }

    /// Looks up a segment descriptor.
    pub fn segment(&self, id: SegmentId) -> Result<SegmentInfo> {
        self.segments
            .get(&id)
            .copied()
            .ok_or(BmxError::NoSuchSegment(id))
    }

    /// Looks up a bunch descriptor.
    pub fn bunch(&self, id: BunchId) -> Result<&BunchInfo> {
        self.bunches.get(&id).ok_or(BmxError::BunchUnmapped {
            node: NodeId(u32::MAX),
            bunch: id,
        })
    }

    /// All bunches, in id order.
    pub fn bunches(&self) -> impl Iterator<Item = &BunchInfo> {
        self.bunches.values()
    }

    /// Resolves an address to the segment containing it, if any.
    pub fn segment_of(&self, addr: Addr) -> Option<SegmentInfo> {
        let (_, &id) = self.by_base.range(..=addr.0).next_back()?;
        let info = self.segments[&id];
        info.contains(addr).then_some(info)
    }

    /// Resolves an address to the bunch whose segment contains it, if any.
    pub fn bunch_of(&self, addr: Addr) -> Option<BunchId> {
        self.segment_of(addr).map(|s| s.bunch)
    }

    /// Registers the relocation set of a retiring range (called by every
    /// reuse participant just before it wipes its replica). Later
    /// registrations win per from-address: they carry newer knowledge.
    pub fn note_retired(&mut self, relocs: impl IntoIterator<Item = (Oid, Addr, Addr)>) {
        for (oid, from, to) in relocs {
            if from != to {
                self.retired.insert(from, (oid, to));
            }
        }
    }

    /// Drops retired-range routing whose from-address lies in
    /// `[start, start + len_words)` — called when the (reused) range is
    /// about to be evacuated *again*: its residents are now a younger
    /// generation, and a stale pointer into a re-allocated address is
    /// genuinely ambiguous (exactly as in any system that reuses address
    /// space).
    pub fn forget_retired_range(&mut self, start: Addr, len_words: u64) {
        self.retired
            .retain(|from, _| !from.in_range(start, len_words));
    }

    /// Follows retired-range routing from `addr` to the youngest known
    /// `(oid, address)` — chains span multiple generations of reuse when
    /// a to-space was itself later retired. Returns `None` for an address
    /// no retirement ever recorded.
    pub fn resolve_retired(&self, addr: Addr) -> Option<(Oid, Addr)> {
        let mut cur = addr;
        let mut found = None;
        for _ in 0..64 {
            match self.retired.get(&cur) {
                Some(&(oid, to)) if to != addr => {
                    found = Some((oid, to));
                    cur = to;
                }
                _ => break,
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn segments_never_overlap() {
        let mut srv = SegmentServer::new(128);
        let b1 = srv.create_bunch(NodeId(0), Protection::default());
        let b2 = srv.create_bunch(NodeId(1), Protection::default());
        let mut ranges = Vec::new();
        for _ in 0..10 {
            let s1 = srv.alloc_segment(b1).unwrap();
            let s2 = srv.alloc_segment(b2).unwrap();
            ranges.push((s1.base.0, s1.base.add_words(s1.words).0));
            ranges.push((s2.base.0, s2.base.add_words(s2.words).0));
        }
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }

    #[test]
    fn address_resolution_finds_containing_segment() {
        let mut srv = SegmentServer::new(64);
        let b = srv.create_bunch(NodeId(0), Protection::default());
        let s1 = srv.alloc_segment(b).unwrap();
        let s2 = srv.alloc_segment(b).unwrap();
        assert_eq!(srv.segment_of(s1.base).unwrap().id, s1.id);
        assert_eq!(srv.segment_of(s1.base.add_words(63)).unwrap().id, s1.id);
        assert_eq!(srv.segment_of(s2.base).unwrap().id, s2.id);
        assert_eq!(srv.segment_of(Addr(FIRST_BASE - 8)), None);
        assert_eq!(srv.segment_of(s2.base.add_words(64)), None);
        assert_eq!(srv.bunch_of(s1.base.add_words(5)), Some(b));
    }

    #[test]
    fn null_is_never_mapped() {
        let mut srv = SegmentServer::new(64);
        let b = srv.create_bunch(NodeId(0), Protection::default());
        srv.alloc_segment(b).unwrap();
        assert_eq!(srv.segment_of(Addr::NULL), None);
    }

    #[test]
    fn bunch_tracks_its_segments() {
        let mut srv = SegmentServer::new(32);
        let b = srv.create_bunch(NodeId(2), Protection::default());
        let s1 = srv.alloc_segment(b).unwrap();
        let s2 = srv.alloc_segment(b).unwrap();
        let info = srv.bunch(b).unwrap();
        assert_eq!(info.segments, vec![s1.id, s2.id]);
        assert_eq!(info.creator, NodeId(2));
    }

    #[test]
    fn alloc_for_unknown_bunch_fails() {
        let mut srv = SegmentServer::new(32);
        assert!(srv.alloc_segment(BunchId(77)).is_err());
    }

    proptest! {
        #[test]
        fn prop_any_address_in_a_segment_resolves_to_it(
            seg_count in 1usize..20, probe in 0u64..64
        ) {
            let mut srv = SegmentServer::new(64);
            let b = srv.create_bunch(NodeId(0), Protection::default());
            let mut segs = Vec::new();
            for _ in 0..seg_count {
                segs.push(srv.alloc_segment(b).unwrap());
            }
            for s in &segs {
                let addr = s.base.add_words(probe);
                prop_assert_eq!(srv.segment_of(addr).unwrap().id, s.id);
            }
        }
    }
}
