//! Object header layout.
//!
//! Every object is preceded by a header holding system information such as
//! the object's size (paper, Section 2.1). The reproduction uses a
//! three-word header:
//!
//! ```text
//! word 0   [ data size in words (low 32) | flags (high 32) ]
//! word 1   stable OID (see DESIGN.md, "Substitutions")
//! word 2   forwarding address (0 = none)
//! ```
//!
//! An object *reference* is the address of the header's first word; field
//! `i` lives at `addr + HEADER_WORDS + i`. The forwarding word is written by
//! the bunch garbage collector when it copies a locally owned object to
//! to-space — "a forwarding pointer is written into the object's header,
//! which is left in from-space" (paper, Section 4.2).

/// Words occupied by the header, preceding the data words.
pub const HEADER_WORDS: u64 = 3;

/// Header flag bits (stored in the high 32 bits of header word 0).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObjFlags(pub u32);

impl ObjFlags {
    /// The object has been copied to to-space; header word 2 holds the new
    /// address and the from-space body must no longer be used.
    pub const FORWARDED: ObjFlags = ObjFlags(1 << 0);

    /// Returns `true` if all bits of `other` are set in `self`.
    pub fn contains(self, other: ObjFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `self` with the bits of `other` added.
    pub fn with(self, other: ObjFlags) -> ObjFlags {
        ObjFlags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` removed.
    pub fn without(self, other: ObjFlags) -> ObjFlags {
        ObjFlags(self.0 & !other.0)
    }
}

/// Packs data size (words) and flags into header word 0.
pub fn pack_header0(size_words: u64, flags: ObjFlags) -> u64 {
    assert!(size_words <= u32::MAX as u64, "object too large");
    size_words | ((flags.0 as u64) << 32)
}

/// Extracts the data size in words from header word 0.
pub fn header0_size(word: u64) -> u64 {
    word & 0xFFFF_FFFF
}

/// Extracts the flags from header word 0.
pub fn header0_flags(word: u64) -> ObjFlags {
    ObjFlags((word >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let w = pack_header0(17, ObjFlags::FORWARDED);
        assert_eq!(header0_size(w), 17);
        assert!(header0_flags(w).contains(ObjFlags::FORWARDED));
    }

    #[test]
    fn flags_set_and_clear() {
        let f = ObjFlags::default().with(ObjFlags::FORWARDED);
        assert!(f.contains(ObjFlags::FORWARDED));
        let f = f.without(ObjFlags::FORWARDED);
        assert!(!f.contains(ObjFlags::FORWARDED));
    }

    #[test]
    fn zero_size_objects_are_representable() {
        let w = pack_header0(0, ObjFlags::default());
        assert_eq!(header0_size(w), 0);
        assert_eq!(header0_flags(w), ObjFlags::default());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_object_rejected() {
        pack_header0(u64::from(u32::MAX) + 1, ObjFlags::default());
    }
}
