//! The mutator API.
//!
//! Applications (the *mutator*, in GC terms) see: allocation within bunches,
//! barriered pointer stores, entry-consistency acquire/release brackets, and
//! explicit stack roots. They never send messages themselves — communication
//! happens purely through the DSM (paper, Section 2.2).

use bmx_addr::object;
use bmx_common::{Addr, BmxError, BunchId, NodeId, Oid, Result, StatKind};
use bmx_dsm::{AcquireStart, DsmPacket, DsmShared, Token};
use bmx_metrics::{self as metrics, Ctr, Hst};
use bmx_net::MsgClass;
use bmx_trace::{self as trace, TraceEvent};

use crate::cluster::Cluster;
use crate::msg::ClusterMsg;

/// Shape of an object to allocate.
#[derive(Clone, Debug)]
pub struct ObjSpec {
    /// Data words.
    pub size: u64,
    /// Which fields hold pointers.
    pub refs: Vec<u64>,
}

impl ObjSpec {
    /// `size` data words, none of them pointers.
    pub fn data(size: u64) -> Self {
        ObjSpec {
            size,
            refs: Vec::new(),
        }
    }

    /// `size` data words with the given pointer fields.
    pub fn with_refs(size: u64, refs: &[u64]) -> Self {
        ObjSpec {
            size,
            refs: refs.to_vec(),
        }
    }
}

impl Cluster {
    /// Enforces the bunch protection attributes (paper, Section 2.1) for a
    /// mutator access to the object at `addr`.
    fn check_protection(&self, addr: Addr, write: bool) -> Result<()> {
        // No forwarding resolution needed: to-space segments belong to the
        // same bunch, so any name of the object identifies it.
        let Some(bunch) = self.server.borrow().bunch_of(addr) else {
            return Ok(()); // unmapped: the access will fail with Unmapped
        };
        let prot = self.server.borrow().bunch(bunch)?.protection;
        if (write && !prot.write) || (!write && !prot.read) {
            return Err(BmxError::AccessDenied { bunch, write });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Allocation.
    // ------------------------------------------------------------------

    /// Allocates an object in `bunch` at `node`.
    ///
    /// Only the bunch's creator node allocates in it (the prototype's
    /// constraint, which keeps replica allocation cursors from colliding;
    /// see DESIGN.md).
    pub fn alloc(&mut self, node: NodeId, bunch: BunchId, spec: &ObjSpec) -> Result<Addr> {
        let creator = self.server.borrow().bunch(bunch)?.creator;
        if creator != node {
            return Err(BmxError::Protocol(format!(
                "node {node} may not allocate in bunch {bunch} created by {creator}"
            )));
        }
        let oid = self.mint_oid(node);
        let need = bmx_addr::HEADER_WORDS + spec.size;
        // Find a current-space segment with room, or grow the bunch.
        let seg_id = {
            let candidates = self
                .gc
                .node(node)
                .bunch(bunch)
                .map(|b| b.alloc_segments.clone())
                .unwrap_or_default();
            let mem = &self.mems[node.0 as usize];
            let found = candidates.iter().copied().find(|&s| {
                mem.has_segment(s) && mem.segment(s).is_ok_and(|x| x.free_words() >= need)
            });
            match found {
                Some(s) => s,
                None => {
                    let info = self.server.borrow_mut().alloc_segment(bunch)?;
                    if need > info.words {
                        return Err(BmxError::OutOfMemory {
                            bunch,
                            words: spec.size,
                        });
                    }
                    self.mems[node.0 as usize].map_segment(info);
                    self.gc
                        .node_mut(node)
                        .bunch_or_default(bunch)
                        .alloc_segments
                        .push(info.id);
                    info.id
                }
            }
        };
        let addr = {
            let seg = self.mems[node.0 as usize].segment_mut(seg_id)?;
            object::alloc_in_segment(seg, oid, spec.size, &spec.refs)?
        };
        self.gc.node_mut(node).directory.set_addr(oid, addr);
        self.engine.register_alloc(node, oid, bunch);
        Ok(addr)
    }

    // ------------------------------------------------------------------
    // Field access (through local forwarding).
    // ------------------------------------------------------------------

    /// Resolves `addr` to the current local copy for a mutator access:
    /// local forwarding first; if that dead-ends at an address holding no
    /// object (the range was wiped for from-space reuse and the edges
    /// dropped with it, Section 4.5), the segment server's retired-range
    /// routing supplies the object identity and the node's own replica of
    /// it is preferred.
    pub(crate) fn mutator_resolve(&self, node: NodeId, addr: Addr) -> Addr {
        let (cur, hops) = self.gc.node(node).directory.resolve_hops(addr);
        metrics::observe(node, Hst::ForwardingChainLen, hops as u64);
        if object::view(&self.mems[node.0 as usize], cur).is_ok() {
            return cur;
        }
        let Some((oid, to)) = self.server.borrow().resolve_retired(addr) else {
            return cur;
        };
        metrics::bump(node, Ctr::RetiredRouteHits);
        match self.gc.node(node).directory.addr_of(oid) {
            Some(a) if object::view(&self.mems[node.0 as usize], a).is_ok_and(|v| v.oid == oid) => {
                a
            }
            _ => self.gc.node(node).directory.resolve(to),
        }
    }

    /// Barriered pointer store: `(*obj).field = target`.
    pub fn write_ref(&mut self, node: NodeId, obj: Addr, field: u64, target: Addr) -> Result<()> {
        self.check_protection(obj, true)?;
        let obj = self.mutator_resolve(node, obj);
        if trace::enabled() {
            // The barrier resolves internally; re-resolve here only when a
            // recorder wants the (requested, resolved) pair.
            let cur = self.gc.node(node).directory.resolve(obj);
            trace::emit(
                node,
                TraceEvent::MutatorAccess {
                    requested: obj,
                    resolved: cur,
                    write: true,
                },
            );
        }
        let out = {
            let Cluster {
                gc, mems, stats, ..
            } = self;
            bmx_gc::barrier::write_ref(
                gc,
                node,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                obj,
                field,
                target,
            )?
        };
        if let Some((dst, msg)) = out {
            self.send_gc(node, dst, msg);
            self.pump()?;
        }
        Ok(())
    }

    /// Non-pointer store: `(*obj).field = value`.
    pub fn write_data(&mut self, node: NodeId, obj: Addr, field: u64, value: u64) -> Result<()> {
        self.check_protection(obj, true)?;
        let cur = self.mutator_resolve(node, obj);
        trace::emit(
            node,
            TraceEvent::MutatorAccess {
                requested: obj,
                resolved: cur,
                write: true,
            },
        );
        object::write_data_field(&mut self.mems[node.0 as usize], cur, field, value)
    }

    /// Non-pointer load.
    pub fn read_data(&self, node: NodeId, obj: Addr, field: u64) -> Result<u64> {
        self.check_protection(obj, false)?;
        let cur = self.mutator_resolve(node, obj);
        trace::emit(
            node,
            TraceEvent::MutatorAccess {
                requested: obj,
                resolved: cur,
                write: false,
            },
        );
        object::read_field(&self.mems[node.0 as usize], cur, field)
    }

    /// Pointer load.
    pub fn read_ref(&self, node: NodeId, obj: Addr, field: u64) -> Result<Addr> {
        self.check_protection(obj, false)?;
        let cur = self.mutator_resolve(node, obj);
        trace::emit(
            node,
            TraceEvent::MutatorAccess {
                requested: obj,
                resolved: cur,
                write: false,
            },
        );
        object::read_ref_field(&self.mems[node.0 as usize], cur, field)
    }

    /// The pointer-comparison operation (Section 4.2): are `a` and `b` the
    /// same object at `node`, accounting for forwarding pointers?
    pub fn ptr_eq(&self, node: NodeId, a: Addr, b: Addr) -> bool {
        self.gc.node(node).directory.ptr_eq(a, b)
    }

    // ------------------------------------------------------------------
    // Entry-consistency brackets.
    // ------------------------------------------------------------------

    /// Resolves the OID of the object at `addr` for `node`.
    ///
    /// Fast path: the local header. If the object's data never reached this
    /// node, the header is fetched from the bunch creator — a stand-in for
    /// the address-keyed routing of the original system (see DESIGN.md), and
    /// accounted as one protocol round-trip. If the creator's replica lost
    /// the trail too — every copy of the forwarding knowledge dies when a
    /// from-space range is wiped for reuse (Section 4.5) — the segment
    /// server's retired-range routing resolves the stale pointer.
    pub fn oid_at(&mut self, node: NodeId, addr: Addr) -> Result<Oid> {
        if let Ok(oid) = self.oid_at_local(node, addr) {
            return Ok(oid);
        }
        let bunch = self
            .server
            .borrow()
            .bunch_of(addr)
            .ok_or(BmxError::Unmapped { node, addr })?;
        let creator = self.server.borrow().bunch(bunch)?.creator;
        let (oid, retired_to) = match self.oid_at_local(creator, addr) {
            Ok(oid) => (oid, None),
            Err(err) => {
                let Some((oid, cur)) = self.server.borrow().resolve_retired(addr) else {
                    return Err(err);
                };
                metrics::bump(node, Ctr::RetiredRouteHits);
                // Prefer an address some replica demonstrably populated:
                // this node's own copy first, then the creator's; the
                // routing target is only a last resort (the data lands
                // there at grant time).
                let local = self.gc.node(node).directory.addr_of(oid).filter(|&a| {
                    object::view(&self.mems[node.0 as usize], a).is_ok_and(|v| v.oid == oid)
                });
                let at_creator = self.gc.node(creator).directory.addr_of(oid).filter(|&a| {
                    object::view(&self.mems[creator.0 as usize], a).is_ok_and(|v| v.oid == oid)
                });
                (oid, Some((local, local.or(at_creator).unwrap_or(cur))))
            }
        };
        self.stats[node.0 as usize].add(StatKind::MessagesSent, 2);
        self.stats[node.0 as usize].add(StatKind::DsmProtocolMessages, 2);
        self.stats[node.0 as usize].add(StatKind::DsmLogicalMessages, 2);
        match retired_to {
            // The node now knows where this object lives locally (same
            // address until relocations say otherwise) and who to ask for
            // tokens.
            None => self.gc.node_mut(node).directory.set_addr(oid, addr),
            Some((local, cur)) => {
                // Teach the local directory the retired address, so later
                // brackets (release, field access) resolve without routing.
                let dir = &mut self.gc.node_mut(node).directory;
                if !dir.is_forwarded_from(addr) {
                    dir.record_move(oid, addr, cur);
                }
                if local.is_none() {
                    let cur = dir.resolve(cur);
                    dir.set_addr(oid, cur);
                }
            }
        }
        if self.engine.obj_state(node, oid).is_none() {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            let hint = match engine.obj_state(creator, oid) {
                Some(st) if st.is_owner => creator,
                Some(st) => st.owner_hint,
                None => creator,
            };
            engine.register_mapped_replica(node, oid, bunch, hint, &mut sh, &mut send);
            self.pump()?;
        }
        Ok(oid)
    }

    /// Acquires a read token for the object at `addr` and enters the
    /// critical section.
    pub fn acquire_read(&mut self, node: NodeId, addr: Addr) -> Result<()> {
        let oid = self.oid_at(node, addr)?;
        let t0 = self.net.now();
        let started = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.start_read(node, oid, &mut sh, &mut send)?
        };
        if started == AcquireStart::Requested {
            self.pump()?;
            if self.engine.token(node, oid) == Token::None {
                // Give up cleanly: leaving the wait latched would turn the
                // grant that eventually lands into a reservation for a
                // waiter that is gone.
                self.cancel_acquire(node, addr)?;
                return Err(BmxError::WouldBlock { oid });
            }
            metrics::observe(node, Hst::AcquireReadTicks, self.net.now() - t0);
        }
        self.engine.lock(node, oid)
    }

    /// Acquires the write token for the object at `addr` and enters the
    /// critical section.
    pub fn acquire_write(&mut self, node: NodeId, addr: Addr) -> Result<()> {
        let oid = self.oid_at(node, addr)?;
        let t0 = self.net.now();
        let started = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.start_write(node, oid, &mut sh, &mut send)?
        };
        if started == AcquireStart::Requested {
            self.pump()?;
            if self.engine.token(node, oid) != Token::Write {
                // Same as the read path: abandon the wait so a late grant
                // is absorbed unreserved instead of held for nobody.
                self.cancel_acquire(node, addr)?;
                return Err(BmxError::WouldBlock { oid });
            }
            metrics::observe(node, Hst::AcquireWriteTicks, self.net.now() - t0);
        }
        self.engine.lock(node, oid)
    }

    /// One step of a split-phase acquire, for drivers that cannot block
    /// inside the protocol (the parallel runtime's per-node handles).
    ///
    /// Returns `Ok(true)` when the token is held and the critical section
    /// entered; `Ok(false)` when a request is outstanding — the caller
    /// should release the protocol lock, let driver threads deliver the
    /// grant, and poll again. Unlike [`Cluster::acquire_write`], an
    /// outstanding request is *not* re-sent on re-poll (channels are
    /// lossless in parallel mode, so a hot poll loop would only fan out
    /// redundant traffic); a caller that has waited long enough to suspect
    /// the request died with a crashed node re-sends it explicitly via
    /// [`Cluster::nudge_acquire`].
    pub fn poll_acquire(&mut self, node: NodeId, addr: Addr, write: bool) -> Result<bool> {
        let oid = self.oid_at(node, addr)?;
        if self.engine.is_waiting(node, oid) {
            // The grant clears `waiting_for` when it lands.
            return Ok(false);
        }
        let tok = self.engine.token(node, oid);
        let held = if write {
            tok == Token::Write
        } else {
            tok != Token::None
        };
        if held {
            self.engine.lock(node, oid)?;
            return Ok(true);
        }
        let started = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            if write {
                engine.start_write(node, oid, &mut sh, &mut send)?
            } else {
                engine.start_read(node, oid, &mut sh, &mut send)?
            }
        };
        self.pump()?;
        match started {
            AcquireStart::Satisfied => {
                self.engine.lock(node, oid)?;
                Ok(true)
            }
            AcquireStart::Requested => {
                // In sim mode the pump above completed the exchange; in
                // parallel mode the request is now in the transport.
                let tok = self.engine.token(node, oid);
                let held = if write {
                    tok == Token::Write
                } else {
                    tok != Token::None
                };
                if held && !self.engine.is_waiting(node, oid) {
                    self.engine.lock(node, oid)?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Re-sends the outstanding token request behind a split-phase acquire
    /// toward the current owner hint; a no-op when nothing is outstanding.
    /// The parallel runtime calls this when a poll has backed off to its
    /// ceiling — long enough that the request may have died with a crashed
    /// node (purged inbox, amnesia-wiped queue, or a drop during the
    /// recovery window). See [`bmx_dsm::DsmEngine::nudge_wait`] for why a
    /// duplicate request cannot double-grant.
    pub fn nudge_acquire(&mut self, node: NodeId, addr: Addr) -> Result<()> {
        let oid = self.oid_at(node, addr)?;
        {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.nudge_wait(node, oid, &mut sh, &mut send);
        }
        self.pump()
    }

    /// Abandons the outstanding acquire of the object at `addr` (the caller
    /// gave up: timeout, or the owner is down). Releases any reservation a
    /// grant may already have placed so parked remote requests proceed.
    pub fn cancel_acquire(&mut self, node: NodeId, addr: Addr) -> Result<()> {
        let oid = self.oid_at(node, addr)?;
        {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.cancel_wait(node, oid, &mut sh, &mut send)?;
        }
        self.pump()
    }

    /// Releases the token bracket for the object at `addr`.
    pub fn release(&mut self, node: NodeId, addr: Addr) -> Result<()> {
        let oid = self.oid_at_local(node, addr)?;
        {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.unlock(node, oid, &mut sh, &mut send)?;
        }
        self.pump()
    }

    // ------------------------------------------------------------------
    // Sequentially-consistent convenience brackets (experiment E11).
    // ------------------------------------------------------------------

    /// A sequentially-consistent load: acquire-read, load, release.
    ///
    /// This is the per-operation coherence style the paper's Section 1
    /// contrasts weak consistency against; entry-consistency programs hold
    /// tokens across whole critical sections instead.
    pub fn sc_read_data(&mut self, node: NodeId, obj: Addr, field: u64) -> Result<u64> {
        self.acquire_read(node, obj)?;
        let v = self.read_data(node, obj, field);
        self.release(node, obj)?;
        v
    }

    /// A sequentially-consistent store: acquire-write, store, release.
    pub fn sc_write_data(&mut self, node: NodeId, obj: Addr, field: u64, value: u64) -> Result<()> {
        self.acquire_write(node, obj)?;
        let r = self.write_data(node, obj, field, value);
        self.release(node, obj)?;
        r
    }

    // ------------------------------------------------------------------
    // Roots.
    // ------------------------------------------------------------------

    /// Registers a mutator stack root at `node`.
    pub fn add_root(&mut self, node: NodeId, addr: Addr) -> u64 {
        // A root created during an incremental collection makes its target
        // reachable: gray it.
        let bunch = self.gc.bunch_of(addr);
        self.gc.node_mut(node).gray_if_active(bunch, addr);
        self.gc.node_mut(node).add_root(addr)
    }

    /// Reads a root slot (the BGC may have rewritten it).
    pub fn root(&self, node: NodeId, id: u64) -> Option<Addr> {
        self.gc.node(node).root(id)
    }

    /// Re-points a root slot.
    pub fn set_root(&mut self, node: NodeId, id: u64, addr: Addr) {
        let bunch = self.gc.bunch_of(addr);
        self.gc.node_mut(node).gray_if_active(bunch, addr);
        self.gc.node_mut(node).set_root(id, addr);
    }

    /// Drops a root slot.
    pub fn remove_root(&mut self, node: NodeId, id: u64) -> Option<Addr> {
        self.gc.node_mut(node).remove_root(id)
    }
}
