//! A threaded driver for the simulated cluster.
//!
//! The deterministic [`Cluster`] is single-threaded by
//! design (the paper's protocol properties are easiest to audit that way),
//! but real BMX applications are concurrent programs. This module provides
//! the actor pattern that bridges the two: one dedicated thread owns the
//! cluster; any number of application threads submit closures through a
//! [`ClusterHandle`] and block for their results. Per-operation atomicity
//! is exactly the cluster's, and the channel serializes the interleaving —
//! so multi-threaded programs get an arbitrary (but valid) schedule, which
//! is what the stress tests shake.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};

use crate::cluster::{Cluster, ClusterConfig};

type Job = Box<dyn FnOnce(&mut Cluster) + Send>;

enum Msg {
    Job(Job),
    /// Stop the loop even if handle clones still exist.
    Stop,
}

/// The owning side of the actor: join it to stop.
pub struct ClusterActor {
    tx: Sender<Msg>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting work to the cluster thread.
#[derive(Clone)]
pub struct ClusterHandle {
    tx: Sender<Msg>,
}

impl ClusterActor {
    /// Builds the cluster *inside* a dedicated thread (the cluster itself
    /// is intentionally not `Send`) and returns the actor plus a handle.
    pub fn spawn(cfg: ClusterConfig) -> (ClusterActor, ClusterHandle) {
        let (tx, rx) = unbounded::<Msg>();
        let thread = std::thread::Builder::new()
            .name("bmx-cluster".into())
            .spawn(move || {
                let mut cluster = Cluster::new(cfg);
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Job(job) => job(&mut cluster),
                        Msg::Stop => break,
                    }
                }
            })
            .expect("spawn cluster thread");
        (
            ClusterActor {
                tx: tx.clone(),
                thread: Some(thread),
            },
            ClusterHandle { tx },
        )
    }

    /// Stops the actor and joins the thread. Jobs already queued run first;
    /// handle clones outstanding afterwards get errors.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterActor {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl ClusterHandle {
    /// Runs `f` on the cluster thread and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the cluster thread has stopped.
    pub fn with<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Cluster) -> R + Send + 'static,
    {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Msg::Job(Box::new(move |c: &mut Cluster| {
                let _ = rtx.send(f(c));
            })))
            .expect("cluster thread alive");
        rrx.recv().expect("cluster thread replied")
    }

    /// Fire-and-forget variant (no reply).
    pub fn post<F>(&self, f: F)
    where
        F: FnOnce(&mut Cluster) + Send + 'static,
    {
        self.tx
            .send(Msg::Job(Box::new(f)))
            .expect("cluster thread alive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutator::ObjSpec;
    use bmx_common::NodeId;

    #[test]
    fn handle_round_trips_operations() {
        let (actor, h) = ClusterActor::spawn(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let (bunch, obj) = h.with(move |c| {
            let b = c.create_bunch(n0).unwrap();
            let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
            c.write_data(n0, o, 0, 99).unwrap();
            (b, o)
        });
        let v = h.with(move |c| c.read_data(n0, obj, 0).unwrap());
        assert_eq!(v, 99);
        let _ = bunch;
        actor.shutdown();
    }

    #[test]
    fn clones_share_one_cluster() {
        let (actor, h) = ClusterActor::spawn(ClusterConfig::with_nodes(1));
        let h2 = h.clone();
        let n0 = NodeId(0);
        let obj = h.with(move |c| {
            let b = c.create_bunch(n0).unwrap();
            c.alloc(n0, b, &ObjSpec::data(1)).unwrap()
        });
        h2.with(move |c| c.write_data(n0, obj, 0, 7).unwrap());
        assert_eq!(h.with(move |c| c.read_data(n0, obj, 0).unwrap()), 7);
        actor.shutdown();
    }
}
