//! A threaded driver for the simulated cluster.
//!
//! The deterministic [`Cluster`] is single-threaded by
//! design (the paper's protocol properties are easiest to audit that way),
//! but real BMX applications are concurrent programs. This module provides
//! the actor pattern that bridges the two: one dedicated thread owns the
//! cluster; any number of application threads submit closures through a
//! [`ClusterHandle`] and block for their results. Per-operation atomicity
//! is exactly the cluster's, and the channel serializes the interleaving —
//! so multi-threaded programs get an arbitrary (but valid) schedule, which
//! is what the stress tests shake.
//!
//! For genuine hardware parallelism (per-node driver threads, real
//! channel links) see [`crate::parallel`]; this actor remains the bridge
//! for code that wants the deterministic cluster behind a `Send` handle.
//!
//! **Failure model**: a panic inside a submitted closure kills the cluster
//! thread — the cluster state it owned must be presumed torn. The panic
//! does *not* propagate as a hang: the actor records the panic message,
//! and every pending and future [`ClusterHandle::with`] call returns
//! `Err(BmxError::Protocol(..))` carrying it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use bmx_common::{BmxError, Result};
use crossbeam::channel::{bounded, unbounded, Sender};
use parking_lot::Mutex;

use crate::cluster::{Cluster, ClusterConfig};

type Job = Box<dyn FnOnce(&mut Cluster) + Send>;

enum Msg {
    Job(Job),
    /// Stop the loop even if handle clones still exist.
    Stop,
}

/// The owning side of the actor: join it to stop.
pub struct ClusterActor {
    tx: Sender<Msg>,
    thread: Option<JoinHandle<()>>,
}

/// A cloneable, `Send` handle for submitting work to the cluster thread.
#[derive(Clone)]
pub struct ClusterHandle {
    tx: Sender<Msg>,
    /// Set once if the cluster thread dies to a panic; read by every
    /// submitter whose reply channel comes back dead.
    note: Arc<Mutex<Option<String>>>,
}

fn panic_note(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

impl ClusterActor {
    /// Builds the cluster *inside* a dedicated thread and returns the
    /// actor plus a handle.
    pub fn spawn(cfg: ClusterConfig) -> (ClusterActor, ClusterHandle) {
        let (tx, rx) = unbounded::<Msg>();
        let note: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let thread_note = Arc::clone(&note);
        let thread = std::thread::Builder::new()
            .name("bmx-cluster".into())
            .spawn(move || {
                let mut cluster = Cluster::new(cfg);
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Job(job) => {
                            // A panicking job means the cluster state may
                            // be mid-mutation: record why and stop serving.
                            // Dropping `rx` disconnects every sender, and
                            // dropping the in-flight job's reply sender
                            // wakes its submitter with an error.
                            if let Err(p) = catch_unwind(AssertUnwindSafe(|| job(&mut cluster))) {
                                *thread_note.lock() = Some(panic_note(p));
                                break;
                            }
                        }
                        Msg::Stop => break,
                    }
                }
            })
            .expect("spawn cluster thread");
        (
            ClusterActor {
                tx: tx.clone(),
                thread: Some(thread),
            },
            ClusterHandle { tx, note },
        )
    }

    /// Stops the actor and joins the thread. Jobs already queued run first;
    /// handle clones outstanding afterwards get errors.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterActor {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl ClusterHandle {
    /// The error every submitter sees once the cluster thread is gone.
    fn dead_err(&self) -> BmxError {
        match self.note.lock().clone() {
            Some(why) => BmxError::Protocol(format!("cluster thread panicked: {why}")),
            None => BmxError::Protocol("cluster thread stopped".into()),
        }
    }

    /// Runs `f` on the cluster thread and returns its result.
    ///
    /// Errors (instead of hanging or panicking) if the cluster thread has
    /// stopped — including when it dies to a panic *while running `f` or
    /// any queued job ahead of it*; the panic message is carried in the
    /// error.
    pub fn with<R, F>(&self, f: F) -> Result<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut Cluster) -> R + Send + 'static,
    {
        let (rtx, rrx) = bounded(1);
        if self
            .tx
            .send(Msg::Job(Box::new(move |c: &mut Cluster| {
                let _ = rtx.send(f(c));
            })))
            .is_err()
        {
            return Err(self.dead_err());
        }
        rrx.recv().map_err(|_| self.dead_err())
    }

    /// Fire-and-forget variant (no reply). Silently dropped if the
    /// cluster thread has stopped.
    pub fn post<F>(&self, f: F)
    where
        F: FnOnce(&mut Cluster) + Send + 'static,
    {
        let _ = self.tx.send(Msg::Job(Box::new(f)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutator::ObjSpec;
    use bmx_common::NodeId;

    #[test]
    fn handle_round_trips_operations() {
        let (actor, h) = ClusterActor::spawn(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let (bunch, obj) = h
            .with(move |c| {
                let b = c.create_bunch(n0).unwrap();
                let o = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
                c.write_data(n0, o, 0, 99).unwrap();
                (b, o)
            })
            .unwrap();
        let v = h.with(move |c| c.read_data(n0, obj, 0).unwrap()).unwrap();
        assert_eq!(v, 99);
        let _ = bunch;
        actor.shutdown();
    }

    #[test]
    fn clones_share_one_cluster() {
        let (actor, h) = ClusterActor::spawn(ClusterConfig::with_nodes(1));
        let h2 = h.clone();
        let n0 = NodeId(0);
        let obj = h
            .with(move |c| {
                let b = c.create_bunch(n0).unwrap();
                c.alloc(n0, b, &ObjSpec::data(1)).unwrap()
            })
            .unwrap();
        h2.with(move |c| c.write_data(n0, obj, 0, 7).unwrap())
            .unwrap();
        assert_eq!(
            h.with(move |c| c.read_data(n0, obj, 0).unwrap()).unwrap(),
            7
        );
        actor.shutdown();
    }

    /// The satellite regression: a panicking job must not hang or panic
    /// other submitters — pending and future `with` calls all get an `Err`
    /// carrying the panic message.
    #[test]
    fn cluster_thread_panic_surfaces_as_err() {
        let (actor, h) = ClusterActor::spawn(ClusterConfig::with_nodes(1));

        // A submitter already blocked on a reply when the panic happens.
        let pending = {
            let h = h.clone();
            std::thread::spawn(move || {
                h.with(|_c| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                })
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        // This job panics on the cluster thread (while `pending`'s result
        // may still be queued behind it on other interleavings — both
        // orders must end in Err/Ok, never a hang).
        let r = h.with(|_c| -> () { panic!("deliberate test panic") });
        assert!(
            matches!(&r, Err(BmxError::Protocol(m)) if m.contains("deliberate test panic")),
            "panicking submitter got {r:?}"
        );
        let _ = pending.join().expect("pending submitter thread");

        // Future submitters see the same error, not a hang or a panic.
        let later = h.with(|c| c.nodes());
        assert!(
            matches!(&later, Err(BmxError::Protocol(m)) if m.contains("deliberate test panic")),
            "future submitter got {later:?}"
        );
        // post() after death is a silent no-op, not a panic.
        h.post(|_c| {});
        actor.shutdown();
    }
}
