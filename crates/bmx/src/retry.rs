//! The automatic report-retry daemon.
//!
//! The paper's transport (Section 6.1) tolerates losing reachability tables
//! because they are idempotent and can simply be re-sent. The seed code left
//! the re-send to the test driver ([`crate::cluster::Cluster::resend_report`]);
//! this module automates it: every published report is tracked per
//! destination, and an exponential-backoff timer re-sends the *current*
//! report of the bunch until every destination's cleaner has applied an
//! epoch at least as new, or a retry budget runs out (at which point the
//! next collection's report supersedes the lost one — the design's normal
//! recovery path, just slower).
//!
//! The daemon is driven by [`crate::cluster::Cluster::step`], the cluster's
//! background clock. It is deliberately *not* driven by `pump()`: pumping
//! models "wait for the network to go quiet", while the daemon models
//! background time passing on each node.

use std::collections::{BTreeMap, BTreeSet};

use bmx_common::{BunchId, Epoch, NodeId};

/// Backoff and budget parameters of the retry daemon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks from publication to the first resend.
    pub initial_interval: u64,
    /// Multiplier applied to the interval after each resend.
    pub backoff: u64,
    /// Upper bound on the interval.
    pub max_interval: u64,
    /// Resends per tracked report before the daemon gives up.
    pub budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 64,
            budget: 8,
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    epoch: Epoch,
    /// Tick the report was first published.
    first_sent: u64,
    /// Tick of the next resend.
    next_at: u64,
    /// Current backoff interval.
    interval: u64,
    /// Resends performed so far.
    attempts: u32,
    /// Destinations that have not yet confirmed application.
    pending: BTreeSet<NodeId>,
}

/// A resend the daemon wants performed now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resend {
    /// The report's origin node.
    pub node: NodeId,
    /// The collected bunch.
    pub bunch: BunchId,
    /// The destinations still missing the report.
    pub dests: Vec<NodeId>,
}

/// The outcome of acknowledging a report delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckOutcome {
    /// The delivery did not complete any tracked report.
    Partial,
    /// Every destination has now applied the report; if the daemon had to
    /// resend it, the recovery latency (publication to last application, in
    /// ticks) is reported.
    Complete {
        /// `Some(ticks)` iff at least one resend was needed.
        recovery_latency: Option<u64>,
        /// Ticks from (re-)publication to the last destination's
        /// application — the report's retire lag, resends or not.
        lag: u64,
    },
    /// No tracked report matched.
    Unknown,
}

/// Per-cluster retry bookkeeping, keyed by `(origin node, bunch)`. A newer
/// collection of the same bunch replaces the tracked entry (its report
/// subsumes the older one).
#[derive(Clone, Debug)]
pub struct RetryDaemon {
    policy: RetryPolicy,
    entries: BTreeMap<(NodeId, BunchId), Entry>,
}

impl RetryDaemon {
    /// Creates an idle daemon.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryDaemon {
            policy,
            entries: BTreeMap::new(),
        }
    }

    /// Starts (or restarts, for a newer epoch) tracking a published report.
    /// Destinations equal to `node` are ignored — the local cleaner applies
    /// the report synchronously.
    pub fn track(
        &mut self,
        node: NodeId,
        bunch: BunchId,
        epoch: Epoch,
        dests: &[NodeId],
        now: u64,
    ) {
        let pending: BTreeSet<NodeId> = dests.iter().copied().filter(|&d| d != node).collect();
        if pending.is_empty() {
            self.entries.remove(&(node, bunch));
            return;
        }
        self.entries.insert(
            (node, bunch),
            Entry {
                epoch,
                first_sent: now,
                next_at: now + self.policy.initial_interval,
                interval: self.policy.initial_interval,
                attempts: 0,
                pending,
            },
        );
    }

    /// Records that `dst`'s cleaner applied the report `(node, bunch)` at
    /// epoch `epoch`. Stale acknowledgements (older epoch than tracked) are
    /// ignored.
    pub fn ack(
        &mut self,
        node: NodeId,
        bunch: BunchId,
        epoch: Epoch,
        dst: NodeId,
        now: u64,
    ) -> AckOutcome {
        let Some(entry) = self.entries.get_mut(&(node, bunch)) else {
            return AckOutcome::Unknown;
        };
        if epoch < entry.epoch {
            return AckOutcome::Unknown;
        }
        entry.pending.remove(&dst);
        if !entry.pending.is_empty() {
            return AckOutcome::Partial;
        }
        let entry = self.entries.remove(&(node, bunch)).expect("present above");
        let lag = now.saturating_sub(entry.first_sent);
        let recovery_latency = (entry.attempts > 0).then_some(lag);
        AckOutcome::Complete {
            recovery_latency,
            lag,
        }
    }

    /// Collects the resends due at `now`, advancing each entry's backoff.
    /// Entries that exhaust their budget are dropped and returned separately
    /// so the caller can account them.
    pub fn due(&mut self, now: u64) -> (Vec<Resend>, Vec<Resend>) {
        let mut resends = Vec::new();
        let mut exhausted = Vec::new();
        let mut dead: Vec<(NodeId, BunchId)> = Vec::new();
        for (&(node, bunch), entry) in self.entries.iter_mut() {
            if entry.next_at > now {
                continue;
            }
            let dests: Vec<NodeId> = entry.pending.iter().copied().collect();
            if entry.attempts >= self.policy.budget {
                exhausted.push(Resend { node, bunch, dests });
                dead.push((node, bunch));
                continue;
            }
            entry.attempts += 1;
            entry.interval = (entry.interval * self.policy.backoff).min(self.policy.max_interval);
            entry.next_at = now + entry.interval;
            resends.push(Resend { node, bunch, dests });
        }
        for key in dead {
            self.entries.remove(&key);
        }
        (resends, exhausted)
    }

    /// Pulls every entry with `node` among its pending destinations forward
    /// to fire at `now` — called when a node restarts, so recovery does not
    /// wait out a backed-off interval. The entry's backoff and latency
    /// baseline *reset* rather than inherit pre-crash state: the interval
    /// returns to the policy's initial value, the attempt budget restarts,
    /// and recovery latency is measured from the restart, not from a
    /// publication that predates the crash.
    pub fn hasten(&mut self, node: NodeId, now: u64) {
        for entry in self.entries.values_mut() {
            if entry.pending.contains(&node) {
                entry.next_at = now;
                entry.interval = self.policy.initial_interval;
                entry.first_sent = now;
                entry.attempts = 0;
            }
        }
    }

    /// Drops every report tracked *by* `node` — an amnesia crash wiped the
    /// daemon's tables on that node, so the restarted instance must not
    /// inherit pre-crash timers or latency baselines. The first collection
    /// after recovery tracks a fresh report, which supersedes anything
    /// forgotten here (reports are idempotent).
    pub fn forget_origin(&mut self, node: NodeId) {
        self.entries.retain(|&(origin, _), _| origin != node);
    }

    /// Number of reports still awaiting full delivery.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Number of reports originated by `node` still awaiting delivery —
    /// the per-node queue depth the retry-storm watchdog watches.
    pub fn pending_for(&self, node: NodeId) -> usize {
        self.entries.keys().filter(|&&(o, _)| o == node).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    const B: BunchId = BunchId(7);

    #[test]
    fn untouched_report_is_acked_without_latency() {
        let mut d = RetryDaemon::new(RetryPolicy::default());
        d.track(n(0), B, Epoch(1), &[n(0), n(1), n(2)], 10);
        assert_eq!(d.ack(n(0), B, Epoch(1), n(1), 11), AckOutcome::Partial);
        assert_eq!(
            d.ack(n(0), B, Epoch(1), n(2), 12),
            AckOutcome::Complete {
                recovery_latency: None,
                lag: 2
            },
            "no resend happened, so no recovery latency"
        );
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        let policy = RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 10,
            budget: 9,
        };
        let mut d = RetryDaemon::new(policy);
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        let mut fire_ticks = Vec::new();
        let mut now = 0;
        for _ in 0..4 {
            loop {
                now += 1;
                let (resends, _) = d.due(now);
                if !resends.is_empty() {
                    fire_ticks.push(now);
                    break;
                }
            }
        }
        assert_eq!(
            fire_ticks,
            vec![4, 12, 22, 32],
            "intervals 4, 8, then capped at 10"
        );
    }

    #[test]
    fn budget_exhaustion_drops_the_entry() {
        let policy = RetryPolicy {
            initial_interval: 1,
            backoff: 1,
            max_interval: 1,
            budget: 2,
        };
        let mut d = RetryDaemon::new(policy);
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        assert_eq!(d.due(1).0.len(), 1);
        assert_eq!(d.due(2).0.len(), 1);
        let (resends, exhausted) = d.due(3);
        assert!(resends.is_empty());
        assert_eq!(exhausted.len(), 1);
        assert_eq!(d.pending(), 0, "given up");
    }

    #[test]
    fn recovery_latency_spans_publication_to_last_ack() {
        let mut d = RetryDaemon::new(RetryPolicy::default());
        d.track(n(0), B, Epoch(3), &[n(1)], 100);
        assert_eq!(d.due(104).0.len(), 1, "first resend");
        assert_eq!(
            d.ack(n(0), B, Epoch(3), n(1), 106),
            AckOutcome::Complete {
                recovery_latency: Some(6),
                lag: 6
            }
        );
    }

    #[test]
    fn newer_epoch_supersedes_and_stale_acks_are_ignored() {
        let mut d = RetryDaemon::new(RetryPolicy::default());
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        d.track(n(0), B, Epoch(2), &[n(1), n(2)], 5);
        assert_eq!(
            d.ack(n(0), B, Epoch(1), n(1), 6),
            AckOutcome::Unknown,
            "stale epoch"
        );
        assert_eq!(d.ack(n(0), B, Epoch(2), n(1), 7), AckOutcome::Partial);
        assert_eq!(
            d.ack(n(0), B, Epoch(2), n(2), 8),
            AckOutcome::Complete {
                recovery_latency: None,
                lag: 3
            }
        );
    }

    #[test]
    fn hasten_pulls_the_timer_forward() {
        let mut d = RetryDaemon::new(RetryPolicy {
            initial_interval: 50,
            ..Default::default()
        });
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        assert!(d.due(10).0.is_empty(), "not due yet");
        d.hasten(n(1), 10);
        assert_eq!(d.due(10).0.len(), 1, "restart pulls the resend forward");
    }

    #[test]
    fn hasten_resets_backoff_and_latency_baseline() {
        let policy = RetryPolicy {
            initial_interval: 4,
            backoff: 2,
            max_interval: 64,
            budget: 8,
        };
        let mut d = RetryDaemon::new(policy);
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        // Back the entry off twice (intervals 4 -> 8 -> 16).
        assert_eq!(d.due(4).0.len(), 1);
        assert_eq!(d.due(12).0.len(), 1);
        // The destination restarts at tick 100: the timer fires now and the
        // backoff restarts at the initial interval.
        d.hasten(n(1), 100);
        assert_eq!(d.due(100).0.len(), 1, "fires at the restart tick");
        assert!(d.due(107).0.is_empty(), "backoff restarted from initial");
        assert_eq!(d.due(108).0.len(), 1, "4*2=8 after reset, not 16*2=32");
        // Latency is measured from the restart, not the pre-crash
        // publication at tick 0.
        assert_eq!(
            d.ack(n(0), B, Epoch(1), n(1), 110),
            AckOutcome::Complete {
                recovery_latency: Some(10),
                lag: 10
            }
        );
    }

    #[test]
    fn forget_origin_drops_only_that_nodes_reports() {
        let mut d = RetryDaemon::new(RetryPolicy::default());
        d.track(n(0), B, Epoch(1), &[n(1)], 0);
        d.track(n(2), BunchId(9), Epoch(1), &[n(1)], 0);
        assert_eq!(d.pending(), 2);
        d.forget_origin(n(0));
        assert_eq!(d.pending(), 1);
        assert_eq!(
            d.ack(n(0), B, Epoch(1), n(1), 1),
            AckOutcome::Unknown,
            "the amnesiac node's entry is gone"
        );
        assert_eq!(d.ack(n(2), BunchId(9), Epoch(1), n(1), 1), {
            AckOutcome::Complete {
                recovery_latency: None,
                lag: 1,
            }
        });
    }

    #[test]
    fn tracking_only_local_destinations_is_a_no_op() {
        let mut d = RetryDaemon::new(RetryPolicy::default());
        d.track(n(0), B, Epoch(1), &[n(0)], 0);
        assert_eq!(d.pending(), 0);
    }
}
