//! The unified cluster message type.

use bmx_dsm::DsmPacket;
use bmx_gc::GcMsg;
use bmx_net::WireSize;

use crate::recovery::RejoinMsg;

/// Everything that travels on the simulated network.
#[derive(Clone, Debug)]
pub enum ClusterMsg {
    /// Consistency-protocol traffic (with piggy-backed GC payloads).
    Dsm(DsmPacket),
    /// Collector-to-collector traffic.
    Gc(GcMsg),
    /// Crash-recovery rejoin handshake (reliable, like consistency
    /// traffic — see [`crate::recovery`]).
    Rejoin(RejoinMsg),
}

impl WireSize for ClusterMsg {
    fn wire_size(&self) -> u64 {
        match self {
            ClusterMsg::Dsm(p) => p.wire_size(),
            ClusterMsg::Gc(m) => m.wire_size(),
            ClusterMsg::Rejoin(m) => m.wire_size(),
        }
    }
}
