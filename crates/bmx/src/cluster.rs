//! The deterministic cluster driver.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

use bmx_addr::object;
use bmx_addr::server::Protection;
use bmx_addr::{NodeMemory, SegmentServer};
use bmx_common::{Addr, BmxError, BunchId, Epoch, NodeId, NodeStats, Oid, Result, StatKind};
use bmx_dsm::{DsmEngine, DsmMsg, DsmPacket, DsmShared, Token};

/// Equality over the deferrable token-request messages, used to dedupe the
/// mid-recovery replay queue: sim-mode acquires re-send on every retry, and
/// replaying each copy would double-queue the grant.
fn same_request(a: &DsmMsg, b: &DsmMsg) -> bool {
    match (a, b) {
        (
            DsmMsg::ReadReq {
                oid: ao,
                requester: ar,
            },
            DsmMsg::ReadReq {
                oid: bo,
                requester: br,
            },
        )
        | (
            DsmMsg::WriteReq {
                oid: ao,
                requester: ar,
            },
            DsmMsg::WriteReq {
                oid: bo,
                requester: br,
            },
        ) => ao == bo && ar == br,
        _ => false,
    }
}
use bmx_gc::{barrier, cleaner, collect, fromspace, CollectStats, GcMsg, GcState, RelocMode};
use bmx_metrics::{self as metrics, Ctr, Gge, Hst, LinkCtr};
use bmx_net::{Envelope, FaultEvent, MsgClass, Network, NetworkConfig};
use bmx_profile::{self as profile, SpanKind};
use bmx_rvm::{Rvm, RvmOptions};
use bmx_trace::{self as trace, TraceEvent};

use crate::msg::ClusterMsg;
use crate::persist::{self, NodeMeta};
use crate::recovery::{Assignment, ObjView, OrphanView, Recovery, RecoveryOutcome, RejoinMsg};
use crate::retry::{AckOutcome, RetryDaemon, RetryPolicy};

/// Construction parameters for a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Constant segment size, in 8-byte words.
    pub segment_words: u64,
    /// Network behaviour (latency, loss injection, chaos fault plan).
    pub net: NetworkConfig,
    /// How relocation records propagate (experiment E3 knob).
    pub reloc_mode: RelocMode,
    /// Automatic report-retry daemon, driven by [`Cluster::step`]. `None`
    /// restores the seed behaviour (manual [`Cluster::resend_report`] only).
    pub retry: Option<RetryPolicy>,
    /// RVM-backed persistence. When set, every BGC is followed by a
    /// background checkpoint of the collected bunches and an amnesia
    /// restart runs the full recovery pipeline against the store. `None`
    /// keeps the cluster purely volatile (the seed behaviour).
    pub persist: Option<PersistConfig>,
    /// DSM envelope coalescing (one envelope per destination per protocol
    /// round). `false` reverts to one envelope per protocol message — the
    /// pre-batching wire behaviour, kept for equivalence testing.
    pub coalesce_dsm: bool,
    /// How long a parallel-runtime blocking acquire
    /// ([`crate::NodeHandle::acquire_write`]) re-polls before giving up
    /// with `WouldBlock`. Ignored by the deterministic simulation, whose
    /// acquires pump the network to completion instead of waiting.
    pub acquire_timeout: std::time::Duration,
}

/// Where (and how aggressively) the cluster persists through RVM.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding one RVM store per node (`<dir>/node<N>`).
    pub dir: PathBuf,
    /// RVM log-truncation scheduling: after a post-BGC checkpoint, truncate
    /// the node's redo log once it exceeds this many bytes (the log has
    /// just been fully applied, so truncation is safe and bounds replay
    /// time). `None` lets the log grow for the whole run.
    pub truncate_log_bytes: Option<u64>,
}

impl PersistConfig {
    /// Persistence under `dir` with the default truncation bound (1 MiB).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            truncate_log_bytes: Some(1 << 20),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            segment_words: 4096,
            net: NetworkConfig::lossless(1),
            reloc_mode: RelocMode::Piggyback,
            retry: Some(RetryPolicy::default()),
            persist: None,
            coalesce_dsm: true,
            acquire_timeout: std::time::Duration::from_secs(10),
        }
    }
}

impl ClusterConfig {
    /// A config with `n` nodes and defaults otherwise.
    pub fn with_nodes(n: u32) -> Self {
        ClusterConfig {
            nodes: n,
            ..Default::default()
        }
    }

    /// Sets the parallel runtime's blocking-acquire timeout.
    pub fn with_acquire_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.acquire_timeout = timeout;
        self
    }
}

/// The simulated BMX cluster.
pub struct Cluster {
    /// The shared segment server (BMX-server role).
    pub server: bmx_gc::SharedServer,
    /// The entry-consistency protocol engine.
    pub engine: DsmEngine,
    /// The collector state (also the DSM's `GcIntegration`).
    pub gc: GcState,
    /// Per-node memories.
    pub mems: Vec<NodeMemory>,
    /// Per-node counters.
    pub stats: Vec<NodeStats>,
    /// The simulated network.
    pub net: Network<ClusterMsg>,
    next_oid: Vec<u64>,
    /// In-flight incremental collections, one slot per node.
    incrementals: Vec<Option<bmx_gc::IncrementalBgc>>,
    /// The automatic report-retry daemon, if enabled.
    retry: Option<RetryDaemon>,
    /// Highest sequence number delivered per (src, dst) channel, for
    /// duplicate-delivery accounting (duplicates are delivered anyway — the
    /// loss-tolerant handlers are idempotent).
    last_seq: BTreeMap<(NodeId, NodeId), u64>,
    /// Persistence configuration (`None` = purely volatile cluster).
    persist: Option<PersistConfig>,
    /// Lazily opened per-node RVM stores.
    rvms: Vec<Option<Rvm>>,
    /// In-progress crash-amnesia recoveries, one slot per node.
    recoveries: Vec<Option<Recovery>>,
    /// Rejoin epochs consumed per node (strictly increasing across
    /// restarts, and restored from the persisted manifest so even a
    /// crash-of-the-recovery cannot reuse one).
    rejoin_epochs: Vec<u64>,
    /// Every completed recovery, for the E9 experiment and the chaos suite.
    pub recovery_log: Vec<RecoveryOutcome>,
    /// Parallel-mode egress hook. When set, [`Cluster::pump`] *exports*
    /// in-flight envelopes to the hook (a real [`bmx_net::Transport`])
    /// instead of dispatching them inline; per-node driver threads deliver
    /// them back through [`Cluster::deliver`]. `None` in the deterministic
    /// simulation, which keeps the tick loop bit-exact.
    uplink: Option<Uplink>,
}

/// The egress half of the transport seam (see [`Cluster::set_uplink`]).
pub type Uplink = Arc<dyn Fn(Envelope<ClusterMsg>) + Send + Sync>;

impl Cluster {
    /// Builds a cluster.
    pub fn new(cfg: ClusterConfig) -> Self {
        let server = bmx_gc::SharedServer::new(SegmentServer::new(cfg.segment_words));
        let mut gc = GcState::new(cfg.nodes as usize, server.clone());
        gc.reloc_mode = cfg.reloc_mode;
        let mut engine = DsmEngine::new(cfg.nodes as usize);
        engine.set_coalescing(cfg.coalesce_dsm);
        let cluster = Cluster {
            server,
            engine,
            gc,
            mems: (0..cfg.nodes).map(|i| NodeMemory::new(NodeId(i))).collect(),
            stats: (0..cfg.nodes).map(|_| NodeStats::new()).collect(),
            net: Network::new(cfg.net),
            next_oid: vec![0; cfg.nodes as usize],
            incrementals: (0..cfg.nodes).map(|_| None).collect(),
            retry: cfg.retry.map(RetryDaemon::new),
            last_seq: BTreeMap::new(),
            persist: cfg.persist,
            rvms: (0..cfg.nodes).map(|_| None).collect(),
            recoveries: (0..cfg.nodes).map(|_| None).collect(),
            rejoin_epochs: vec![0; cfg.nodes as usize],
            recovery_log: Vec::new(),
            uplink: None,
        };
        cluster.bind_metrics();
        cluster
    }

    /// Binds every node's live simulation-counter cells to the installed
    /// metrics registry (the single-counting-mechanism rule: snapshots and
    /// Prometheus dumps read the very cells the cluster bumps). Run at
    /// construction; call again if a registry is installed afterwards.
    /// No-op while metrics are disabled.
    pub fn bind_metrics(&self) {
        if !metrics::enabled() {
            return;
        }
        for (i, s) in self.stats.iter().enumerate() {
            metrics::bind_stats(NodeId(i as u32), s.handle());
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.mems.len() as u32
    }

    /// Mints a fresh OID at `node`.
    pub fn mint_oid(&mut self, node: NodeId) -> Oid {
        let c = &mut self.next_oid[node.0 as usize];
        *c += 1;
        Oid(((node.0 as u64 + 1) << 40) | *c)
    }

    // ------------------------------------------------------------------
    // Message plumbing.
    // ------------------------------------------------------------------

    /// Sends a GC message, classing and counting it.
    pub fn send_gc(&mut self, src: NodeId, dst: NodeId, msg: GcMsg) {
        let class = match &msg {
            GcMsg::ScionCreate { .. } => MsgClass::ScionMessage,
            GcMsg::Report(_) => MsgClass::StubTable,
            _ => MsgClass::GcBackground,
        };
        self.stats[src.0 as usize].bump(StatKind::MessagesSent);
        self.net.send(src, dst, class, ClusterMsg::Gc(msg));
    }

    /// Delivers every in-flight message (and the cascades it triggers).
    ///
    /// Note that pumping spins the clock only while traffic is in flight; it
    /// does not fire the retry daemon's timers. Chaos runs drive time with
    /// [`Cluster::step`] instead.
    pub fn pump(&mut self) -> Result<()> {
        if self.uplink.is_some() {
            // Parallel mode: messages leave through the transport and come
            // back through per-node drivers; nothing is dispatched inline.
            self.export_outbox();
            return Ok(());
        }
        while self.net.in_flight() > 0 {
            let due = self.net.tick();
            for env in due {
                self.dispatch(env)?;
            }
            self.note_fault_events()?;
        }
        Ok(())
    }

    /// Routes every protocol send through the uplink instead of the
    /// deterministic tick loop. All send sites keep writing into the
    /// staging [`Network`]; [`Cluster::export_outbox`] moves the staged
    /// envelopes out. Parallel-runtime use only.
    pub fn set_uplink(&mut self, uplink: Uplink) {
        self.uplink = Some(uplink);
    }

    /// Detaches the uplink (returning the cluster to inline dispatch), for
    /// post-shutdown inspection of a parallel run's final state.
    pub fn clear_uplink(&mut self) {
        self.uplink = None;
    }

    /// Whether sends currently leave through a transport uplink.
    pub fn has_uplink(&self) -> bool {
        self.uplink.is_some()
    }

    /// Drains every staged envelope out of the simulated network and hands
    /// it to the uplink. No-op without an uplink. The staging network is
    /// configured lossless in parallel mode, so the tick here only rolls
    /// messages to their due time — nothing is dropped or reordered beyond
    /// per-link FIFO.
    pub fn export_outbox(&mut self) {
        let Some(uplink) = self.uplink.clone() else {
            return;
        };
        while self.net.in_flight() > 0 {
            for env in self.net.tick() {
                uplink(env);
            }
        }
    }

    /// Applies one transport-delivered envelope under the caller's
    /// protocol lock, then exports whatever the dispatch itself sent. This
    /// is the per-node driver's entry point in parallel mode; an envelope
    /// is either fully applied (including its cascading sends reaching the
    /// transport) or — if the dispatch errors — not applied at all past
    /// the error point, with the error surfaced to the driver.
    pub fn deliver(&mut self, env: Envelope<ClusterMsg>) -> Result<()> {
        // Apply under the envelope's profiler flow: cascading sends the
        // dispatch stages (a grant answering this request) inherit it,
        // and an *unstamped* envelope (span 0) clears whatever flow the
        // calling thread saw last rather than mis-attributing to it.
        let _flow = profile::flow_scope(env.span);
        let r = self.dispatch(env);
        self.export_outbox();
        r
    }

    /// Advances the cluster's background clock by `ticks`: each tick
    /// delivers due messages, accounts fault transitions (partition heals,
    /// crash/restarts), and polls the retry daemon. This — not
    /// [`Cluster::pump`] — drives chaos runs, where time must pass for
    /// partitions to heal and backoff timers to fire.
    pub fn step(&mut self, ticks: u64) -> Result<()> {
        if self.uplink.is_some() {
            self.export_outbox();
            return Ok(());
        }
        for _ in 0..ticks {
            let due = self.net.tick();
            for env in due {
                self.dispatch(env)?;
            }
            self.note_fault_events()?;
            self.poll_retries()?;
        }
        Ok(())
    }

    /// Steps until the network is idle and no retried report is outstanding,
    /// or `max_ticks` elapse. Returns the number of ticks consumed.
    pub fn settle(&mut self, max_ticks: u64) -> Result<u64> {
        let mut used = 0;
        while used < max_ticks {
            // `map_or(true, ..)` rather than `is_none_or`: MSRV is 1.75.
            #[allow(clippy::unnecessary_map_or)]
            let quiet =
                self.net.in_flight() == 0 && self.retry.as_ref().map_or(true, |d| d.pending() == 0);
            if quiet {
                break;
            }
            self.step(1)?;
            used += 1;
        }
        Ok(used)
    }

    /// Reports still tracked by the retry daemon (0 when disabled).
    pub fn retries_pending(&self) -> usize {
        self.retry.as_ref().map_or(0, RetryDaemon::pending)
    }

    /// Turns fault transitions observed by the network into per-node
    /// counters, pulls retry timers forward for restarted nodes, wipes the
    /// volatile state of amnesia-crashed nodes, and launches the recovery
    /// pipeline when they restart.
    fn note_fault_events(&mut self) -> Result<()> {
        let now = self.net.now();
        let mut recovering = Vec::new();
        for ev in self.net.drain_fault_events() {
            match ev {
                FaultEvent::PartitionHealed { members } => {
                    for n in members {
                        if let Some(s) = self.stats.get_mut(n.0 as usize) {
                            s.bump(StatKind::PartitionsHealed);
                        }
                    }
                }
                FaultEvent::NodeCrashed { node, amnesia } => {
                    if amnesia {
                        self.amnesia_wipe(node);
                    }
                }
                FaultEvent::NodeRestarted { node, amnesia } => {
                    if let Some(s) = self.stats.get_mut(node.0 as usize) {
                        s.bump(StatKind::NodeRestarts);
                    }
                    if let Some(d) = &mut self.retry {
                        d.hasten(node, now);
                    }
                    if amnesia {
                        recovering.push(node);
                    }
                }
            }
        }
        for node in recovering {
            self.begin_recovery(node)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Crash-amnesia recovery.
    // ------------------------------------------------------------------

    /// Discards every piece of `node`'s volatile state at the instant of an
    /// amnesia crash: memory image, object directory, scion/stub tables and
    /// cleaner epochs, DSM token/ownership caches, incremental-collection
    /// state, retry timers, and duplicate-tracking sequence numbers. The
    /// network itself drops the node's reliable in-flight traffic
    /// ([`bmx_net::FaultStats::amnesia_dropped`]). Per-node counters
    /// survive on purpose — they model the experimenter's instrumentation,
    /// not node state, and `NodeStats::since` requires monotonicity.
    fn amnesia_wipe(&mut self, node: NodeId) {
        let n = node.0 as usize;
        self.mems[n] = NodeMemory::new(node);
        self.gc.nodes[n] = bmx_gc::GcNodeState::new(node);
        self.engine.amnesia_reset(node);
        self.incrementals[n] = None;
        self.recoveries[n] = None;
        if let Some(d) = &mut self.retry {
            d.forget_origin(node);
        }
        self.last_seq.retain(|&(s, d), _| s != node && d != node);
        // The node no longer maps anything; recovery (or a fresh map_bunch)
        // re-registers the mappings it regains.
        for nodes in self.gc.mappings.values_mut() {
            nodes.remove(&node);
        }
        self.stats[n].bump(StatKind::AmnesiaWipes);
    }

    /// Opens (lazily) the node's RVM store under the configured directory.
    fn open_rvm(&mut self, node: NodeId) -> Result<()> {
        let n = node.0 as usize;
        if self.rvms[n].is_some() {
            return Ok(());
        }
        let Some(cfg) = &self.persist else {
            return Ok(());
        };
        let dir = cfg.dir.join(format!("node{}", node.0));
        self.rvms[n] = Some(Rvm::open(&dir, RvmOptions::default())?);
        Ok(())
    }

    /// Whether `node` is mid crash-amnesia recovery (restarted, rejoin
    /// handshake not yet complete). While true, its mutator operations fail
    /// and non-idempotent traffic addressed to it is dropped.
    pub fn in_recovery(&self, node: NodeId) -> bool {
        self.recoveries[node.0 as usize].is_some()
    }

    /// Crash-amnesia restart driven from *outside* the simulated fault
    /// plane: wipes the node's volatile state and launches the recovery
    /// pipeline, exactly as a [`bmx_net::FaultEvent`] crash/restart pair
    /// would. The parallel runtime's supervisor calls this (under the
    /// protocol lock) to revive a node whose driver crashed; staged
    /// `Rejoin` requests are exported through the uplink immediately, so
    /// surviving drivers can answer them.
    pub fn restart_with_amnesia(&mut self, node: NodeId) -> Result<()> {
        // A crash *during* recovery simply starts over: the wipe clears the
        // partial recovery and the epoch bump makes stale replies inert.
        self.amnesia_wipe(node);
        if let Some(s) = self.stats.get_mut(node.0 as usize) {
            s.bump(StatKind::NodeRestarts);
        }
        self.begin_recovery(node)?;
        self.export_outbox();
        Ok(())
    }

    /// Launches the recovery pipeline of an amnesia-restarted node:
    /// stage 1 (RVM replay) synchronously, then stage 2 (the epoch-based
    /// rejoin handshake, [`crate::recovery`]) by broadcasting the
    /// `Request`. Stage 3 (scion/stub regeneration) happens in
    /// [`Cluster::finish_recovery`] when the last `Reply` arrives. With no
    /// reachable peer the node claims everything it recovered and
    /// completes immediately (the single-node scenario of experiment E9).
    fn begin_recovery(&mut self, node: NodeId) -> Result<()> {
        let n = node.0 as usize;
        self.rejoin_epochs[n] += 1;
        let started_at = self.net.now();
        let replay_span = profile::span(SpanKind::RecoveryReplay, node);
        let replay_start = std::time::Instant::now();
        let mut recovered: Vec<(Oid, BunchId)> = Vec::new();
        if self.persist.is_some() {
            self.open_rvm(node)?;
            if let Some(mut rvm) = self.rvms[n].take() {
                let replay = persist::recover_node_meta(node, &mut rvm).and_then(|meta| {
                    let Some(meta) = meta else { return Ok(()) };
                    self.next_oid[n] = self.next_oid[n].max(meta.next_oid);
                    self.rejoin_epochs[n] = self.rejoin_epochs[n].max(meta.rejoin_epoch + 1);
                    for &bunch in &meta.bunches {
                        let (_, oids) = persist::recover_bunch_live(self, node, bunch, &mut rvm)?;
                        recovered.extend(oids.into_iter().map(|o| (o, bunch)));
                    }
                    // Roots go back only after the objects they name exist.
                    for addr in meta.roots {
                        self.gc.node_mut(node).add_root(addr);
                    }
                    Ok(())
                });
                self.rvms[n] = Some(rvm);
                replay?;
            }
        }
        let epoch = self.rejoin_epochs[n];
        drop(replay_span);
        let replay_micros = replay_start.elapsed().as_micros() as u64;
        metrics::add(node, Ctr::RecoveryReplayMicros, replay_micros);
        trace::emit(node, TraceEvent::RecoveryBegin { epoch });
        let peers: BTreeSet<NodeId> = (0..self.nodes())
            .map(NodeId)
            .filter(|&p| p != node && !self.net.is_down(p))
            .collect();
        if peers.is_empty() {
            for &(oid, bunch) in &recovered {
                self.engine.rejoin_claim_owner(node, oid, bunch, &[], &[]);
            }
            trace::emit(node, TraceEvent::RecoveryComplete { epoch });
            self.stats[n].bump(StatKind::RecoveriesCompleted);
            metrics::add(node, Ctr::RecoveryTotalMicros, replay_micros);
            self.recovery_log.push(RecoveryOutcome {
                node,
                epoch,
                restart_tick: started_at,
                complete_tick: self.net.now(),
                replay_micros,
                objects_recovered: recovered.len(),
                orphans_adopted: 0,
                reports_applied: 0,
            });
            return Ok(());
        }
        for &p in &peers {
            self.stats[n].bump(StatKind::MessagesSent);
            self.net.send(
                node,
                p,
                MsgClass::Dsm,
                ClusterMsg::Rejoin(RejoinMsg::Request {
                    epoch,
                    recovered: recovered.clone(),
                }),
            );
        }
        self.recoveries[n] = Some(Recovery {
            epoch,
            recovered,
            awaiting: peers,
            started_at,
            replay_micros,
            views: BTreeMap::new(),
            orphans: BTreeMap::new(),
            epoch_floor: BTreeMap::new(),
            reports: Vec::new(),
            deferred: Vec::new(),
        });
        Ok(())
    }

    fn dispatch_rejoin(&mut self, src: NodeId, dst: NodeId, msg: RejoinMsg) -> Result<()> {
        match msg {
            RejoinMsg::Request { epoch, recovered } => {
                self.handle_rejoin_request(src, dst, epoch, recovered)
            }
            RejoinMsg::Reply {
                epoch,
                from,
                views,
                orphans,
                epochs,
                reports,
            } => self.handle_rejoin_reply(dst, epoch, from, views, orphans, epochs, reports),
            RejoinMsg::Assign { assignments, .. } => {
                for a in assignments {
                    if a.owner == dst {
                        self.engine
                            .rejoin_adopt_owner(dst, a.oid, &a.replicas, &a.readers);
                    } else {
                        self.engine.set_owner_hint(dst, a.oid, a.owner);
                    }
                }
                Ok(())
            }
        }
    }

    /// A surviving peer answers a rejoin `Request` from `src`: purge every
    /// piece of protocol state that waits on the crashed incarnation, then
    /// reply with views, orphans, epoch floors, and fresh reports.
    fn handle_rejoin_request(
        &mut self,
        src: NodeId,
        dst: NodeId,
        epoch: u64,
        recovered: Vec<(Oid, BunchId)>,
    ) -> Result<()> {
        {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.purge_peer(dst, src, &mut sh, &mut send)?;
        }
        let recovered_set: BTreeSet<Oid> = recovered.iter().map(|&(o, _)| o).collect();
        let views: Vec<ObjView> = recovered
            .iter()
            .map(|&(oid, _)| match self.engine.obj_state(dst, oid) {
                Some(st) => ObjView {
                    oid,
                    holds_replica: true,
                    is_owner: st.is_owner,
                    has_token: st.token != Token::None,
                    owner_hint: st.owner_hint,
                },
                None => ObjView {
                    oid,
                    holds_replica: false,
                    is_owner: false,
                    has_token: false,
                    owner_hint: dst,
                },
            })
            .collect();
        let orphans: Vec<OrphanView> = self
            .engine
            .replicas(dst)
            .into_iter()
            .filter(|(oid, st)| {
                !st.is_owner && st.owner_hint == src && !recovered_set.contains(oid)
            })
            .map(|(oid, st)| OrphanView {
                oid,
                bunch: st.bunch,
                has_token: st.token != Token::None,
            })
            .collect();
        let epochs: Vec<(BunchId, u64)> = self
            .gc
            .node(dst)
            .cleaner_epochs
            .iter()
            .filter(|((from, _), _)| *from == src)
            .map(|((_, b), e)| (*b, e.0))
            .collect();
        let bunches: Vec<BunchId> = self.gc.node(dst).bunches.keys().copied().collect();
        let mut reports = Vec::new();
        for b in bunches {
            if let Ok(r) = self.build_report(dst, b) {
                reports.push(r);
            }
        }
        self.stats[dst.0 as usize].bump(StatKind::MessagesSent);
        self.net.send(
            dst,
            src,
            MsgClass::Dsm,
            ClusterMsg::Rejoin(RejoinMsg::Reply {
                epoch,
                from: dst,
                views,
                orphans,
                epochs,
                reports,
            }),
        );
        Ok(())
    }

    /// The recovering node accumulates a peer's `Reply`; the last one
    /// triggers [`Cluster::finish_recovery`].
    #[allow(clippy::too_many_arguments)]
    fn handle_rejoin_reply(
        &mut self,
        dst: NodeId,
        epoch: u64,
        from: NodeId,
        views: Vec<ObjView>,
        orphans: Vec<OrphanView>,
        epochs: Vec<(BunchId, u64)>,
        reports: Vec<bmx_gc::ReachabilityReport>,
    ) -> Result<()> {
        let n = dst.0 as usize;
        let complete = {
            let Some(rec) = self.recoveries[n].as_mut() else {
                return Ok(()); // A stale reply from an earlier epoch.
            };
            if rec.epoch != epoch {
                return Ok(());
            }
            for v in views {
                rec.views.entry(v.oid).or_default().push((from, v));
            }
            for o in orphans {
                rec.orphans
                    .entry(o.oid)
                    .or_insert((o.bunch, Vec::new()))
                    .1
                    .push((from, o.has_token));
            }
            for (b, e) in epochs {
                let f = rec.epoch_floor.entry(b).or_insert(0);
                *f = (*f).max(e);
            }
            rec.reports.extend(reports);
            rec.awaiting.remove(&from);
            rec.awaiting.is_empty()
        };
        if complete {
            self.finish_recovery(dst)?;
        }
        Ok(())
    }

    /// Stages 2 (conclusion) and 3 of the pipeline, run when the last peer
    /// `Reply` arrives: reconcile ownership without moving any token a
    /// survivor holds, re-home orphans, regenerate scions from the
    /// collected reports, and resume collection epochs above the
    /// cluster-wide floor.
    fn finish_recovery(&mut self, node: NodeId) -> Result<()> {
        let n = node.0 as usize;
        let Some(rec) = self.recoveries[n].take() else {
            return Ok(());
        };
        let finish_start = metrics::enabled().then(std::time::Instant::now);
        let mut assignments: Vec<Assignment> = Vec::new();
        let no_views: Vec<(NodeId, ObjView)> = Vec::new();
        for &(oid, bunch) in &rec.recovered {
            let views = rec.views.get(&oid).unwrap_or(&no_views);
            if let Some(&(owner, _)) = views.iter().find(|(_, v)| v.is_owner) {
                // A survivor owns the object (it took the token over before
                // the crash): the recovered image is just a stale replica.
                // Demotion cannot violate the Section-5 acquire invariants —
                // no token moves, and the next acquire synchronizes.
                let Cluster {
                    engine,
                    gc,
                    mems,
                    stats,
                    net,
                    ..
                } = self;
                let mut sh = DsmShared { mems, stats, gc };
                let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                    net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
                };
                engine.register_mapped_replica(node, oid, bunch, owner, &mut sh, &mut send);
            } else {
                let holders: Vec<NodeId> = views
                    .iter()
                    .filter(|(_, v)| v.holds_replica)
                    .map(|&(p, _)| p)
                    .collect();
                let readers: Vec<NodeId> = views
                    .iter()
                    .filter(|(_, v)| v.holds_replica && v.has_token)
                    .map(|&(p, _)| p)
                    .collect();
                self.engine
                    .rejoin_claim_owner(node, oid, bunch, &holders, &readers);
                assignments.push(Assignment {
                    oid,
                    bunch,
                    owner: node,
                    replicas: holders,
                    readers,
                });
            }
        }
        // Orphans: the authoritative copy died with the crash; re-home each
        // to a surviving holder, preferring one whose token makes its copy
        // current, then the lowest id for determinism.
        let mut orphans_adopted = 0usize;
        for (&oid, (bunch, holders)) in &rec.orphans {
            let assignee = holders
                .iter()
                .filter(|&&(_, tok)| tok)
                .map(|&(p, _)| p)
                .min()
                .or_else(|| holders.iter().map(|&(p, _)| p).min());
            let Some(owner) = assignee else { continue };
            assignments.push(Assignment {
                oid,
                bunch: *bunch,
                owner,
                replicas: holders
                    .iter()
                    .map(|&(p, _)| p)
                    .filter(|&p| p != owner)
                    .collect(),
                readers: holders
                    .iter()
                    .filter(|&&(_, tok)| tok)
                    .map(|&(p, _)| p)
                    .filter(|&p| p != owner)
                    .collect(),
            });
            orphans_adopted += 1;
            self.stats[n].bump(StatKind::RejoinOrphansAdopted);
        }
        if !assignments.is_empty() {
            for p in (0..self.nodes()).map(NodeId) {
                if p == node || self.net.is_down(p) {
                    continue;
                }
                self.stats[n].bump(StatKind::MessagesSent);
                self.net.send(
                    node,
                    p,
                    MsgClass::Dsm,
                    ClusterMsg::Rejoin(RejoinMsg::Assign {
                        epoch: rec.epoch,
                        assignments: assignments.clone(),
                    }),
                );
            }
        }
        // Stage 3: scion/stub regeneration through the ordinary idempotent
        // cleaner — the wiped node has no cleaner epochs, so every report
        // applies fresh and recreates the scions sited here.
        let mut reports_applied = 0usize;
        for report in &rec.reports {
            let outcome = cleaner::process_report(
                &mut self.gc,
                &mut self.engine,
                &mut self.stats[n],
                node,
                report,
            );
            if outcome.applied {
                reports_applied += 1;
            }
        }
        // Epoch rule: resume each bunch's collection epoch at the maximum
        // any surviving peer had applied from this node, so the next report
        // published here is strictly newer than anything pre-crash (the
        // peers' `>=` staleness gate would silently discard it otherwise).
        for (&bunch, &floor) in &rec.epoch_floor {
            if !self.gc.node(node).bunches.contains_key(&bunch) {
                continue;
            }
            let brs = self.gc.node_mut(node).bunch_or_default(bunch);
            if brs.epoch.0 < floor {
                brs.epoch = Epoch(floor);
            }
            trace::emit(
                node,
                TraceEvent::RejoinEpoch {
                    bunch,
                    epoch: Epoch(floor),
                },
            );
        }
        trace::emit(node, TraceEvent::RecoveryComplete { epoch: rec.epoch });
        self.stats[n].bump(StatKind::RecoveriesCompleted);
        if let Some(start) = finish_start {
            metrics::add(
                node,
                Ctr::RecoveryTotalMicros,
                rec.replay_micros + start.elapsed().as_micros() as u64,
            );
        }
        self.recovery_log.push(RecoveryOutcome {
            node,
            epoch: rec.epoch,
            restart_tick: rec.started_at,
            complete_tick: self.net.now(),
            replay_micros: rec.replay_micros,
            objects_recovered: rec.recovered.len(),
            orphans_adopted,
            reports_applied,
        });
        // Serve the token requests that landed mid-recovery, on reconciled
        // ownership state (a stale requester hint just forwards normally).
        for (src, msg) in rec.deferred {
            self.dispatch_dsm(src, node, DsmPacket::single(msg))?;
        }
        Ok(())
    }

    /// Fires every retry due now: rebuilds the bunch's *current* report
    /// (idempotent, so resending a newer one than originally tracked is
    /// safe — it subsumes the lost table) and re-sends it to the pending
    /// destinations.
    fn poll_retries(&mut self) -> Result<()> {
        let now = self.net.now();
        let (resends, exhausted) = match &mut self.retry {
            Some(d) => d.due(now),
            None => return Ok(()),
        };
        for r in &exhausted {
            self.stats[r.node.0 as usize].bump(StatKind::RetryBudgetExhausted);
        }
        for r in resends {
            // The bunch can vanish between tracking and firing (from-space
            // reuse); the entry then exhausts its budget harmlessly.
            let Ok(report) = self.build_report(r.node, r.bunch) else {
                continue;
            };
            for d in r.dests {
                self.stats[r.node.0 as usize].bump(StatKind::StubTableMessages);
                self.stats[r.node.0 as usize].bump(StatKind::RetryResends);
                trace::emit(
                    r.node,
                    TraceEvent::ReportRetry {
                        bunch: r.bunch,
                        dest: d,
                    },
                );
                metrics::link(r.node, d, LinkCtr::Retry, 1);
                self.send_gc(r.node, d, GcMsg::Report(report.clone()));
            }
        }
        if metrics::enabled() {
            if let Some(d) = &self.retry {
                for i in 0..self.nodes() {
                    metrics::gauge_set(
                        NodeId(i),
                        Gge::RetryQueueDepth,
                        d.pending_for(NodeId(i)) as u64,
                    );
                }
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, env: Envelope<ClusterMsg>) -> Result<()> {
        let last = self.last_seq.entry((env.src, env.dst)).or_insert(0);
        if env.seq.0 <= *last {
            // A duplication fault: deliver anyway (the loss-tolerant
            // handlers are idempotent by design) but account it.
            self.stats[env.dst.0 as usize].bump(StatKind::DuplicateDeliveries);
        } else {
            *last = env.seq.0;
        }
        // A node mid-recovery has no protocol state to serve from. Rejoin
        // traffic always lands; reports and scion-creates are idempotent
        // and exactly what regeneration wants; token requests are deferred
        // and replayed at completion (the requester's `waiting_for` latch
        // is only cleared by a grant, and its one rejoin-purge reprieve is
        // already spent by the time a re-sent request can land here);
        // everything else is dropped as if lost — senders recover the way
        // they recover from loss (the retry daemon, lazy relocation).
        if self.recoveries[env.dst.0 as usize].is_some() {
            match &env.payload {
                ClusterMsg::Rejoin(_)
                | ClusterMsg::Gc(GcMsg::Report(_))
                | ClusterMsg::Gc(GcMsg::ScionCreate { .. }) => {}
                ClusterMsg::Dsm(pkt) => {
                    let src = env.src;
                    let rec = self.recoveries[env.dst.0 as usize].as_mut().unwrap();
                    for m in &pkt.msgs {
                        let (DsmMsg::ReadReq { .. } | DsmMsg::WriteReq { .. }) = m else {
                            continue;
                        };
                        if !rec.deferred.iter().any(|(_, d)| same_request(d, m)) {
                            rec.deferred.push((src, m.clone()));
                        }
                    }
                    return Ok(());
                }
                _ => return Ok(()),
            }
        }
        match env.payload {
            ClusterMsg::Dsm(pkt) => self.dispatch_dsm(env.src, env.dst, pkt),
            ClusterMsg::Gc(msg) => self.dispatch_gc(env.src, env.dst, msg),
            ClusterMsg::Rejoin(msg) => self.dispatch_rejoin(env.src, env.dst, msg),
        }
    }

    fn dispatch_dsm(&mut self, src: NodeId, dst: NodeId, pkt: DsmPacket) -> Result<()> {
        let Cluster {
            engine,
            gc,
            mems,
            stats,
            net,
            ..
        } = self;
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
            net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
        };
        engine.handle(src, dst, pkt, &mut sh, &mut send)?;
        // `emit` inside the engine counts DsmProtocolMessages; mirror the
        // transport-level count here.
        Ok(())
    }

    fn dispatch_gc(&mut self, _src: NodeId, dst: NodeId, msg: GcMsg) -> Result<()> {
        match msg {
            GcMsg::ScionCreate { scion } => {
                barrier::install_scion(&mut self.gc, dst, scion);
                Ok(())
            }
            GcMsg::Report(report) => {
                let outcome = cleaner::process_report(
                    &mut self.gc,
                    &mut self.engine,
                    &mut self.stats[dst.0 as usize],
                    dst,
                    &report,
                );
                if outcome.applied {
                    self.ack_report(&report, dst);
                }
                Ok(())
            }
            GcMsg::AddressChange {
                bunch: _,
                relocations,
            } => {
                let Cluster { gc, mems, .. } = self;
                bmx_gc::integration::apply_relocations_at(gc, dst, &relocations, mems);
                Ok(())
            }
            GcMsg::Retire {
                bunch,
                segments,
                relocations,
                reply_to,
            } => {
                let msgs = {
                    let Cluster {
                        engine,
                        gc,
                        mems,
                        stats,
                        ..
                    } = self;
                    fromspace::handle_retire(
                        gc,
                        engine,
                        mems,
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &segments,
                        &relocations,
                        reply_to,
                    )?
                };
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
            GcMsg::RetireAck { bunch, from } => {
                let Cluster {
                    engine,
                    gc,
                    mems,
                    stats,
                    ..
                } = self;
                fromspace::handle_retire_ack(
                    gc,
                    engine,
                    &mut mems[dst.0 as usize],
                    &mut stats[dst.0 as usize],
                    dst,
                    bunch,
                    from,
                )?;
                Ok(())
            }
            GcMsg::CopyRequest {
                bunch,
                oids,
                avoid,
                reply_to,
            } => {
                let msgs = {
                    let Cluster {
                        engine,
                        gc,
                        mems,
                        stats,
                        ..
                    } = self;
                    fromspace::handle_copy_request(
                        gc,
                        engine,
                        &mut mems[dst.0 as usize],
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &oids,
                        &avoid,
                        reply_to,
                    )?
                };
                // The owner's fresh relocations must reach the requester and
                // all other replica holders lazily too; the copy reply
                // carries them to the requester directly.
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
            GcMsg::CopyReply {
                bunch,
                relocations,
                from: _,
            } => {
                let msgs = {
                    let Cluster {
                        engine,
                        gc,
                        mems,
                        stats,
                        ..
                    } = self;
                    fromspace::handle_copy_reply(
                        gc,
                        engine,
                        mems,
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &relocations,
                    )?
                };
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
        }
        .map(|_: ()| ())
    }

    // ------------------------------------------------------------------
    // Bunches.
    // ------------------------------------------------------------------

    /// Creates a bunch at `node` with one initial segment, mapped locally.
    pub fn create_bunch(&mut self, node: NodeId) -> Result<BunchId> {
        self.create_bunch_with(node, Protection::default())
    }

    /// Creates a bunch with explicit protection attributes (paper, §2.1:
    /// "protection attributes like the usual Unix read, write, and execute
    /// permissions"). The mutator API enforces them; the collector is
    /// exempt (its writes are system bookkeeping, not application access).
    pub fn create_bunch_with(&mut self, node: NodeId, protection: Protection) -> Result<BunchId> {
        let (bunch, seg) = {
            let mut srv = self.server.borrow_mut();
            let b = srv.create_bunch(node, protection);
            let s = srv.alloc_segment(b)?;
            (b, s)
        };
        self.mems[node.0 as usize].map_segment(seg);
        self.gc.note_mapping(bunch, node);
        let brs = self.gc.node_mut(node).bunch_or_default(bunch);
        brs.alloc_segments.push(seg.id);
        Ok(bunch)
    }

    /// Maps a replica of `bunch` at `node`, copying the current images from
    /// `from` (which must have the bunch mapped). Registers the replicas
    /// with the DSM and the entering ownerPtrs with the owners.
    pub fn map_bunch(&mut self, node: NodeId, bunch: BunchId, from: NodeId) -> Result<()> {
        if self.gc.node(node).bunches.contains_key(&bunch) {
            return Ok(());
        }
        let seg_ids: Vec<_> = {
            let srv = self.server.borrow();
            srv.bunch(bunch)?
                .segments
                .iter()
                .copied()
                .filter(|&s| self.mems[from.0 as usize].has_segment(s))
                .collect()
        };
        if seg_ids.is_empty() {
            return Err(BmxError::BunchUnmapped { node: from, bunch });
        }
        // Ship the images (accounted as consistency traffic).
        let mut total_bytes = 0;
        for &sid in &seg_ids {
            let image = self.mems[from.0 as usize].image(sid)?;
            total_bytes += image.wire_size();
            image.install(&mut self.mems[node.0 as usize]);
        }
        self.stats[from.0 as usize].add(StatKind::MessagesSent, seg_ids.len() as u64);
        self.stats[from.0 as usize].add(StatKind::BytesSent, total_bytes);
        self.stats[from.0 as usize].add(StatKind::DsmProtocolMessages, seg_ids.len() as u64);
        self.stats[from.0 as usize].add(StatKind::DsmLogicalMessages, seg_ids.len() as u64);

        // Learn the objects: directory entries, forwarding edges, replica
        // registrations.
        let mut found: Vec<(Oid, Addr, Addr)> = Vec::new(); // (oid, addr, fwd)
        for &sid in &seg_ids {
            let seg = self.mems[node.0 as usize].segment(sid)?;
            for addr in object::objects_in(seg) {
                let v = object::view(&self.mems[node.0 as usize], addr)?;
                found.push((
                    v.oid,
                    addr,
                    if v.is_forwarded() {
                        v.forwarding
                    } else {
                        Addr::NULL
                    },
                ));
            }
        }
        // Mapping is a synchronous copy from `from` — no message carries a
        // Lamport stamp across it, so merge the source's clock by hand or
        // the address-update events below would appear to precede the
        // relocations they depend on.
        if trace::enabled() {
            trace::observe(node, trace::clock(from));
        }
        for (oid, addr, fwd) in &found {
            let dir = &mut self.gc.node_mut(node).directory;
            if fwd.is_null() {
                dir.set_addr(*oid, *addr);
            } else {
                // The image carries a forwarding header: the replica's
                // current copy is at the (resolved) forwarding target.
                let fresh = dir.record_move(*oid, *addr, *fwd);
                let cur = dir.resolve(*fwd);
                dir.set_addr(*oid, cur);
                if fresh {
                    trace::emit(
                        node,
                        TraceEvent::AddrUpdate {
                            oid: *oid,
                            from: *addr,
                            to: *fwd,
                        },
                    );
                }
            }
        }
        // Bunch-level GC state mirrors the source's space structure.
        let (alloc_segments, pending_from) = {
            let src = self.gc.node(from).bunch(bunch);
            match src {
                Some(b) => (b.alloc_segments.clone(), b.pending_from.clone()),
                None => (seg_ids.clone(), Vec::new()),
            }
        };
        let brs = self.gc.node_mut(node).bunch_or_default(bunch);
        brs.alloc_segments = alloc_segments;
        brs.pending_from = pending_from;
        self.gc.note_mapping(bunch, node);

        // DSM registration for every non-forwarded object replica.
        for (oid, _addr, fwd) in found {
            if !fwd.is_null() {
                continue;
            }
            let hint = match self.engine.obj_state(from, oid) {
                Some(st) if st.is_owner => from,
                Some(st) => st.owner_hint,
                None => from,
            };
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.register_mapped_replica(node, oid, bunch, hint, &mut sh, &mut send);
        }
        self.pump()
    }

    /// Which nodes currently have `bunch` mapped.
    pub fn mapped_nodes(&self, bunch: BunchId) -> Vec<NodeId> {
        self.gc.mapped_nodes(bunch)
    }

    // ------------------------------------------------------------------
    // Collector services.
    // ------------------------------------------------------------------

    /// Runs the bunch garbage collector on the local replica of `bunch` at
    /// `node`, publishing the reachability reports.
    pub fn run_bgc(&mut self, node: NodeId, bunch: BunchId) -> Result<CollectStats> {
        self.run_collection(node, &[bunch])
    }

    /// Runs the group garbage collector at `node` over every locally mapped
    /// bunch (the locality heuristic of Section 7).
    pub fn run_ggc(&mut self, node: NodeId) -> Result<CollectStats> {
        let group: Vec<BunchId> = self.gc.node(node).bunches.keys().copied().collect();
        self.run_collection(node, &group)
    }

    /// Runs the group collector under a grouping heuristic: each group the
    /// heuristic produces is collected in turn; returns aggregate stats.
    pub fn run_ggc_with(
        &mut self,
        node: NodeId,
        heuristic: bmx_gc::Heuristic,
    ) -> Result<CollectStats> {
        let groups = bmx_gc::grouping::groups(&self.gc, node, heuristic);
        debug_assert!(bmx_gc::grouping::is_partition(&self.gc, node, &groups));
        let mut total = CollectStats::default();
        for g in groups {
            let s = self.run_collection(node, &g)?;
            total.copied += s.copied;
            total.copied_words += s.copied_words;
            total.scanned += s.scanned;
            total.reclaimed += s.reclaimed;
            total.reclaimed_words += s.reclaimed_words;
            total.live += s.live;
        }
        Ok(total)
    }

    /// Runs a collection over an explicit group of bunches at `node`.
    pub fn run_collection(&mut self, node: NodeId, group: &[BunchId]) -> Result<CollectStats> {
        // A node mid-recovery defers collection: its scion tables are still
        // regenerating, so tracing now could miss remote justifications —
        // i.e. premature reclamation. The caller's next attempt (after the
        // handshake completes) collects normally.
        if self.recoveries[node.0 as usize].is_some() {
            return Ok(CollectStats::default());
        }
        if let Some(&b) = group
            .iter()
            .find(|b| self.gc.node(node).active_groups.contains(b))
        {
            return Err(BmxError::CollectorBusy { bunch: b });
        }
        let outcome = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            collect(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                group,
            )?
        };
        for oid in &outcome.dead {
            self.engine.drop_replica(node, *oid);
        }
        for (dests, report) in outcome.reports {
            // The local cleaner consumes the report too: scions for locally
            // mapped target bunches live on this very node.
            cleaner::process_report(
                &mut self.gc,
                &mut self.engine,
                &mut self.stats[node.0 as usize],
                node,
                &report,
            );
            self.track_report(node, &report, &dests);
            for dst in dests {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, dst, GcMsg::Report(report.clone()));
            }
        }
        self.flush_explicit_relocations();
        self.pump()?;
        self.checkpoint_after_collection(node, group)?;
        Ok(outcome.stats)
    }

    /// Periodic background checkpointing: after each BGC the collected
    /// bunches (now compact) are written to the node's RVM store together
    /// with the recovery manifest, and the redo log is truncated once it
    /// outgrows the configured bound (it has just been fully applied, so
    /// truncation cannot lose a committed state).
    fn checkpoint_after_collection(&mut self, node: NodeId, group: &[BunchId]) -> Result<()> {
        let n = node.0 as usize;
        if self.persist.is_none() || self.recoveries[n].is_some() {
            return Ok(());
        }
        self.open_rvm(node)?;
        let Some(mut rvm) = self.rvms[n].take() else {
            return Ok(());
        };
        let res = (|| -> Result<()> {
            // The manifest accumulates every bunch ever checkpointed here.
            let prev = persist::recover_node_meta(node, &mut rvm)?.unwrap_or_default();
            let mut bunches: BTreeSet<BunchId> = prev.bunches.iter().copied().collect();
            let mut wrote = false;
            for &bunch in group {
                // An unmapped (e.g. fully reused) bunch is not
                // checkpointable; skip it rather than fail the collection.
                if persist::checkpoint_bunch(self, node, bunch, &mut rvm).is_ok() {
                    bunches.insert(bunch);
                    wrote = true;
                }
            }
            if wrote {
                let meta = NodeMeta {
                    next_oid: self.next_oid[n],
                    rejoin_epoch: self.rejoin_epochs[n],
                    roots: self.gc.node(node).roots.values().copied().collect(),
                    bunches: bunches.into_iter().collect(),
                };
                persist::checkpoint_node_meta(self, node, &mut rvm, &meta)?;
            }
            if let Some(bound) = self.persist.as_ref().and_then(|p| p.truncate_log_bytes) {
                if rvm.log_bytes() > bound {
                    rvm.truncate()?;
                }
            }
            Ok(())
        })();
        self.rvms[n] = Some(rvm);
        res
    }

    /// Registers a freshly published report with the retry daemon.
    fn track_report(
        &mut self,
        node: NodeId,
        report: &bmx_gc::ReachabilityReport,
        dests: &[NodeId],
    ) {
        let now = self.net.now();
        if let Some(d) = &mut self.retry {
            d.track(node, report.bunch, report.epoch, dests, now);
        }
    }

    /// Feeds an applied report delivery back to the retry daemon, crediting
    /// recovery latency when the daemon had to resend.
    fn ack_report(&mut self, report: &bmx_gc::ReachabilityReport, dst: NodeId) {
        let now = self.net.now();
        let Some(d) = &mut self.retry else { return };
        if let AckOutcome::Complete {
            recovery_latency,
            lag,
        } = d.ack(report.from, report.bunch, report.epoch, dst, now)
        {
            metrics::observe(report.from, Hst::ReportRetireLagTicks, lag);
            if let Some(lat) = recovery_latency {
                self.stats[report.from.0 as usize].add(StatKind::RecoveryLatencyTicks, lat);
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental collection (O'Toole-style, experiment E4b).
    // ------------------------------------------------------------------

    /// Starts an incremental collection of `group` at `node`: snapshots
    /// the roots and arms the graying write barrier. Mutator work may
    /// proceed between [`Cluster::incremental_step`] calls.
    pub fn start_incremental(&mut self, node: NodeId, group: &[BunchId]) -> Result<()> {
        if self.incrementals[node.0 as usize].is_some() {
            return Err(BmxError::CollectorBusy {
                bunch: group.first().copied().unwrap_or(BunchId(0)),
            });
        }
        let inc = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            bmx_gc::IncrementalBgc::start(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                group,
            )?
        };
        self.incrementals[node.0 as usize] = Some(inc);
        Ok(())
    }

    /// Performs up to `budget` objects' worth of collection work at `node`.
    /// Returns `true` when the collection is ready to flip.
    pub fn incremental_step(&mut self, node: NodeId, budget: usize) -> Result<bool> {
        let mut inc = self.incrementals[node.0 as usize]
            .take()
            .ok_or(BmxError::Protocol(
                "no incremental collection active".into(),
            ))?;
        let ready = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            inc.step(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                budget,
            )?
        };
        self.incrementals[node.0 as usize] = Some(inc);
        Ok(ready)
    }

    /// Flips the incremental collection at `node`: the only mutator-visible
    /// pause. Publishes reports like a normal collection.
    pub fn incremental_flip(&mut self, node: NodeId) -> Result<CollectStats> {
        let inc = self.incrementals[node.0 as usize]
            .take()
            .ok_or(BmxError::Protocol(
                "no incremental collection active".into(),
            ))?;
        let outcome = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            inc.flip(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
            )?
        };
        for oid in &outcome.dead {
            self.engine.drop_replica(node, *oid);
        }
        for (dests, report) in outcome.reports {
            cleaner::process_report(
                &mut self.gc,
                &mut self.engine,
                &mut self.stats[node.0 as usize],
                node,
                &report,
            );
            self.track_report(node, &report, &dests);
            for dst in dests {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, dst, GcMsg::Report(report.clone()));
            }
        }
        self.flush_explicit_relocations();
        self.pump()?;
        Ok(outcome.stats)
    }

    /// Whether an incremental collection is active at `node`.
    pub fn incremental_active(&self, node: NodeId) -> bool {
        self.incrementals[node.0 as usize].is_some()
    }

    /// Re-sends the current reachability report of `bunch` at `node` to the
    /// given destinations — the recovery action for lost stub-table
    /// messages (they are idempotent, Section 6.1). This is the *manual*
    /// recovery path kept for targeted tests; with [`ClusterConfig::retry`]
    /// enabled the retry daemon performs the same recovery automatically
    /// under [`Cluster::step`].
    pub fn resend_report(&mut self, node: NodeId, bunch: BunchId, dests: &[NodeId]) -> Result<()> {
        let report = self.build_report(node, bunch)?;
        for &d in dests {
            if d != node {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, d, GcMsg::Report(report.clone()));
            }
        }
        self.pump()
    }

    /// Builds the current reachability report of `bunch` at `node` (same
    /// content a re-send would carry).
    pub fn build_report(
        &mut self,
        node: NodeId,
        bunch: BunchId,
    ) -> Result<bmx_gc::ReachabilityReport> {
        let brs = self
            .gc
            .node(node)
            .bunch(bunch)
            .ok_or(BmxError::BunchUnmapped { node, bunch })?;
        let exiting: Vec<(Oid, NodeId)> = self
            .engine
            .exiting_owner_ptrs(node, bunch)
            .into_iter()
            .collect();
        Ok(bmx_gc::ReachabilityReport {
            from: node,
            bunch,
            epoch: brs.epoch,
            inter_stubs: brs.stub_table.inter().to_vec(),
            intra_stubs: brs.stub_table.intra().to_vec(),
            exiting,
        })
    }

    /// In [`RelocMode::Explicit`], transmits queued relocation records as
    /// their own background messages (the ablation of experiment E3).
    pub fn flush_explicit_relocations(&mut self) {
        let queued = std::mem::take(&mut self.gc.explicit_queue);
        for (src, dst, relocs) in queued {
            self.stats[src.0 as usize].bump(StatKind::ExplicitRelocationMessages);
            self.send_gc(
                src,
                dst,
                GcMsg::AddressChange {
                    bunch: BunchId(0),
                    relocations: relocs,
                },
            );
        }
    }

    /// Starts the from-space reuse protocol for `bunch` at `node` and runs
    /// it to completion. Returns `true` if the segments were reclaimed.
    pub fn reuse_from_space(&mut self, node: NodeId, bunch: BunchId) -> Result<bool> {
        let msgs = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            fromspace::start_reuse(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                bunch,
            )?
        };
        for (dst, m) in msgs {
            self.send_gc(node, dst, m);
        }
        self.pump()?;
        Ok(self
            .gc
            .node(node)
            .bunch(bunch)
            .is_some_and(|b| b.reuse.is_none()))
    }

    // ------------------------------------------------------------------
    // Introspection for experiments and tests.
    // ------------------------------------------------------------------

    /// Sum of a counter across all nodes.
    pub fn total_stat(&self, kind: StatKind) -> u64 {
        self.stats.iter().map(|s| s.get(kind)).sum()
    }

    /// The set of addresses reachable from `node`'s mutator roots (through
    /// local forwarding), for graph verification in tests.
    pub fn reachable_from_roots(&self, node: NodeId) -> BTreeSet<Addr> {
        let ns = self.gc.node(node);
        let mem = &self.mems[node.0 as usize];
        let mut seen = BTreeSet::new();
        let mut stack: Vec<Addr> = ns.roots.values().copied().collect();
        while let Some(a) = stack.pop() {
            if a.is_null() {
                continue;
            }
            let a = ns.directory.resolve(a);
            if !seen.insert(a) {
                continue;
            }
            let Ok(fields) = object::ref_fields(mem, a) else {
                continue;
            };
            for (_, t) in fields {
                stack.push(t);
            }
        }
        seen
    }

    /// Asserts the structural invariant that the collector never acquired a
    /// token on any node.
    pub fn assert_gc_acquired_no_tokens(&self) {
        for (i, s) in self.stats.iter().enumerate() {
            assert_eq!(
                s.get(StatKind::GcTokenAcquires),
                0,
                "collector acquired a token on node N{i}"
            );
        }
    }

    /// Current token at `node` for the object at `addr`.
    pub fn token_at(&self, node: NodeId, addr: Addr) -> Result<Token> {
        let oid = self.oid_at_local(node, addr)?;
        Ok(self.engine.token(node, oid))
    }

    /// Local-only address-to-OID resolution (header read through local
    /// forwarding).
    pub fn oid_at_local(&self, node: NodeId, addr: Addr) -> Result<Oid> {
        let cur = self.mutator_resolve(node, addr);
        Ok(object::view(&self.mems[node.0 as usize], cur)?.oid)
    }
}
