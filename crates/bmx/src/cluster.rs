//! The deterministic cluster driver.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use bmx_addr::object;
use bmx_addr::server::Protection;
use bmx_addr::{NodeMemory, SegmentServer};
use bmx_common::{Addr, BmxError, BunchId, NodeId, NodeStats, Oid, Result, StatKind};
use bmx_dsm::{DsmEngine, DsmPacket, DsmShared, Token};
use bmx_gc::{barrier, cleaner, collect, fromspace, CollectStats, GcMsg, GcState, RelocMode};
use bmx_net::{Envelope, FaultEvent, MsgClass, Network, NetworkConfig};
use bmx_trace::{self as trace, TraceEvent};

use crate::msg::ClusterMsg;
use crate::retry::{AckOutcome, RetryDaemon, RetryPolicy};

/// Construction parameters for a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: u32,
    /// Constant segment size, in 8-byte words.
    pub segment_words: u64,
    /// Network behaviour (latency, loss injection, chaos fault plan).
    pub net: NetworkConfig,
    /// How relocation records propagate (experiment E3 knob).
    pub reloc_mode: RelocMode,
    /// Automatic report-retry daemon, driven by [`Cluster::step`]. `None`
    /// restores the seed behaviour (manual [`Cluster::resend_report`] only).
    pub retry: Option<RetryPolicy>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            segment_words: 4096,
            net: NetworkConfig::lossless(1),
            reloc_mode: RelocMode::Piggyback,
            retry: Some(RetryPolicy::default()),
        }
    }
}

impl ClusterConfig {
    /// A config with `n` nodes and defaults otherwise.
    pub fn with_nodes(n: u32) -> Self {
        ClusterConfig {
            nodes: n,
            ..Default::default()
        }
    }
}

/// The simulated BMX cluster.
pub struct Cluster {
    /// The shared segment server (BMX-server role).
    pub server: bmx_gc::SharedServer,
    /// The entry-consistency protocol engine.
    pub engine: DsmEngine,
    /// The collector state (also the DSM's `GcIntegration`).
    pub gc: GcState,
    /// Per-node memories.
    pub mems: Vec<NodeMemory>,
    /// Per-node counters.
    pub stats: Vec<NodeStats>,
    /// The simulated network.
    pub net: Network<ClusterMsg>,
    next_oid: Vec<u64>,
    /// In-flight incremental collections, one slot per node.
    incrementals: Vec<Option<bmx_gc::IncrementalBgc>>,
    /// The automatic report-retry daemon, if enabled.
    retry: Option<RetryDaemon>,
    /// Highest sequence number delivered per (src, dst) channel, for
    /// duplicate-delivery accounting (duplicates are delivered anyway — the
    /// loss-tolerant handlers are idempotent).
    last_seq: BTreeMap<(NodeId, NodeId), u64>,
}

impl Cluster {
    /// Builds a cluster.
    pub fn new(cfg: ClusterConfig) -> Self {
        let server: bmx_gc::SharedServer =
            Rc::new(RefCell::new(SegmentServer::new(cfg.segment_words)));
        let mut gc = GcState::new(cfg.nodes as usize, Rc::clone(&server));
        gc.reloc_mode = cfg.reloc_mode;
        Cluster {
            server,
            engine: DsmEngine::new(cfg.nodes as usize),
            gc,
            mems: (0..cfg.nodes).map(|i| NodeMemory::new(NodeId(i))).collect(),
            stats: (0..cfg.nodes).map(|_| NodeStats::new()).collect(),
            net: Network::new(cfg.net),
            next_oid: vec![0; cfg.nodes as usize],
            incrementals: (0..cfg.nodes).map(|_| None).collect(),
            retry: cfg.retry.map(RetryDaemon::new),
            last_seq: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.mems.len() as u32
    }

    /// Mints a fresh OID at `node`.
    pub fn mint_oid(&mut self, node: NodeId) -> Oid {
        let c = &mut self.next_oid[node.0 as usize];
        *c += 1;
        Oid(((node.0 as u64 + 1) << 40) | *c)
    }

    // ------------------------------------------------------------------
    // Message plumbing.
    // ------------------------------------------------------------------

    /// Sends a GC message, classing and counting it.
    pub fn send_gc(&mut self, src: NodeId, dst: NodeId, msg: GcMsg) {
        let class = match &msg {
            GcMsg::ScionCreate { .. } => MsgClass::ScionMessage,
            GcMsg::Report(_) => MsgClass::StubTable,
            _ => MsgClass::GcBackground,
        };
        self.stats[src.0 as usize].bump(StatKind::MessagesSent);
        self.net.send(src, dst, class, ClusterMsg::Gc(msg));
    }

    /// Delivers every in-flight message (and the cascades it triggers).
    ///
    /// Note that pumping spins the clock only while traffic is in flight; it
    /// does not fire the retry daemon's timers. Chaos runs drive time with
    /// [`Cluster::step`] instead.
    pub fn pump(&mut self) -> Result<()> {
        while self.net.in_flight() > 0 {
            let due = self.net.tick();
            for env in due {
                self.dispatch(env)?;
            }
            self.note_fault_events();
        }
        Ok(())
    }

    /// Advances the cluster's background clock by `ticks`: each tick
    /// delivers due messages, accounts fault transitions (partition heals,
    /// crash/restarts), and polls the retry daemon. This — not
    /// [`Cluster::pump`] — drives chaos runs, where time must pass for
    /// partitions to heal and backoff timers to fire.
    pub fn step(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            let due = self.net.tick();
            for env in due {
                self.dispatch(env)?;
            }
            self.note_fault_events();
            self.poll_retries()?;
        }
        Ok(())
    }

    /// Steps until the network is idle and no retried report is outstanding,
    /// or `max_ticks` elapse. Returns the number of ticks consumed.
    pub fn settle(&mut self, max_ticks: u64) -> Result<u64> {
        let mut used = 0;
        while used < max_ticks {
            // `map_or(true, ..)` rather than `is_none_or`: MSRV is 1.75.
            #[allow(clippy::unnecessary_map_or)]
            let quiet =
                self.net.in_flight() == 0 && self.retry.as_ref().map_or(true, |d| d.pending() == 0);
            if quiet {
                break;
            }
            self.step(1)?;
            used += 1;
        }
        Ok(used)
    }

    /// Reports still tracked by the retry daemon (0 when disabled).
    pub fn retries_pending(&self) -> usize {
        self.retry.as_ref().map_or(0, RetryDaemon::pending)
    }

    /// Turns fault transitions observed by the network into per-node
    /// counters, and pulls retry timers forward for restarted nodes.
    fn note_fault_events(&mut self) {
        let now = self.net.now();
        for ev in self.net.drain_fault_events() {
            match ev {
                FaultEvent::PartitionHealed { members } => {
                    for n in members {
                        if let Some(s) = self.stats.get_mut(n.0 as usize) {
                            s.bump(StatKind::PartitionsHealed);
                        }
                    }
                }
                FaultEvent::NodeCrashed { .. } => {}
                FaultEvent::NodeRestarted { node } => {
                    if let Some(s) = self.stats.get_mut(node.0 as usize) {
                        s.bump(StatKind::NodeRestarts);
                    }
                    if let Some(d) = &mut self.retry {
                        d.hasten(node, now);
                    }
                }
            }
        }
    }

    /// Fires every retry due now: rebuilds the bunch's *current* report
    /// (idempotent, so resending a newer one than originally tracked is
    /// safe — it subsumes the lost table) and re-sends it to the pending
    /// destinations.
    fn poll_retries(&mut self) -> Result<()> {
        let now = self.net.now();
        let (resends, exhausted) = match &mut self.retry {
            Some(d) => d.due(now),
            None => return Ok(()),
        };
        for r in &exhausted {
            self.stats[r.node.0 as usize].bump(StatKind::RetryBudgetExhausted);
        }
        for r in resends {
            // The bunch can vanish between tracking and firing (from-space
            // reuse); the entry then exhausts its budget harmlessly.
            let Ok(report) = self.build_report(r.node, r.bunch) else {
                continue;
            };
            for d in r.dests {
                self.stats[r.node.0 as usize].bump(StatKind::StubTableMessages);
                self.stats[r.node.0 as usize].bump(StatKind::RetryResends);
                trace::emit(
                    r.node,
                    TraceEvent::ReportRetry {
                        bunch: r.bunch,
                        dest: d,
                    },
                );
                self.send_gc(r.node, d, GcMsg::Report(report.clone()));
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, env: Envelope<ClusterMsg>) -> Result<()> {
        let last = self.last_seq.entry((env.src, env.dst)).or_insert(0);
        if env.seq.0 <= *last {
            // A duplication fault: deliver anyway (the loss-tolerant
            // handlers are idempotent by design) but account it.
            self.stats[env.dst.0 as usize].bump(StatKind::DuplicateDeliveries);
        } else {
            *last = env.seq.0;
        }
        match env.payload {
            ClusterMsg::Dsm(pkt) => self.dispatch_dsm(env.src, env.dst, pkt),
            ClusterMsg::Gc(msg) => self.dispatch_gc(env.src, env.dst, msg),
        }
    }

    fn dispatch_dsm(&mut self, src: NodeId, dst: NodeId, pkt: DsmPacket) -> Result<()> {
        let Cluster {
            engine,
            gc,
            mems,
            stats,
            net,
            ..
        } = self;
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
            net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
        };
        engine.handle(src, dst, pkt, &mut sh, &mut send)?;
        // `emit` inside the engine counts DsmProtocolMessages; mirror the
        // transport-level count here.
        Ok(())
    }

    fn dispatch_gc(&mut self, _src: NodeId, dst: NodeId, msg: GcMsg) -> Result<()> {
        match msg {
            GcMsg::ScionCreate { scion } => {
                barrier::install_scion(&mut self.gc, dst, scion);
                Ok(())
            }
            GcMsg::Report(report) => {
                let outcome = cleaner::process_report(
                    &mut self.gc,
                    &mut self.engine,
                    &mut self.stats[dst.0 as usize],
                    dst,
                    &report,
                );
                if outcome.applied {
                    self.ack_report(&report, dst);
                }
                Ok(())
            }
            GcMsg::AddressChange {
                bunch: _,
                relocations,
            } => {
                let Cluster { gc, mems, .. } = self;
                bmx_gc::integration::apply_relocations_at(gc, dst, &relocations, mems);
                Ok(())
            }
            GcMsg::Retire {
                bunch,
                segments,
                relocations,
                reply_to,
            } => {
                let msgs = {
                    let Cluster {
                        engine,
                        gc,
                        mems,
                        stats,
                        ..
                    } = self;
                    fromspace::handle_retire(
                        gc,
                        engine,
                        mems,
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &segments,
                        &relocations,
                        reply_to,
                    )?
                };
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
            GcMsg::RetireAck { bunch, from } => {
                let Cluster {
                    gc, mems, stats, ..
                } = self;
                fromspace::handle_retire_ack(
                    gc,
                    &mut mems[dst.0 as usize],
                    &mut stats[dst.0 as usize],
                    dst,
                    bunch,
                    from,
                )?;
                Ok(())
            }
            GcMsg::CopyRequest {
                bunch,
                oids,
                avoid,
                reply_to,
            } => {
                let msgs = {
                    let Cluster {
                        engine,
                        gc,
                        mems,
                        stats,
                        ..
                    } = self;
                    fromspace::handle_copy_request(
                        gc,
                        engine,
                        &mut mems[dst.0 as usize],
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &oids,
                        &avoid,
                        reply_to,
                    )?
                };
                // The owner's fresh relocations must reach the requester and
                // all other replica holders lazily too; the copy reply
                // carries them to the requester directly.
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
            GcMsg::CopyReply {
                bunch,
                relocations,
                from: _,
            } => {
                let msgs = {
                    let Cluster {
                        gc, mems, stats, ..
                    } = self;
                    fromspace::handle_copy_reply(
                        gc,
                        mems,
                        &mut stats[dst.0 as usize],
                        dst,
                        bunch,
                        &relocations,
                    )?
                };
                for (to, m) in msgs {
                    self.send_gc(dst, to, m);
                }
                Ok(())
            }
        }
        .map(|_: ()| ())
    }

    // ------------------------------------------------------------------
    // Bunches.
    // ------------------------------------------------------------------

    /// Creates a bunch at `node` with one initial segment, mapped locally.
    pub fn create_bunch(&mut self, node: NodeId) -> Result<BunchId> {
        self.create_bunch_with(node, Protection::default())
    }

    /// Creates a bunch with explicit protection attributes (paper, §2.1:
    /// "protection attributes like the usual Unix read, write, and execute
    /// permissions"). The mutator API enforces them; the collector is
    /// exempt (its writes are system bookkeeping, not application access).
    pub fn create_bunch_with(&mut self, node: NodeId, protection: Protection) -> Result<BunchId> {
        let (bunch, seg) = {
            let mut srv = self.server.borrow_mut();
            let b = srv.create_bunch(node, protection);
            let s = srv.alloc_segment(b)?;
            (b, s)
        };
        self.mems[node.0 as usize].map_segment(seg);
        self.gc.note_mapping(bunch, node);
        let brs = self.gc.node_mut(node).bunch_or_default(bunch);
        brs.alloc_segments.push(seg.id);
        Ok(bunch)
    }

    /// Maps a replica of `bunch` at `node`, copying the current images from
    /// `from` (which must have the bunch mapped). Registers the replicas
    /// with the DSM and the entering ownerPtrs with the owners.
    pub fn map_bunch(&mut self, node: NodeId, bunch: BunchId, from: NodeId) -> Result<()> {
        if self.gc.node(node).bunches.contains_key(&bunch) {
            return Ok(());
        }
        let seg_ids: Vec<_> = {
            let srv = self.server.borrow();
            srv.bunch(bunch)?
                .segments
                .iter()
                .copied()
                .filter(|&s| self.mems[from.0 as usize].has_segment(s))
                .collect()
        };
        if seg_ids.is_empty() {
            return Err(BmxError::BunchUnmapped { node: from, bunch });
        }
        // Ship the images (accounted as consistency traffic).
        let mut total_bytes = 0;
        for &sid in &seg_ids {
            let image = self.mems[from.0 as usize].image(sid)?;
            total_bytes += image.wire_size();
            image.install(&mut self.mems[node.0 as usize]);
        }
        self.stats[from.0 as usize].add(StatKind::MessagesSent, seg_ids.len() as u64);
        self.stats[from.0 as usize].add(StatKind::BytesSent, total_bytes);
        self.stats[from.0 as usize].add(StatKind::DsmProtocolMessages, seg_ids.len() as u64);

        // Learn the objects: directory entries, forwarding edges, replica
        // registrations.
        let mut found: Vec<(Oid, Addr, Addr)> = Vec::new(); // (oid, addr, fwd)
        for &sid in &seg_ids {
            let seg = self.mems[node.0 as usize].segment(sid)?;
            for addr in object::objects_in(seg) {
                let v = object::view(&self.mems[node.0 as usize], addr)?;
                found.push((
                    v.oid,
                    addr,
                    if v.is_forwarded() {
                        v.forwarding
                    } else {
                        Addr::NULL
                    },
                ));
            }
        }
        // Mapping is a synchronous copy from `from` — no message carries a
        // Lamport stamp across it, so merge the source's clock by hand or
        // the address-update events below would appear to precede the
        // relocations they depend on.
        if trace::enabled() {
            trace::observe(node, trace::clock(from));
        }
        for (oid, addr, fwd) in &found {
            let dir = &mut self.gc.node_mut(node).directory;
            if fwd.is_null() {
                dir.set_addr(*oid, *addr);
            } else {
                // The image carries a forwarding header: the replica's
                // current copy is at the (resolved) forwarding target.
                let fresh = dir.record_move(*oid, *addr, *fwd);
                let cur = dir.resolve(*fwd);
                dir.set_addr(*oid, cur);
                if fresh {
                    trace::emit(
                        node,
                        TraceEvent::AddrUpdate {
                            oid: *oid,
                            from: *addr,
                            to: *fwd,
                        },
                    );
                }
            }
        }
        // Bunch-level GC state mirrors the source's space structure.
        let (alloc_segments, pending_from) = {
            let src = self.gc.node(from).bunch(bunch);
            match src {
                Some(b) => (b.alloc_segments.clone(), b.pending_from.clone()),
                None => (seg_ids.clone(), Vec::new()),
            }
        };
        let brs = self.gc.node_mut(node).bunch_or_default(bunch);
        brs.alloc_segments = alloc_segments;
        brs.pending_from = pending_from;
        self.gc.note_mapping(bunch, node);

        // DSM registration for every non-forwarded object replica.
        for (oid, _addr, fwd) in found {
            if !fwd.is_null() {
                continue;
            }
            let hint = match self.engine.obj_state(from, oid) {
                Some(st) if st.is_owner => from,
                Some(st) => st.owner_hint,
                None => from,
            };
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                net,
                ..
            } = self;
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |s: NodeId, d: NodeId, p: DsmPacket| {
                net.send(s, d, MsgClass::Dsm, ClusterMsg::Dsm(p));
            };
            engine.register_mapped_replica(node, oid, bunch, hint, &mut sh, &mut send);
        }
        self.pump()
    }

    /// Which nodes currently have `bunch` mapped.
    pub fn mapped_nodes(&self, bunch: BunchId) -> Vec<NodeId> {
        self.gc.mapped_nodes(bunch)
    }

    // ------------------------------------------------------------------
    // Collector services.
    // ------------------------------------------------------------------

    /// Runs the bunch garbage collector on the local replica of `bunch` at
    /// `node`, publishing the reachability reports.
    pub fn run_bgc(&mut self, node: NodeId, bunch: BunchId) -> Result<CollectStats> {
        self.run_collection(node, &[bunch])
    }

    /// Runs the group garbage collector at `node` over every locally mapped
    /// bunch (the locality heuristic of Section 7).
    pub fn run_ggc(&mut self, node: NodeId) -> Result<CollectStats> {
        let group: Vec<BunchId> = self.gc.node(node).bunches.keys().copied().collect();
        self.run_collection(node, &group)
    }

    /// Runs the group collector under a grouping heuristic: each group the
    /// heuristic produces is collected in turn; returns aggregate stats.
    pub fn run_ggc_with(
        &mut self,
        node: NodeId,
        heuristic: bmx_gc::Heuristic,
    ) -> Result<CollectStats> {
        let groups = bmx_gc::grouping::groups(&self.gc, node, heuristic);
        debug_assert!(bmx_gc::grouping::is_partition(&self.gc, node, &groups));
        let mut total = CollectStats::default();
        for g in groups {
            let s = self.run_collection(node, &g)?;
            total.copied += s.copied;
            total.copied_words += s.copied_words;
            total.scanned += s.scanned;
            total.reclaimed += s.reclaimed;
            total.reclaimed_words += s.reclaimed_words;
            total.live += s.live;
        }
        Ok(total)
    }

    /// Runs a collection over an explicit group of bunches at `node`.
    pub fn run_collection(&mut self, node: NodeId, group: &[BunchId]) -> Result<CollectStats> {
        if let Some(&b) = group
            .iter()
            .find(|b| self.gc.node(node).active_groups.contains(b))
        {
            return Err(BmxError::CollectorBusy { bunch: b });
        }
        let outcome = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            collect(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                group,
            )?
        };
        for oid in &outcome.dead {
            self.engine.drop_replica(node, *oid);
        }
        for (dests, report) in outcome.reports {
            // The local cleaner consumes the report too: scions for locally
            // mapped target bunches live on this very node.
            cleaner::process_report(
                &mut self.gc,
                &mut self.engine,
                &mut self.stats[node.0 as usize],
                node,
                &report,
            );
            self.track_report(node, &report, &dests);
            for dst in dests {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, dst, GcMsg::Report(report.clone()));
            }
        }
        self.flush_explicit_relocations();
        self.pump()?;
        Ok(outcome.stats)
    }

    /// Registers a freshly published report with the retry daemon.
    fn track_report(
        &mut self,
        node: NodeId,
        report: &bmx_gc::ReachabilityReport,
        dests: &[NodeId],
    ) {
        let now = self.net.now();
        if let Some(d) = &mut self.retry {
            d.track(node, report.bunch, report.epoch, dests, now);
        }
    }

    /// Feeds an applied report delivery back to the retry daemon, crediting
    /// recovery latency when the daemon had to resend.
    fn ack_report(&mut self, report: &bmx_gc::ReachabilityReport, dst: NodeId) {
        let now = self.net.now();
        let Some(d) = &mut self.retry else { return };
        if let AckOutcome::Complete {
            recovery_latency: Some(lat),
        } = d.ack(report.from, report.bunch, report.epoch, dst, now)
        {
            self.stats[report.from.0 as usize].add(StatKind::RecoveryLatencyTicks, lat);
        }
    }

    // ------------------------------------------------------------------
    // Incremental collection (O'Toole-style, experiment E4b).
    // ------------------------------------------------------------------

    /// Starts an incremental collection of `group` at `node`: snapshots
    /// the roots and arms the graying write barrier. Mutator work may
    /// proceed between [`Cluster::incremental_step`] calls.
    pub fn start_incremental(&mut self, node: NodeId, group: &[BunchId]) -> Result<()> {
        if self.incrementals[node.0 as usize].is_some() {
            return Err(BmxError::CollectorBusy {
                bunch: group.first().copied().unwrap_or(BunchId(0)),
            });
        }
        let inc = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            bmx_gc::IncrementalBgc::start(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                group,
            )?
        };
        self.incrementals[node.0 as usize] = Some(inc);
        Ok(())
    }

    /// Performs up to `budget` objects' worth of collection work at `node`.
    /// Returns `true` when the collection is ready to flip.
    pub fn incremental_step(&mut self, node: NodeId, budget: usize) -> Result<bool> {
        let mut inc = self.incrementals[node.0 as usize]
            .take()
            .ok_or(BmxError::Protocol(
                "no incremental collection active".into(),
            ))?;
        let ready = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            inc.step(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                budget,
            )?
        };
        self.incrementals[node.0 as usize] = Some(inc);
        Ok(ready)
    }

    /// Flips the incremental collection at `node`: the only mutator-visible
    /// pause. Publishes reports like a normal collection.
    pub fn incremental_flip(&mut self, node: NodeId) -> Result<CollectStats> {
        let inc = self.incrementals[node.0 as usize]
            .take()
            .ok_or(BmxError::Protocol(
                "no incremental collection active".into(),
            ))?;
        let outcome = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            inc.flip(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
            )?
        };
        for oid in &outcome.dead {
            self.engine.drop_replica(node, *oid);
        }
        for (dests, report) in outcome.reports {
            cleaner::process_report(
                &mut self.gc,
                &mut self.engine,
                &mut self.stats[node.0 as usize],
                node,
                &report,
            );
            self.track_report(node, &report, &dests);
            for dst in dests {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, dst, GcMsg::Report(report.clone()));
            }
        }
        self.flush_explicit_relocations();
        self.pump()?;
        Ok(outcome.stats)
    }

    /// Whether an incremental collection is active at `node`.
    pub fn incremental_active(&self, node: NodeId) -> bool {
        self.incrementals[node.0 as usize].is_some()
    }

    /// Re-sends the current reachability report of `bunch` at `node` to the
    /// given destinations — the recovery action for lost stub-table
    /// messages (they are idempotent, Section 6.1). This is the *manual*
    /// recovery path kept for targeted tests; with [`ClusterConfig::retry`]
    /// enabled the retry daemon performs the same recovery automatically
    /// under [`Cluster::step`].
    pub fn resend_report(&mut self, node: NodeId, bunch: BunchId, dests: &[NodeId]) -> Result<()> {
        let report = self.build_report(node, bunch)?;
        for &d in dests {
            if d != node {
                self.stats[node.0 as usize].bump(StatKind::StubTableMessages);
                self.send_gc(node, d, GcMsg::Report(report.clone()));
            }
        }
        self.pump()
    }

    /// Builds the current reachability report of `bunch` at `node` (same
    /// content a re-send would carry).
    pub fn build_report(
        &mut self,
        node: NodeId,
        bunch: BunchId,
    ) -> Result<bmx_gc::ReachabilityReport> {
        let brs = self
            .gc
            .node(node)
            .bunch(bunch)
            .ok_or(BmxError::BunchUnmapped { node, bunch })?;
        let exiting: Vec<(Oid, NodeId)> = self
            .engine
            .exiting_owner_ptrs(node, bunch)
            .into_iter()
            .collect();
        Ok(bmx_gc::ReachabilityReport {
            from: node,
            bunch,
            epoch: brs.epoch,
            inter_stubs: brs.stub_table.inter.clone(),
            intra_stubs: brs.stub_table.intra.clone(),
            exiting,
        })
    }

    /// In [`RelocMode::Explicit`], transmits queued relocation records as
    /// their own background messages (the ablation of experiment E3).
    pub fn flush_explicit_relocations(&mut self) {
        let queued = std::mem::take(&mut self.gc.explicit_queue);
        for (src, dst, relocs) in queued {
            self.stats[src.0 as usize].bump(StatKind::ExplicitRelocationMessages);
            self.send_gc(
                src,
                dst,
                GcMsg::AddressChange {
                    bunch: BunchId(0),
                    relocations: relocs,
                },
            );
        }
    }

    /// Starts the from-space reuse protocol for `bunch` at `node` and runs
    /// it to completion. Returns `true` if the segments were reclaimed.
    pub fn reuse_from_space(&mut self, node: NodeId, bunch: BunchId) -> Result<bool> {
        let msgs = {
            let Cluster {
                engine,
                gc,
                mems,
                stats,
                ..
            } = self;
            fromspace::start_reuse(
                gc,
                engine,
                &mut mems[node.0 as usize],
                &mut stats[node.0 as usize],
                node,
                bunch,
            )?
        };
        for (dst, m) in msgs {
            self.send_gc(node, dst, m);
        }
        self.pump()?;
        Ok(self
            .gc
            .node(node)
            .bunch(bunch)
            .is_some_and(|b| b.reuse.is_none()))
    }

    // ------------------------------------------------------------------
    // Introspection for experiments and tests.
    // ------------------------------------------------------------------

    /// Sum of a counter across all nodes.
    pub fn total_stat(&self, kind: StatKind) -> u64 {
        self.stats.iter().map(|s| s.get(kind)).sum()
    }

    /// The set of addresses reachable from `node`'s mutator roots (through
    /// local forwarding), for graph verification in tests.
    pub fn reachable_from_roots(&self, node: NodeId) -> BTreeSet<Addr> {
        let ns = self.gc.node(node);
        let mem = &self.mems[node.0 as usize];
        let mut seen = BTreeSet::new();
        let mut stack: Vec<Addr> = ns.roots.values().copied().collect();
        while let Some(a) = stack.pop() {
            if a.is_null() {
                continue;
            }
            let a = ns.directory.resolve(a);
            if !seen.insert(a) {
                continue;
            }
            let Ok(fields) = object::ref_fields(mem, a) else {
                continue;
            };
            for (_, t) in fields {
                stack.push(t);
            }
        }
        seen
    }

    /// Asserts the structural invariant that the collector never acquired a
    /// token on any node.
    pub fn assert_gc_acquired_no_tokens(&self) {
        for (i, s) in self.stats.iter().enumerate() {
            assert_eq!(
                s.get(StatKind::GcTokenAcquires),
                0,
                "collector acquired a token on node N{i}"
            );
        }
    }

    /// Current token at `node` for the object at `addr`.
    pub fn token_at(&self, node: NodeId, addr: Addr) -> Result<Token> {
        let oid = self.oid_at_local(node, addr)?;
        Ok(self.engine.token(node, oid))
    }

    /// Local-only address-to-OID resolution (header read through local
    /// forwarding).
    pub fn oid_at_local(&self, node: NodeId, addr: Addr) -> Result<Oid> {
        let cur = self.gc.node(node).directory.resolve(addr);
        Ok(object::view(&self.mems[node.0 as usize], cur)?.oid)
    }
}
