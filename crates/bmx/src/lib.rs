//! The integrated BMX platform.
//!
//! This crate assembles the substrates into the system the paper describes
//! (Section 8): a cluster of nodes sharing a 64-bit address space, bunches
//! of segments kept weakly consistent by the entry-consistency DSM, a
//! write-barrier-instrumented mutator API, the three collector services
//! (bunch GC, scion cleaner, group GC), the from-space reuse protocol, and
//! RVM-backed persistence by reachability.
//!
//! The [`Cluster`] is a deterministic discrete-event simulation: mutator
//! operations run synchronously, token acquires pump the simulated network
//! to quiescence, and every message is classed and counted — which is what
//! lets the experiment harness regenerate the paper's claims as numbers.
//!
//! # Examples
//!
//! Two nodes share a bunch; each collects its replica independently, and
//! the collector touches no tokens:
//!
//! ```
//! use bmx::{Cluster, ClusterConfig, ObjSpec};
//! use bmx_common::NodeId;
//!
//! # fn main() -> bmx_common::Result<()> {
//! let mut cluster = Cluster::new(ClusterConfig::with_nodes(2));
//! let (n1, n2) = (NodeId(0), NodeId(1));
//! let bunch = cluster.create_bunch(n1)?;
//! let obj = cluster.alloc(n1, bunch, &ObjSpec::with_refs(2, &[0]))?;
//! cluster.add_root(n1, obj);
//! cluster.map_bunch(n2, bunch, n1)?;
//!
//! // Entry-consistency bracket at the replica.
//! cluster.acquire_write(n2, obj)?;
//! cluster.write_data(n2, obj, 1, 42)?;
//! cluster.release(n2, obj)?;
//!
//! // Independent per-replica collections; zero GC token traffic.
//! cluster.run_bgc(n1, bunch)?;
//! cluster.run_bgc(n2, bunch)?;
//! cluster.assert_gc_acquired_no_tokens();
//!
//! // N1 synchronizes (acquire = consistency point) and sees the write.
//! cluster.acquire_read(n1, obj)?;
//! assert_eq!(cluster.read_data(n1, obj, 1)?, 42);
//! cluster.release(n1, obj)?;
//! # Ok(()) }
//! ```

pub mod audit;
pub mod blackbox;
pub mod cluster;
pub mod driver;
pub mod msg;
pub mod mutator;
pub mod parallel;
pub mod persist;
pub mod recovery;
pub mod retry;
pub mod threaded;

pub use cluster::{Cluster, ClusterConfig, PersistConfig};
pub use driver::{Driver, LinkDriver, TickDriver};
pub use msg::ClusterMsg;
pub use mutator::ObjSpec;
pub use parallel::{
    ChaosConfig, NodeHandle, NodeLiveness, NodeStatus, ParallelCluster, Shutdown, ShutdownReport,
};
pub use recovery::RecoveryOutcome;
pub use retry::{RetryDaemon, RetryPolicy};
pub use threaded::{ClusterActor, ClusterHandle};
