//! `bmx::parallel`: the real-parallelism runtime.
//!
//! The deterministic [`Cluster`] interleaves everything on one thread so
//! the paper's protocol properties can be audited bit-exactly. This module
//! runs the *same* protocol state machines on real hardware concurrency:
//!
//! * **One OS driver thread per node** ([`LinkDriver`] inside), each
//!   polling only its own inboxes on a shared lock-free-facade
//!   [`ChannelTransport`] and applying envelopes under the protocol lock.
//! * **Real per-node handles** ([`NodeHandle`]): application mutator
//!   threads call `acquire/read/write/release` directly — no global actor
//!   serializing closures. An acquire whose token is remote parks the
//!   *calling thread only*; driver threads keep delivering, so the grant
//!   makes progress while the mutator waits.
//! * **The transport seam**: the cluster's sends are exported through
//!   [`Cluster::set_uplink`] into the channels; nothing is dispatched
//!   inline. Per-link FIFO holds; cross-link order is whatever the
//!   hardware does — exactly the loosely-coupled model of the paper.
//!
//! Concurrency model, stated honestly: protocol state (engine, collector
//! state, heaps) lives under **one protocol mutex** — this is a
//! coarse-lock runtime, v1. What runs concurrently is everything else:
//! message transfer, mutator think-time, the blocking part of acquires,
//! and the per-thread metric/trace planes. The conformance suite
//! (`tests/parallel_conformance.rs`) proves this runtime and the
//! deterministic simulator reach equivalent quiesced protocol state on
//! the same seeded workloads; DESIGN.md §11 describes the methodology
//! and the locking roadmap.
//!
//! **Failure domains** (DESIGN.md §12): each node is its own blast
//! radius. A protocol panic or an [`ParallelCluster::inject_crash`] marks
//! only that node [`NodeStatus::Down`] — its driver thread exits, its
//! pending submitters get [`BmxError::NodeDown`], and every other node
//! keeps serving. A **supervisor thread** beats a pulse clock (which also
//! drives [`FaultyTransport`] partition healing), pumps the metrics
//! watchdogs with real pending-work readings, and — under
//! [`ChaosConfig::restart`] — revives downed nodes live through the
//! crash-amnesia recovery pipeline ([`Cluster::restart_with_amnesia`]):
//! purge the dead incarnation's inbox, wipe + rejoin under the protocol
//! lock, respawn a fresh driver generation. The generation check under
//! the lock makes a straggler delivery from the dead thread impossible.
//!
//! Shutdown has two modes with deterministic per-class fate
//! ([`Shutdown`]): **Drain** applies every in-flight envelope before
//! stopping; **Drop** applies the classes the design requires reliable
//! (DSM) and discards loss-tolerant collector traffic *whole* — an
//! envelope is never half-applied, because application happens under the
//! protocol lock after the envelope was popped intact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bmx_common::{Addr, BmxError, BunchId, NodeId, Oid, Result, SplitMix64};
use bmx_metrics::{self as metrics, Ctr, Hst, Registry};
use bmx_net::{
    ChannelTransport, FaultyTransport, MsgClass, NetworkConfig, ParallelFaultPlan, Transport,
};
use bmx_profile::{self as profile, SpanKind};
use parking_lot::Mutex;

use crate::cluster::{Cluster, ClusterConfig};
use crate::driver::LinkDriver;
use crate::msg::ClusterMsg;
use crate::mutator::ObjSpec;

const PHASE_RUN: u8 = 0;
const PHASE_DRAIN: u8 = 1;
const PHASE_DROP: u8 = 2;

const NODE_ALIVE: u8 = 0;
const NODE_RECOVERING: u8 = 1;
const NODE_DOWN: u8 = 2;

/// What happens to in-flight messages at shutdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shutdown {
    /// Every in-flight envelope is applied before drivers stop.
    Drain,
    /// Reliability-requiring classes (DSM) are applied; loss-tolerant
    /// collector traffic is discarded whole. Mirrors what a real lossy
    /// network is allowed to do to those classes at any time.
    Drop,
}

/// Transport accounting for a completed parallel run. Conservation
/// (`delivered + dropped == sent`) holds globally *and per class* on
/// every run, faults included — duplicates injected by the fault plane
/// count as sends of their own.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShutdownReport {
    /// Envelopes accepted by the transport over the run's lifetime.
    pub sent: u64,
    /// Envelopes fully applied under the protocol lock.
    pub delivered: u64,
    /// Envelopes discarded whole (drop policy, injected faults, purged
    /// inboxes of crashed nodes, or post-join leftovers).
    pub dropped: u64,
    /// Sends per class, [`MsgClass::ALL`] order.
    pub sent_by_class: [u64; 4],
    /// Applied envelopes per class, [`MsgClass::ALL`] order.
    pub delivered_by_class: [u64; 4],
    /// Discards per class, [`MsgClass::ALL`] order. A fault-free run
    /// never discards index 0 (DSM) via the drop *policy*; a crashed
    /// node's purged inbox and post-failure leftovers are the only paths
    /// that can.
    pub dropped_by_class: [u64; 4],
    /// Supervisor-driven live restarts over the run.
    pub restarts: u64,
}

/// Fault-plane configuration for [`ParallelCluster::spawn_with_chaos`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for every fault decision (see [`FaultyTransport`]) and the
    /// acquire-backoff jitter.
    pub seed: u64,
    /// Per-link drop/duplicate/delay probabilities and timed partitions.
    pub plan: ParallelFaultPlan,
    /// Supervisor beat. Each beat advances the fault plane's healing
    /// clock one pulse, so partition windows are measured in beats.
    pub pulse: Duration,
    /// Whether the supervisor restarts downed nodes through the
    /// crash-amnesia recovery pipeline.
    pub restart: bool,
    /// Beats between observing a node down and restarting it.
    pub restart_delay_pulses: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            plan: ParallelFaultPlan::default(),
            pulse: Duration::from_micros(500),
            restart: true,
            restart_delay_pulses: 16,
        }
    }
}

/// A node's liveness as the runtime sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeStatus {
    /// Serving normally.
    Alive,
    /// Restarted by the supervisor; the rejoin handshake is running.
    Recovering,
    /// Crashed (panic in protocol code or injected); not serving.
    Down,
}

/// Per-node liveness snapshot, for tests and `bmx_top --parallel`.
#[derive(Clone, Debug)]
pub struct NodeLiveness {
    /// The node.
    pub node: NodeId,
    /// Current status.
    pub status: NodeStatus,
    /// Supervisor-driven restarts so far.
    pub restarts: u64,
    /// The most recent failure note (survives a successful restart, as
    /// the record of *why* the node last went down).
    pub note: Option<String>,
}

/// One node's failure-domain state.
struct NodeState {
    status: AtomicU8,
    /// Why the node last went down.
    note: Mutex<Option<String>>,
    restarts: AtomicU64,
    /// Pulse at which the supervisor first saw this down episode
    /// (`u64::MAX` = not stamped yet).
    down_since: AtomicU64,
    /// Driver-thread incarnation. A restart bumps this under the
    /// protocol lock; a driver holding a stale generation discards
    /// instead of applying.
    generation: AtomicU64,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            status: AtomicU8::new(NODE_ALIVE),
            note: Mutex::new(None),
            restarts: AtomicU64::new(0),
            down_since: AtomicU64::new(u64::MAX),
            generation: AtomicU64::new(0),
        }
    }
}

struct Shared {
    /// The protocol core. `None` after shutdown took the cluster out.
    core: Mutex<Option<Cluster>>,
    transport: Arc<dyn Transport<ClusterMsg>>,
    /// The fault-injecting wrapper, when chaos is on (same object as
    /// `transport`, kept concretely typed for pulse/heal/stats access).
    chaos: Option<Arc<FaultyTransport<ClusterMsg>>>,
    phase: AtomicU8,
    /// Envelopes fully applied by driver threads, per class.
    delivered_by_class: [AtomicU64; 4],
    /// Mutator operations completed through node handles.
    ops: AtomicU64,
    /// Per-node failure domains.
    nodes: Vec<NodeState>,
    /// Driver threads respawned by the supervisor; joined at shutdown.
    revived: Mutex<Vec<JoinHandle<()>>>,
    /// Registry captured at spawn, installed on driver threads and
    /// offered to mutator threads via [`NodeHandle::bind_metrics`].
    registry: Option<Arc<Registry>>,
    /// Cap on how long a blocking acquire re-polls before giving up
    /// (from [`ClusterConfig::acquire_timeout`]).
    acquire_timeout: Duration,
    /// Seed for acquire-backoff jitter.
    backoff_seed: u64,
    /// Per-node grant wakeup: blocking acquires park here instead of
    /// sleeping blind, and the node's driver pokes the cell after every
    /// applied envelope. Without this, a grant that lands mid-backoff
    /// sits reserved-but-unclaimed for the rest of the sleep — dead time
    /// the whole cluster queues behind.
    wake: Vec<WakeCell>,
}

// std primitives, not the parking_lot shim: the timed wait needs a real
// condvar. The mutex guards a poke epoch so a grant applied between a
// waiter's failed poll and its park is never lost: the waiter samples the
// epoch before polling and `wait` returns immediately if it has moved.
struct WakeCell {
    epoch: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
}

impl WakeCell {
    fn new() -> Self {
        WakeCell {
            epoch: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Current poke epoch; sample this *before* polling the protocol.
    fn epoch(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes every parked acquire and invalidates in-flight `epoch()`
    /// samples so the next `wait` on them returns without blocking.
    fn poke(&self) {
        let mut guard = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        *guard = guard.wrapping_add(1);
        drop(guard);
        self.cv.notify_all();
    }

    /// Parks the caller until the next poke or `timeout`, whichever comes
    /// first. Returns immediately if a poke already landed since `seen`
    /// was sampled. Spurious wakeups are fine: the acquire loop re-polls.
    fn wait(&self, seen: u64, timeout: Duration) {
        let guard = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        if *guard != seen {
            return;
        }
        let _ = self.cv.wait_timeout(guard, timeout);
    }
}

/// The protocol mutex, taken with wait/hold attribution: wall-clock
/// wait and hold time land in [`Hst::MutexWaitMicros`] /
/// [`Hst::MutexHoldMicros`] under `node` — the node the locking thread
/// was working *for* — and as `mutex/wait` / `mutex/hold` profiler
/// spans carrying the thread's current flow. Zero-cost when both planes
/// are off: one `Instant` read gated behind their enabled checks.
struct CoreGuard<'a> {
    guard: parking_lot::MutexGuard<'a, Option<Cluster>>,
    node: NodeId,
    /// `Some` only when a plane is recording (the enabled check at lock
    /// time is the gate for the whole guard).
    hold_start: Option<Instant>,
    /// Hold start on the profiler clock, µs since its epoch.
    hold_start_us: u64,
}

impl std::ops::Deref for CoreGuard<'_> {
    type Target = Option<Cluster>;
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl std::ops::DerefMut for CoreGuard<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

impl Drop for CoreGuard<'_> {
    fn drop(&mut self) {
        // Runs *before* the mutex guard field drops, so the measured
        // hold ends while the lock is still held — never short.
        if let Some(t0) = self.hold_start.take() {
            let us = t0.elapsed().as_micros() as u64;
            metrics::observe(self.node, Hst::MutexHoldMicros, us);
            if profile::enabled() {
                profile::record(SpanKind::MutexHold, self.node, self.hold_start_us, us);
            }
        }
    }
}

fn class_idx(class: MsgClass) -> usize {
    MsgClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class")
}

impl Shared {
    fn status_of(&self, node: NodeId) -> u8 {
        self.nodes[node.0 as usize].status.load(Ordering::Acquire)
    }

    /// Marks `node`'s failure domain down. Later calls in the same down
    /// episode update the note (the last crash reason is the useful one).
    fn fail_node(&self, node: NodeId, note: String) {
        // Genuine deaths (protocol errors, panics) trigger the post-
        // mortem blackbox; *injected* crashes are routine traffic in a
        // green chaos-recovery soak and must not produce dumps — the
        // nightly gate treats any dump on a passing run as a failure.
        if !note.starts_with("injected crash") {
            crate::blackbox::dump_if_armed(&note, self.registry.as_deref(), &self.generations());
        }
        let st = &self.nodes[node.0 as usize];
        *st.note.lock() = Some(note);
        st.down_since.store(u64::MAX, Ordering::Release);
        st.status.store(NODE_DOWN, Ordering::Release);
    }

    fn check(&self, node: NodeId) -> Result<()> {
        if self.status_of(node) != NODE_ALIVE {
            return Err(BmxError::NodeDown { node });
        }
        if self.phase.load(Ordering::Acquire) != PHASE_RUN {
            return Err(BmxError::Protocol("parallel runtime shutting down".into()));
        }
        Ok(())
    }

    fn count_delivery(&self, node: NodeId, class: MsgClass) {
        self.delivered_by_class[class_idx(class)].fetch_add(1, Ordering::Relaxed);
        metrics::bump(node, Ctr::ParallelDeliveries);
    }

    fn delivered_total(&self) -> u64 {
        self.delivered_by_class
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Takes the protocol mutex attributed to `node`; see [`CoreGuard`].
    fn lock_core(&self, node: NodeId) -> CoreGuard<'_> {
        let timed = metrics::enabled() || profile::enabled();
        let wait_start = if timed { Some(Instant::now()) } else { None };
        let wait_start_us = profile::now_us();
        let guard = self.core.lock();
        if let Some(t0) = wait_start {
            let us = t0.elapsed().as_micros() as u64;
            metrics::observe(node, Hst::MutexWaitMicros, us);
            if profile::enabled() {
                profile::record(SpanKind::MutexWait, node, wait_start_us, us);
            }
        }
        CoreGuard {
            guard,
            node,
            hold_start: if timed { Some(Instant::now()) } else { None },
            hold_start_us: profile::now_us(),
        }
    }

    /// Per-node failure-domain generations, for blackbox metadata.
    fn generations(&self) -> Vec<(u32, u64)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, st)| (i as u32, st.generation.load(Ordering::Acquire)))
            .collect()
    }

    /// Discards everything queued for `node` (crash semantics: the dead
    /// incarnation's inbox is lost with it).
    fn purge_inbox(&self, node: NodeId) {
        while let Some(env) = self.transport.try_recv(node) {
            self.transport.note_dropped(env.class);
            self.transport.ack_delivered();
        }
    }
}

fn panic_note(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// The parallel runtime: a cluster whose nodes run on real OS threads.
pub struct ParallelCluster {
    shared: Arc<Shared>,
    drivers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    nodes: u32,
}

impl ParallelCluster {
    /// Builds the cluster and spawns one driver thread per node plus the
    /// supervisor.
    ///
    /// The config's network is replaced by a lossless latency-1 staging
    /// network (the channel transport carries the traffic; the simulated
    /// fault plan and the retry daemon are features of the deterministic
    /// mode) and the retry daemon is disabled. Without chaos the
    /// transport is a plain [`ChannelTransport`] and the supervisor does
    /// not restart failed nodes — a protocol panic stays a hard failure,
    /// surfaced at shutdown.
    pub fn spawn(cfg: ClusterConfig) -> ParallelCluster {
        Self::spawn_inner(cfg, None)
    }

    /// Like [`ParallelCluster::spawn`], but the transport is wrapped in a
    /// seeded [`FaultyTransport`] and the supervisor revives crashed
    /// nodes through the crash-amnesia recovery pipeline (when
    /// [`ChaosConfig::restart`] is on).
    pub fn spawn_with_chaos(cfg: ClusterConfig, chaos: ChaosConfig) -> ParallelCluster {
        Self::spawn_inner(cfg, Some(chaos))
    }

    fn spawn_inner(mut cfg: ClusterConfig, chaos: Option<ChaosConfig>) -> ParallelCluster {
        let nodes = cfg.nodes;
        let acquire_timeout = cfg.acquire_timeout;
        cfg.net = NetworkConfig::lossless(1);
        cfg.retry = None;
        let faulty = chaos.as_ref().map(|cc| {
            Arc::new(FaultyTransport::<ClusterMsg>::new(
                nodes as usize,
                cc.plan.clone(),
                cc.seed,
            ))
        });
        let transport: Arc<dyn Transport<ClusterMsg>> = match &faulty {
            Some(ft) => Arc::clone(ft) as Arc<dyn Transport<ClusterMsg>>,
            None => Arc::new(ChannelTransport::<ClusterMsg>::new(nodes as usize)),
        };
        let mut cluster = Cluster::new(cfg);
        let uplink_t = Arc::clone(&transport);
        cluster.set_uplink(Arc::new(move |env| uplink_t.send_env(env)));

        let shared = Arc::new(Shared {
            core: Mutex::new(Some(cluster)),
            transport,
            chaos: faulty,
            phase: AtomicU8::new(PHASE_RUN),
            delivered_by_class: Default::default(),
            ops: AtomicU64::new(0),
            nodes: (0..nodes).map(|_| NodeState::new()).collect(),
            revived: Mutex::new(Vec::new()),
            registry: metrics::registry(),
            acquire_timeout,
            backoff_seed: chaos.as_ref().map_or(0xB0FF_5EED, |cc| cc.seed),
            wake: (0..nodes).map(|_| WakeCell::new()).collect(),
        });

        let mut drivers = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("bmx-driver-{i}"))
                .spawn(move || drive(NodeId(i), shared, 0))
                .expect("spawn driver thread");
            drivers.push(handle);
        }
        let sup = SupervisorCfg {
            pulse: chaos
                .as_ref()
                .map_or(Duration::from_millis(1), |cc| cc.pulse),
            restart: chaos.as_ref().is_some_and(|cc| cc.restart),
            restart_delay: chaos.as_ref().map_or(16, |cc| cc.restart_delay_pulses),
        };
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("bmx-supervisor".into())
                .spawn(move || supervise(shared, sup))
                .expect("spawn supervisor thread")
        };
        ParallelCluster {
            shared,
            drivers,
            supervisor: Some(supervisor),
            nodes,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// A mutator handle bound to `node`. Cloneable and `Send`; any number
    /// of application threads may hold handles to any node.
    pub fn handle(&self, node: NodeId) -> NodeHandle {
        assert!(node.0 < self.nodes, "no such node {node:?}");
        NodeHandle {
            node,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Mutator operations completed so far across all handles.
    pub fn ops(&self) -> u64 {
        self.shared.ops.load(Ordering::Relaxed)
    }

    /// Envelopes currently in flight (sent, not yet fully applied;
    /// includes envelopes the fault plane is holding back).
    pub fn in_flight(&self) -> u64 {
        self.shared.transport.in_flight()
    }

    /// Injected-fault accounting, when chaos is on.
    pub fn fault_stats(&self) -> Option<bmx_net::ParallelFaultStats> {
        self.shared.chaos.as_ref().map(|ch| ch.stats())
    }

    /// The fault plane's healing-clock reading, when chaos is on. A
    /// stalled pulse clock means held (delayed/partitioned) envelopes
    /// are not being flushed — useful when diagnosing a stall.
    pub fn now_pulse(&self) -> Option<u64> {
        self.shared.chaos.as_ref().map(|ch| ch.now_pulse())
    }

    /// Crashes `node`'s failure domain as if its driver panicked: the
    /// driver thread exits, pending and future submitters at that node
    /// get [`BmxError::NodeDown`], and — under a chaos config with
    /// restarts — the supervisor revives it through the recovery
    /// pipeline after [`ChaosConfig::restart_delay_pulses`].
    pub fn inject_crash(&self, node: NodeId) {
        assert!(node.0 < self.nodes, "no such node {node:?}");
        self.shared
            .fail_node(node, format!("injected crash at {node:?}"));
    }

    /// A metrics snapshot stamped for post-hoc ordering: wall-clock
    /// capture time plus each node's failure-domain generation (see
    /// [`bmx_metrics::Snapshot::stamp_meta`]). `None` when the runtime
    /// was spawned without a metrics registry. Blackbox dumps and
    /// chaos-soak artifacts use this instead of the raw
    /// [`Registry::snapshot`], so two dumps can always be ordered and
    /// matched to node incarnations after the fact.
    pub fn metrics_snapshot(&self) -> Option<bmx_metrics::Snapshot> {
        let reg = self.shared.registry.as_ref()?;
        let mut snap = reg.snapshot();
        snap.stamp_meta(&self.shared.generations());
        Some(snap)
    }

    /// Per-node liveness snapshot.
    pub fn liveness(&self) -> Vec<NodeLiveness> {
        (0..self.nodes)
            .map(|i| {
                let st = &self.shared.nodes[i as usize];
                let status = match st.status.load(Ordering::Acquire) {
                    NODE_ALIVE => NodeStatus::Alive,
                    NODE_RECOVERING => NodeStatus::Recovering,
                    _ => NodeStatus::Down,
                };
                NodeLiveness {
                    node: NodeId(i),
                    status,
                    restarts: st.restarts.load(Ordering::Relaxed),
                    note: st.note.lock().clone(),
                }
            })
            .collect()
    }

    /// One node's current status.
    pub fn node_status(&self, node: NodeId) -> NodeStatus {
        assert!(node.0 < self.nodes, "no such node {node:?}");
        match self.shared.status_of(node) {
            NODE_ALIVE => NodeStatus::Alive,
            NODE_RECOVERING => NodeStatus::Recovering,
            _ => NodeStatus::Down,
        }
    }

    /// Blocks until no message is in flight *and* no mutator operation is
    /// mid-protocol, or `timeout` elapses. Returns whether quiescence was
    /// reached. Callers must have stopped issuing new operations first —
    /// quiescence under active mutators is momentary by nature. A downed
    /// node with pending inbox traffic keeps this `false` (nothing will
    /// apply those envelopes until a restart or shutdown).
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.transport.in_flight() == 0 {
                // Taking the protocol lock serializes against any op that
                // was mid-flight when we looked; re-check afterwards.
                let _core = self.shared.core.lock();
                if self.shared.transport.in_flight() == 0 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Stops the drivers under `mode`, joins them, and returns the final
    /// cluster (uplink detached — it dispatches inline again, so tests
    /// can keep using it deterministically) plus the transport report.
    ///
    /// Errors if any node is still down or mid-recovery at shutdown — a
    /// crash the supervisor healed in time is *not* an error (the report
    /// carries the restart count; [`ParallelCluster::liveness`] carries
    /// the notes). Partitions are healed first so `Drain` cannot hang on
    /// held traffic.
    pub fn shutdown(mut self, mode: Shutdown) -> Result<(Cluster, ShutdownReport)> {
        let phase = match mode {
            Shutdown::Drain => PHASE_DRAIN,
            Shutdown::Drop => PHASE_DROP,
        };
        self.shared.phase.store(phase, Ordering::Release);
        // The supervisor exits at the phase flip; join it first so no
        // restart can race the teardown below.
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        if let Some(ch) = &self.shared.chaos {
            ch.heal_all();
        }
        // Janitor loop: drivers of live nodes drain to in_flight == 0,
        // which can only happen if someone keeps emptying the inboxes of
        // downed nodes (their drivers are gone) and flushing any traffic
        // the fault plane still holds.
        let mut handles: Vec<JoinHandle<()>> = self.drivers.drain(..).collect();
        loop {
            if let Some(ch) = &self.shared.chaos {
                ch.pulse();
            }
            for i in 0..self.nodes {
                if self.shared.status_of(NodeId(i)) == NODE_DOWN {
                    self.shared.purge_inbox(NodeId(i));
                }
            }
            handles.extend(self.shared.revived.lock().drain(..));
            if handles.iter().all(JoinHandle::is_finished) {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        handles.extend(self.shared.revived.lock().drain(..));
        for d in handles {
            let _ = d.join();
        }
        // A failed driver may have left its inboxes non-empty, and final
        // deliveries may have staged sends to a downed node; discard the
        // leftovers whole so accounting conserves.
        for i in 0..self.nodes {
            self.shared.purge_inbox(NodeId(i));
        }
        let mut sent_by_class = [0u64; 4];
        let mut delivered_by_class = [0u64; 4];
        let mut dropped_by_class = [0u64; 4];
        for (idx, class) in MsgClass::ALL.into_iter().enumerate() {
            sent_by_class[idx] = self.shared.transport.sent(class);
            delivered_by_class[idx] = self.shared.delivered_by_class[idx].load(Ordering::Relaxed);
            dropped_by_class[idx] = self.shared.transport.dropped(class);
        }
        let report = ShutdownReport {
            sent: self.shared.transport.sent_total(),
            delivered: self.shared.delivered_total(),
            dropped: self.shared.transport.dropped_total(),
            sent_by_class,
            delivered_by_class,
            dropped_by_class,
            restarts: self
                .shared
                .nodes
                .iter()
                .map(|st| st.restarts.load(Ordering::Relaxed))
                .sum(),
        };
        let mut failures = Vec::new();
        for (i, st) in self.shared.nodes.iter().enumerate() {
            if st.status.load(Ordering::Acquire) != NODE_ALIVE {
                let note = st.note.lock().clone();
                failures.push(format!("N{i}: {}", note.unwrap_or_else(|| "down".into())));
            }
        }
        let mut cluster = self
            .shared
            .core
            .lock()
            .take()
            .expect("cluster present until shutdown");
        cluster.clear_uplink();
        if !failures.is_empty() {
            // A failed shutdown is the chaos soak's "the run died": grab
            // the post-mortem while the rings still hold the death.
            crate::blackbox::dump_if_armed(
                &format!("shutdown with failed nodes: {}", failures.join("; ")),
                self.shared.registry.as_deref(),
                &self.shared.generations(),
            );
            return Err(BmxError::Protocol(format!(
                "parallel runtime failed: {}",
                failures.join("; ")
            )));
        }
        Ok((cluster, report))
    }
}

/// The per-node driver thread body. `generation` is the incarnation this
/// thread serves; a supervisor restart supersedes it.
fn drive(node: NodeId, shared: Arc<Shared>, generation: u64) {
    if let Some(reg) = &shared.registry {
        metrics::install_registry(Arc::clone(reg));
    }
    let driver = LinkDriver::new(node, Arc::clone(&shared.transport));
    let me = &shared.nodes[node.0 as usize];
    let mut idle_rounds: u32 = 0;
    loop {
        let phase = shared.phase.load(Ordering::Acquire);
        if me.status.load(Ordering::Acquire) == NODE_DOWN
            || me.generation.load(Ordering::Acquire) != generation
        {
            // This incarnation crashed (or was superseded by a restart):
            // the driver is the node's process; it dies with it.
            break;
        }
        match driver.next_pending() {
            Some(env) => {
                idle_rounds = 0;
                if phase == PHASE_DROP && !env.class.requires_reliability() {
                    shared.transport.note_dropped(env.class);
                    driver.ack();
                    continue;
                }
                let class = env.class;
                // Work on behalf of the envelope's flow for the whole
                // apply: the mutex wait/hold spans, the apply span, and
                // any sends the delivery stages (a grant answering a
                // request) all join the originating acquire's track.
                let _flow = profile::flow_scope(env.span);
                let apply_span = profile::span_with_flow(SpanKind::DriverApply, node, env.span);
                let apply_t0 = if metrics::enabled() {
                    Some(Instant::now())
                } else {
                    None
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut core = shared.lock_core(node);
                    // Crash check *under the protocol lock*: a restart
                    // bumps the generation while holding it, so a popped
                    // envelope can never leak into the recovered state
                    // through the pre-crash thread.
                    if me.status.load(Ordering::Acquire) == NODE_DOWN
                        || me.generation.load(Ordering::Acquire) != generation
                    {
                        return None;
                    }
                    Some(match core.as_mut() {
                        Some(c) => c.deliver(env),
                        None => Ok(()),
                    })
                }));
                drop(apply_span);
                if let Some(t0) = apply_t0 {
                    metrics::observe(
                        node,
                        Hst::DriverApplyMicros,
                        t0.elapsed().as_micros() as u64,
                    );
                }
                driver.ack();
                match outcome {
                    Ok(None) => {
                        // Popped by a dead incarnation: lost with it.
                        shared.transport.note_dropped(class);
                        break;
                    }
                    Ok(Some(Ok(()))) => {
                        shared.count_delivery(node, class);
                        // Poke parked acquires: the envelope may have been
                        // their grant.
                        shared.wake[node.0 as usize].poke();
                    }
                    Ok(Some(Err(e))) => {
                        shared.fail_node(node, format!("driver {node:?}: {e}"));
                    }
                    Err(p) => {
                        shared.fail_node(
                            node,
                            format!("driver {node:?} panicked: {}", panic_note(p)),
                        );
                    }
                }
            }
            None => {
                if phase != PHASE_RUN && shared.transport.in_flight() == 0 {
                    break;
                }
                // Idle backoff: spin briefly, then sleep — keeps grant
                // latency low without burning a core per idle node.
                idle_rounds = idle_rounds.saturating_add(1);
                if idle_rounds < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

struct SupervisorCfg {
    pulse: Duration,
    restart: bool,
    restart_delay: u64,
}

/// The supervisor thread body: beats the pulse clock (healing the fault
/// plane's partitions on schedule), stamps and revives downed nodes,
/// flips recovered nodes back to alive, and pumps the metrics watchdogs
/// with a real pending-work reading so stalls latch alarms instead of
/// being waited out.
fn supervise(shared: Arc<Shared>, cfg: SupervisorCfg) {
    if let Some(reg) = &shared.registry {
        metrics::install_registry(Arc::clone(reg));
    }
    let wd_interval = shared
        .registry
        .as_ref()
        .map_or(0, |r| r.watchdog_config().interval.max(1));
    let mut pulse: u64 = 0;
    let mut alarms_seen = shared.registry.as_ref().map_or(0, |r| r.total_alarms());
    while shared.phase.load(Ordering::Acquire) == PHASE_RUN {
        std::thread::sleep(cfg.pulse);
        let _pulse_span = profile::span(SpanKind::SupervisorPulse, NodeId(0));
        pulse = match &shared.chaos {
            Some(ch) => ch.pulse(),
            None => pulse + 1,
        };
        for i in 0..shared.nodes.len() {
            let node = NodeId(i as u32);
            let st = &shared.nodes[i];
            match st.status.load(Ordering::Acquire) {
                NODE_DOWN => {
                    let seen = st.down_since.load(Ordering::Acquire);
                    if seen == u64::MAX {
                        st.down_since.store(pulse, Ordering::Release);
                    } else if cfg.restart && pulse.saturating_sub(seen) >= cfg.restart_delay {
                        restart_node(&shared, node);
                    }
                }
                NODE_RECOVERING => {
                    let done = {
                        let core = shared.core.lock();
                        // `map_or(true, ..)` rather than `is_none_or`: MSRV 1.75.
                        #[allow(clippy::unnecessary_map_or)]
                        core.as_ref().map_or(true, |c| !c.in_recovery(node))
                    };
                    if done {
                        st.status.store(NODE_ALIVE, Ordering::Release);
                    }
                }
                _ => {}
            }
        }
        // `u64::is_multiple_of` needs Rust 1.87; the workspace MSRV is 1.75.
        #[allow(clippy::manual_is_multiple_of)]
        if wd_interval > 0 && pulse % wd_interval == 0 {
            if let Some(reg) = &shared.registry {
                metrics::evaluate_parallel(reg, pulse, shared.transport.in_flight());
                // A watchdog alarm is a blackbox trigger: the runtime is
                // telling us it is wedged or leaking, and the spans that
                // explain it are still in the rings right now.
                let total = reg.total_alarms();
                if total > alarms_seen {
                    alarms_seen = total;
                    crate::blackbox::dump_if_armed(
                        &format!("watchdog alarm (total {total}) at pulse {pulse}"),
                        Some(reg),
                        &shared.generations(),
                    );
                }
            }
        }
    }
}

/// Revives one downed node: purge the dead incarnation's inbox (its
/// queued traffic died with it — the sim's crash loss model), then under
/// the protocol lock bump the driver generation and run
/// [`Cluster::restart_with_amnesia`] (wipe, RVM replay, rejoin-request
/// broadcast through the uplink), then respawn a fresh driver. Stage 2/3
/// of recovery complete asynchronously as surviving drivers answer; the
/// supervisor flips the node back to alive when `in_recovery` clears.
fn restart_node(shared: &Arc<Shared>, node: NodeId) {
    let _span = profile::span(SpanKind::RecoveryRestart, node);
    let st = &shared.nodes[node.0 as usize];
    shared.purge_inbox(node);
    let generation = {
        let mut core = shared.core.lock();
        let generation = st.generation.fetch_add(1, Ordering::AcqRel) + 1;
        match core.as_mut() {
            Some(c) => {
                if let Err(e) = c.restart_with_amnesia(node) {
                    *st.note.lock() = Some(format!("restart of {node:?} failed: {e}"));
                    return;
                }
            }
            None => return,
        }
        generation
    };
    st.restarts.fetch_add(1, Ordering::Relaxed);
    st.down_since.store(u64::MAX, Ordering::Release);
    st.status.store(NODE_RECOVERING, Ordering::Release);
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("bmx-driver-{}-g{generation}", node.0))
        .spawn(move || drive(node, sh, generation))
        .expect("respawn driver thread");
    shared.revived.lock().push(handle);
}

/// A mutator's door into one node of a running [`ParallelCluster`].
///
/// Operations take the protocol lock for their own duration only; an
/// acquire that must wait for a remote grant releases the lock between
/// polls so driver threads can deliver it.
#[derive(Clone)]
pub struct NodeHandle {
    node: NodeId,
    shared: Arc<Shared>,
}

impl NodeHandle {
    /// The node this handle addresses.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the runtime's metrics registry on the calling thread, so
    /// this mutator thread's observations land in the shared registry.
    pub fn bind_metrics(&self) {
        if let Some(reg) = &self.shared.registry {
            metrics::install_registry(Arc::clone(reg));
        }
    }

    /// Runs `f` on the protocol core under the lock.
    ///
    /// This is the *user-closure* domain: a panic inside `f` is caught
    /// and returned as an `Err` **to this caller only** — it does not
    /// mark the node failed, because the panic is the application's, not
    /// the protocol's. (Panics inside protocol code reached through the
    /// typed methods *do* crash the node's failure domain.) The caller
    /// owns the consistency of whatever `f` half-did before panicking.
    pub fn with<R>(&self, f: impl FnOnce(&mut Cluster) -> Result<R>) -> Result<R> {
        self.shared.check(self.node)?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut core = self.shared.lock_core(self.node);
            match core.as_mut() {
                Some(c) => f(c),
                None => Err(BmxError::Protocol("parallel runtime shut down".into())),
            }
        }));
        match outcome {
            Ok(r) => {
                if r.is_ok() {
                    self.count_op();
                }
                r
            }
            Err(p) => Err(BmxError::Protocol(format!(
                "user closure at {:?} panicked: {}",
                self.node,
                panic_note(p)
            ))),
        }
    }

    /// One completed mutator operation, for [`ParallelCluster::ops`] and
    /// the [`Ctr::ParallelOps`] counter. Acquire *polls* are not ops —
    /// only the completed acquire is, so the count stays
    /// schedule-independent.
    fn count_op(&self) {
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        metrics::bump(self.node, Ctr::ParallelOps);
    }

    /// The *protocol* domain behind the typed methods: a panic here is a
    /// protocol bug, so it crashes this node's failure domain (the node
    /// goes down; other nodes keep serving).
    fn with_protocol<R>(&self, f: impl FnOnce(&mut Cluster) -> Result<R>) -> Result<R> {
        let r = self.with_protocol_uncounted(f);
        if r.is_ok() {
            self.count_op();
        }
        r
    }

    fn with_protocol_uncounted<R>(&self, f: impl FnOnce(&mut Cluster) -> Result<R>) -> Result<R> {
        self.shared.check(self.node)?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut core = self.shared.lock_core(self.node);
            match core.as_mut() {
                Some(c) => f(c),
                None => Err(BmxError::Protocol("parallel runtime shut down".into())),
            }
        }));
        match outcome {
            Ok(r) => r,
            Err(p) => {
                let note = format!("handle op at {:?} panicked: {}", self.node, panic_note(p));
                self.shared.fail_node(self.node, note.clone());
                Err(BmxError::Protocol(note))
            }
        }
    }

    /// Creates a bunch with this node as creator.
    pub fn create_bunch(&self) -> Result<BunchId> {
        let n = self.node;
        self.with_protocol(|c| c.create_bunch(n))
    }

    /// Maps `bunch` (created at `from`) onto this node.
    pub fn map_bunch(&self, bunch: BunchId, from: NodeId) -> Result<()> {
        let n = self.node;
        self.with_protocol(|c| c.map_bunch(n, bunch, from))
    }

    /// Allocates an object in `bunch`.
    pub fn alloc(&self, bunch: BunchId, spec: &ObjSpec) -> Result<Addr> {
        let n = self.node;
        self.with_protocol(|c| c.alloc(n, bunch, spec))
    }

    /// Registers a mutator root.
    pub fn add_root(&self, addr: Addr) -> Result<u64> {
        let n = self.node;
        self.with_protocol(|c| Ok(c.add_root(n, addr)))
    }

    /// Reads a data field (inside a token bracket).
    pub fn read_data(&self, obj: Addr, field: u64) -> Result<u64> {
        let n = self.node;
        self.with_protocol(|c| c.read_data(n, obj, field))
    }

    /// Writes a data field (inside a token bracket).
    pub fn write_data(&self, obj: Addr, field: u64, value: u64) -> Result<()> {
        let n = self.node;
        self.with_protocol(|c| c.write_data(n, obj, field, value))
    }

    /// Reads a reference field.
    pub fn read_ref(&self, obj: Addr, field: u64) -> Result<Addr> {
        let n = self.node;
        self.with_protocol(|c| c.read_ref(n, obj, field))
    }

    /// Writes a reference field (through the write barrier).
    pub fn write_ref(&self, obj: Addr, field: u64, target: Addr) -> Result<()> {
        let n = self.node;
        self.with_protocol(|c| c.write_ref(n, obj, field, target))
    }

    /// OID of the object at `addr`.
    pub fn oid_at(&self, addr: Addr) -> Result<Oid> {
        let n = self.node;
        self.with_protocol(|c| c.oid_at(n, addr))
    }

    /// Runs a bunch collection at this node.
    pub fn run_bgc(&self, bunch: BunchId) -> Result<bmx_gc::CollectStats> {
        let n = self.node;
        self.with_protocol(|c| c.run_bgc(n, bunch))
    }

    /// Acquires a read token, blocking the calling thread (not the
    /// cluster) until the grant arrives or the runtime's acquire timeout
    /// ([`ClusterConfig::acquire_timeout`]) elapses.
    pub fn acquire_read(&self, obj: Addr) -> Result<()> {
        self.acquire(obj, false)
    }

    /// Acquires the write token, blocking the calling thread only.
    pub fn acquire_write(&self, obj: Addr) -> Result<()> {
        self.acquire(obj, true)
    }

    /// Releases the token bracket.
    pub fn release(&self, obj: Addr) -> Result<()> {
        let n = self.node;
        self.with_protocol(|c| c.release(n, obj))
    }

    fn acquire(&self, obj: Addr, write: bool) -> Result<()> {
        let n = self.node;
        let t0 = Instant::now();
        let deadline = t0 + self.shared.acquire_timeout;
        // One acquire = one distributed flow. Every protocol send this
        // thread stages while polling carries the id on its envelope,
        // remote drivers restore it while applying (and park it with a
        // queued request, for a grant deferred behind a critical
        // section), so the request -> grant -> apply -> wake chain
        // stitches into one track in the exported Perfetto trace.
        let flow = profile::new_flow();
        let _flow_scope = profile::flow_scope(flow);
        let _acquire_span = profile::span_with_flow(SpanKind::Acquire, n, flow);
        let mut rng = SplitMix64::new(
            self.shared
                .backoff_seed
                .wrapping_add(obj.0.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ ((u64::from(n.0) + 1) << 32)
                ^ u64::from(write),
        );
        let mut spins: u32 = 0;
        let mut backoff_us: u64 = 20;
        let mut first_poll = true;
        // Open between a park's end and the end of the next poll: the
        // poke-wake -> re-poll reaction time the WakeCell exists to
        // minimize, measured instead of assumed.
        let mut wake_span: Option<profile::SpanGuard> = None;
        loop {
            // Once the backoff has hit its ceiling the grant is overdue by
            // orders of magnitude over the lossless-channel round trip: the
            // request may have died with a crashed node (purged inbox,
            // amnesia-wiped queue). Re-send it toward the current owner
            // hint — deduplicated at the queue, so a false alarm is noise,
            // not a double grant.
            let nudge = spins >= 64 && backoff_us >= 2_000;
            // Sample the wake epoch *before* polling: a grant applied
            // after this line moves the epoch, so the `wait` below falls
            // through instead of sleeping past it (no lost wakeup).
            let seen = self.shared.wake[n.0 as usize].epoch();
            let poll_span = profile::span_with_flow(
                if first_poll {
                    SpanKind::AcquireSubmit
                } else {
                    SpanKind::AcquirePoll
                },
                n,
                flow,
            );
            first_poll = false;
            let (entered, owner) = self.with_protocol_uncounted(|c| {
                if nudge {
                    c.nudge_acquire(n, obj)?;
                }
                let entered = c.poll_acquire(n, obj, write)?;
                // While waiting, note whose grant we are waiting for, so
                // a dead owner surfaces as a typed error below instead of
                // burning the whole acquire timeout.
                let owner = if entered {
                    None
                } else {
                    c.oid_at(n, obj)
                        .ok()
                        .and_then(|oid| c.engine.obj_state(n, oid))
                        .map(|st| st.owner_hint)
                };
                Ok((entered, owner))
            })?;
            drop(poll_span);
            // If we were parked, the wake "ends" once the poll it
            // triggered completes (grant claimed or not).
            drop(wake_span.take());
            if entered {
                self.count_op();
                let waited = t0.elapsed().as_micros() as u64;
                let h = if write {
                    Hst::AcquireWriteMicros
                } else {
                    Hst::AcquireReadMicros
                };
                metrics::observe(n, h, waited);
                return Ok(());
            }
            if let Some(owner) = owner {
                // Down hard: fail fast with the typed error. A merely
                // *recovering* owner is coming back — keep polling; the
                // backoff-ceiling nudge above re-sends the request once
                // the recovered node is serving again.
                if owner != n && self.shared.status_of(owner) == NODE_DOWN {
                    self.abandon_acquire(obj);
                    return Err(BmxError::NodeDown { node: owner });
                }
            }
            if Instant::now() >= deadline {
                if let Some(owner) = owner {
                    if owner != n && self.shared.status_of(owner) != NODE_ALIVE {
                        self.abandon_acquire(obj);
                        return Err(BmxError::NodeDown { node: owner });
                    }
                }
                let oid = self.with_protocol_uncounted(|c| c.oid_at(n, obj))?;
                self.abandon_acquire(obj);
                return Err(BmxError::WouldBlock { oid });
            }
            // Re-poll cadence: spin briefly for fast grants, then back
            // off exponentially with seeded jitter so contending handles
            // don't re-poll in lockstep.
            spins = spins.saturating_add(1);
            if spins < 64 {
                std::thread::yield_now();
            } else {
                // Park on the node's wake cell rather than sleeping blind:
                // the driver pokes it after every applied envelope, so a
                // landing grant is claimed in microseconds instead of
                // idling reserved for the rest of the backoff. The epoch
                // sampled above makes the poll-then-park window safe, and
                // the backoff is still the timeout of last resort.
                let jitter = rng.next_below(backoff_us / 2 + 1);
                {
                    let _park = profile::span_with_flow(SpanKind::AcquirePark, n, flow);
                    self.shared.wake[n.0 as usize]
                        .wait(seen, Duration::from_micros(backoff_us + jitter));
                }
                wake_span = Some(profile::span_with_flow(SpanKind::AcquireWake, n, flow));
                backoff_us = (backoff_us * 2).min(2_000);
            }
        }
    }

    /// Best-effort wait cancellation on an acquire's error exit. Without
    /// it, a grant that raced the timeout leaves the replica reserved for
    /// a waiter that is gone, wedging every later remote request.
    fn abandon_acquire(&self, obj: Addr) {
        let n = self.node;
        let _ = self.with_protocol_uncounted(|c| c.cancel_acquire(n, obj));
    }
}

// The parallel runtime is only sound if the protocol core can cross
// threads; keep that property pinned at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Cluster>();
    assert_send::<NodeHandle>();
};
