//! `bmx::parallel`: the real-parallelism runtime.
//!
//! The deterministic [`Cluster`] interleaves everything on one thread so
//! the paper's protocol properties can be audited bit-exactly. This module
//! runs the *same* protocol state machines on real hardware concurrency:
//!
//! * **One OS driver thread per node** ([`LinkDriver`] inside), each
//!   polling only its own inboxes on a shared lock-free-facade
//!   [`ChannelTransport`] and applying envelopes under the protocol lock.
//! * **Real per-node handles** ([`NodeHandle`]): application mutator
//!   threads call `acquire/read/write/release` directly — no global actor
//!   serializing closures. An acquire whose token is remote parks the
//!   *calling thread only*; driver threads keep delivering, so the grant
//!   makes progress while the mutator waits.
//! * **The transport seam**: the cluster's sends are exported through
//!   [`Cluster::set_uplink`] into the channels; nothing is dispatched
//!   inline. Per-link FIFO holds; cross-link order is whatever the
//!   hardware does — exactly the loosely-coupled model of the paper.
//!
//! Concurrency model, stated honestly: protocol state (engine, collector
//! state, heaps) lives under **one protocol mutex** — this is a
//! coarse-lock runtime, v1. What runs concurrently is everything else:
//! message transfer, mutator think-time, the blocking part of acquires,
//! and the per-thread metric/trace planes. The conformance suite
//! (`tests/parallel_conformance.rs`) proves this runtime and the
//! deterministic simulator reach equivalent quiesced protocol state on
//! the same seeded workloads; DESIGN.md §11 describes the methodology
//! and the locking roadmap.
//!
//! Shutdown has two modes with deterministic per-class fate
//! ([`Shutdown`]): **Drain** applies every in-flight envelope before
//! stopping; **Drop** applies the classes the design requires reliable
//! (DSM) and discards loss-tolerant collector traffic *whole* — an
//! envelope is never half-applied, because application happens under the
//! protocol lock after the envelope was popped intact.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bmx_common::{Addr, BmxError, BunchId, NodeId, Oid, Result};
use bmx_metrics::{self as metrics, Ctr, Hst, Registry};
use bmx_net::{ChannelTransport, MsgClass, NetworkConfig, Transport};
use parking_lot::Mutex;

use crate::cluster::{Cluster, ClusterConfig};
use crate::driver::LinkDriver;
use crate::msg::ClusterMsg;
use crate::mutator::ObjSpec;

const PHASE_RUN: u8 = 0;
const PHASE_DRAIN: u8 = 1;
const PHASE_DROP: u8 = 2;

/// What happens to in-flight messages at shutdown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shutdown {
    /// Every in-flight envelope is applied before drivers stop.
    Drain,
    /// Reliability-requiring classes (DSM) are applied; loss-tolerant
    /// collector traffic is discarded whole. Mirrors what a real lossy
    /// network is allowed to do to those classes at any time.
    Drop,
}

/// Transport accounting for a completed parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShutdownReport {
    /// Envelopes accepted by the transport over the run's lifetime.
    pub sent: u64,
    /// Envelopes fully applied under the protocol lock.
    pub delivered: u64,
    /// Envelopes discarded whole (drop policy or post-join leftovers).
    pub dropped: u64,
    /// Discards per class, [`MsgClass::ALL`] order. A sound run never
    /// discards index 0 (DSM) via the drop *policy*; leftovers after a
    /// driver failure are the only path that can.
    pub dropped_by_class: [u64; 4],
}

struct Shared {
    /// The protocol core. `None` after shutdown took the cluster out.
    core: Mutex<Option<Cluster>>,
    transport: Arc<ChannelTransport<ClusterMsg>>,
    phase: AtomicU8,
    /// Envelopes fully applied by driver threads.
    delivered: AtomicU64,
    /// Mutator operations completed through node handles.
    ops: AtomicU64,
    /// First failure (driver error or caught panic); sticky.
    fail: Mutex<Option<String>>,
    /// Registry captured at spawn, installed on driver threads and
    /// offered to mutator threads via [`NodeHandle::bind_metrics`].
    registry: Option<Arc<Registry>>,
    /// Cap on how long a blocking acquire spins before giving up.
    acquire_timeout: Duration,
}

impl Shared {
    fn fail_with(&self, note: String) {
        let mut f = self.fail.lock();
        if f.is_none() {
            *f = Some(note);
        }
    }

    fn check(&self) -> Result<()> {
        if let Some(note) = self.fail.lock().clone() {
            return Err(BmxError::Protocol(format!(
                "parallel runtime failed: {note}"
            )));
        }
        if self.phase.load(Ordering::Acquire) != PHASE_RUN {
            return Err(BmxError::Protocol("parallel runtime shutting down".into()));
        }
        Ok(())
    }
}

fn panic_note(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// The parallel runtime: a cluster whose nodes run on real OS threads.
pub struct ParallelCluster {
    shared: Arc<Shared>,
    drivers: Vec<JoinHandle<()>>,
    nodes: u32,
}

impl ParallelCluster {
    /// Builds the cluster and spawns one driver thread per node.
    ///
    /// The config's network is replaced by a lossless latency-1 staging
    /// network (the channel transport carries the traffic; fault plans
    /// and the retry daemon are features of the deterministic mode) and
    /// the retry daemon is disabled.
    pub fn spawn(mut cfg: ClusterConfig) -> ParallelCluster {
        let nodes = cfg.nodes;
        cfg.net = NetworkConfig::lossless(1);
        cfg.retry = None;
        let transport = Arc::new(ChannelTransport::<ClusterMsg>::new(nodes as usize));
        let mut cluster = Cluster::new(cfg);
        let uplink_t = Arc::clone(&transport);
        cluster.set_uplink(Arc::new(move |env| uplink_t.send_env(env)));

        let shared = Arc::new(Shared {
            core: Mutex::new(Some(cluster)),
            transport: Arc::clone(&transport),
            phase: AtomicU8::new(PHASE_RUN),
            delivered: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            fail: Mutex::new(None),
            registry: metrics::registry(),
            acquire_timeout: Duration::from_secs(10),
        });

        let mut drivers = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("bmx-driver-{i}"))
                .spawn(move || drive(NodeId(i), shared))
                .expect("spawn driver thread");
            drivers.push(handle);
        }
        ParallelCluster {
            shared,
            drivers,
            nodes,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// A mutator handle bound to `node`. Cloneable and `Send`; any number
    /// of application threads may hold handles to any node.
    pub fn handle(&self, node: NodeId) -> NodeHandle {
        assert!(node.0 < self.nodes, "no such node {node:?}");
        NodeHandle {
            node,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Mutator operations completed so far across all handles.
    pub fn ops(&self) -> u64 {
        self.shared.ops.load(Ordering::Relaxed)
    }

    /// Envelopes currently in flight (sent, not yet fully applied).
    pub fn in_flight(&self) -> u64 {
        self.shared.transport.in_flight()
    }

    /// Blocks until no message is in flight *and* no mutator operation is
    /// mid-protocol, or `timeout` elapses. Returns whether quiescence was
    /// reached. Callers must have stopped issuing new operations first —
    /// quiescence under active mutators is momentary by nature.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.transport.in_flight() == 0 {
                // Taking the protocol lock serializes against any op that
                // was mid-flight when we looked; re-check afterwards.
                let _core = self.shared.core.lock();
                if self.shared.transport.in_flight() == 0 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Stops the drivers under `mode`, joins them, and returns the final
    /// cluster (uplink detached — it dispatches inline again, so tests
    /// can keep using it deterministically) plus the transport report.
    ///
    /// Errors if any driver or handle operation failed or panicked during
    /// the run; the failure note is carried in the error.
    pub fn shutdown(mut self, mode: Shutdown) -> Result<(Cluster, ShutdownReport)> {
        let phase = match mode {
            Shutdown::Drain => PHASE_DRAIN,
            Shutdown::Drop => PHASE_DROP,
        };
        self.shared.phase.store(phase, Ordering::Release);
        for d in self.drivers.drain(..) {
            let _ = d.join();
        }
        // A failed driver may have left its inboxes non-empty; discard the
        // leftovers whole so accounting conserves.
        for i in 0..self.nodes {
            while let Some(env) = self.shared.transport.try_recv(NodeId(i)) {
                self.shared.transport.note_dropped(env.class);
                self.shared.transport.ack_delivered();
            }
        }
        let mut dropped_by_class = [0u64; 4];
        for (slot, class) in dropped_by_class.iter_mut().zip(MsgClass::ALL) {
            *slot = self.shared.transport.dropped(class);
        }
        let report = ShutdownReport {
            sent: self.shared.transport.sent_total(),
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            dropped: self.shared.transport.dropped_total(),
            dropped_by_class,
        };
        let fail = self.shared.fail.lock().clone();
        let mut cluster = self
            .shared
            .core
            .lock()
            .take()
            .expect("cluster present until shutdown");
        cluster.clear_uplink();
        if let Some(note) = fail {
            return Err(BmxError::Protocol(format!(
                "parallel runtime failed: {note}"
            )));
        }
        Ok((cluster, report))
    }
}

/// The per-node driver thread body.
fn drive(node: NodeId, shared: Arc<Shared>) {
    if let Some(reg) = &shared.registry {
        metrics::install_registry(Arc::clone(reg));
    }
    let driver = LinkDriver::new(node, Arc::clone(&shared.transport));
    let mut idle_rounds: u32 = 0;
    loop {
        let phase = shared.phase.load(Ordering::Acquire);
        match driver.next_pending() {
            Some(env) => {
                idle_rounds = 0;
                if phase == PHASE_DROP && !env.class.requires_reliability() {
                    shared.transport.note_dropped(env.class);
                    driver.ack();
                    continue;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut core = shared.core.lock();
                    match core.as_mut() {
                        Some(c) => c.deliver(env),
                        None => Ok(()),
                    }
                }));
                driver.ack();
                match outcome {
                    Ok(Ok(())) => {
                        shared.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Err(e)) => shared.fail_with(format!("driver {node:?}: {e}")),
                    Err(p) => {
                        shared.fail_with(format!("driver {node:?} panicked: {}", panic_note(p)))
                    }
                }
            }
            None => {
                if phase != PHASE_RUN
                    && (shared.transport.in_flight() == 0 || shared.fail.lock().is_some())
                {
                    break;
                }
                // Idle backoff: spin briefly, then sleep — keeps grant
                // latency low without burning a core per idle node.
                idle_rounds = idle_rounds.saturating_add(1);
                if idle_rounds < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// A mutator's door into one node of a running [`ParallelCluster`].
///
/// Operations take the protocol lock for their own duration only; an
/// acquire that must wait for a remote grant releases the lock between
/// polls so driver threads can deliver it.
#[derive(Clone)]
pub struct NodeHandle {
    node: NodeId,
    shared: Arc<Shared>,
}

impl NodeHandle {
    /// The node this handle addresses.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs the runtime's metrics registry on the calling thread, so
    /// this mutator thread's observations land in the shared registry.
    pub fn bind_metrics(&self) {
        if let Some(reg) = &self.shared.registry {
            metrics::install_registry(Arc::clone(reg));
        }
    }

    /// Runs `f` on the protocol core under the lock. Panics inside `f`
    /// are caught, poison the runtime logically (all later operations
    /// fail with the note), and surface here as an `Err`.
    pub fn with<R>(&self, f: impl FnOnce(&mut Cluster) -> Result<R>) -> Result<R> {
        let r = self.with_uncounted(f);
        if r.is_ok() {
            self.count_op();
        }
        r
    }

    /// One completed mutator operation, for [`ParallelCluster::ops`] and
    /// the [`Ctr::ParallelOps`] counter. Acquire *polls* are not ops —
    /// only the completed acquire is, so the count stays
    /// schedule-independent.
    fn count_op(&self) {
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        metrics::bump(self.node, Ctr::ParallelOps);
    }

    fn with_uncounted<R>(&self, f: impl FnOnce(&mut Cluster) -> Result<R>) -> Result<R> {
        self.shared.check()?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut core = self.shared.core.lock();
            match core.as_mut() {
                Some(c) => f(c),
                None => Err(BmxError::Protocol("parallel runtime shut down".into())),
            }
        }));
        match outcome {
            Ok(r) => r,
            Err(p) => {
                let note = format!("handle op at {:?} panicked: {}", self.node, panic_note(p));
                self.shared.fail_with(note.clone());
                Err(BmxError::Protocol(note))
            }
        }
    }

    /// Creates a bunch with this node as creator.
    pub fn create_bunch(&self) -> Result<BunchId> {
        let n = self.node;
        self.with(|c| c.create_bunch(n))
    }

    /// Maps `bunch` (created at `from`) onto this node.
    pub fn map_bunch(&self, bunch: BunchId, from: NodeId) -> Result<()> {
        let n = self.node;
        self.with(|c| c.map_bunch(n, bunch, from))
    }

    /// Allocates an object in `bunch`.
    pub fn alloc(&self, bunch: BunchId, spec: &ObjSpec) -> Result<Addr> {
        let n = self.node;
        self.with(|c| c.alloc(n, bunch, spec))
    }

    /// Registers a mutator root.
    pub fn add_root(&self, addr: Addr) -> Result<u64> {
        let n = self.node;
        self.with(|c| Ok(c.add_root(n, addr)))
    }

    /// Reads a data field (inside a token bracket).
    pub fn read_data(&self, obj: Addr, field: u64) -> Result<u64> {
        let n = self.node;
        self.with(|c| c.read_data(n, obj, field))
    }

    /// Writes a data field (inside a token bracket).
    pub fn write_data(&self, obj: Addr, field: u64, value: u64) -> Result<()> {
        let n = self.node;
        self.with(|c| c.write_data(n, obj, field, value))
    }

    /// Reads a reference field.
    pub fn read_ref(&self, obj: Addr, field: u64) -> Result<Addr> {
        let n = self.node;
        self.with(|c| c.read_ref(n, obj, field))
    }

    /// Writes a reference field (through the write barrier).
    pub fn write_ref(&self, obj: Addr, field: u64, target: Addr) -> Result<()> {
        let n = self.node;
        self.with(|c| c.write_ref(n, obj, field, target))
    }

    /// OID of the object at `addr`.
    pub fn oid_at(&self, addr: Addr) -> Result<Oid> {
        let n = self.node;
        self.with(|c| c.oid_at(n, addr))
    }

    /// Runs a bunch collection at this node.
    pub fn run_bgc(&self, bunch: BunchId) -> Result<bmx_gc::CollectStats> {
        let n = self.node;
        self.with(|c| c.run_bgc(n, bunch))
    }

    /// Acquires a read token, blocking the calling thread (not the
    /// cluster) until the grant arrives or the runtime's acquire timeout
    /// elapses.
    pub fn acquire_read(&self, obj: Addr) -> Result<()> {
        self.acquire(obj, false)
    }

    /// Acquires the write token, blocking the calling thread only.
    pub fn acquire_write(&self, obj: Addr) -> Result<()> {
        self.acquire(obj, true)
    }

    /// Releases the token bracket.
    pub fn release(&self, obj: Addr) -> Result<()> {
        let n = self.node;
        self.with(|c| c.release(n, obj))
    }

    fn acquire(&self, obj: Addr, write: bool) -> Result<()> {
        let n = self.node;
        let t0 = Instant::now();
        let deadline = t0 + self.shared.acquire_timeout;
        let mut spins: u32 = 0;
        loop {
            let entered = self.with_uncounted(|c| c.poll_acquire(n, obj, write))?;
            if entered {
                self.count_op();
                let waited = t0.elapsed().as_micros() as u64;
                let h = if write {
                    Hst::AcquireWriteMicros
                } else {
                    Hst::AcquireReadMicros
                };
                metrics::observe(n, h, waited);
                return Ok(());
            }
            if Instant::now() >= deadline {
                let oid = self.with_uncounted(|c| c.oid_at(n, obj))?;
                return Err(BmxError::WouldBlock { oid });
            }
            spins = spins.saturating_add(1);
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(20));
            }
        }
    }
}

// The parallel runtime is only sound if the protocol core can cross
// threads; keep that property pinned at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Cluster>();
    assert_send::<NodeHandle>();
};
