//! The epoch-based rejoin handshake of crash-amnesia recovery.
//!
//! An amnesia crash (power failure) loses a node's entire volatile state:
//! memory image, object directory, DSM token/ownership caches, scion/stub
//! tables, cleaner epochs, retry timers. What survives is the RVM store —
//! the last post-BGC checkpoint of each bunch — and the *peers'* knowledge:
//! who holds replicas, who registered entering ownerPtrs, and the highest
//! reachability epoch each peer applied from the crashed node.
//!
//! On restart the node runs a three-stage pipeline
//! (`Cluster::begin_recovery` drives it):
//!
//! 1. **RVM replay** — [`crate::persist::recover_bunch_live`] rebuilds the
//!    checkpointed bunch replicas (losing at most uncommitted transactions;
//!    a torn log tail is detected and cut by the redo-log scan).
//! 2. **Rejoin handshake** — the messages in this module. The recovering
//!    node broadcasts [`RejoinMsg::Request`] naming what it recovered; each
//!    surviving peer purges protocol state that waits on the crashed node,
//!    then answers with [`RejoinMsg::Reply`]: its view of the recovered
//!    objects, the *orphans* (its replicas whose ownerPtr names the crashed
//!    node but which the node did not recover), its cleaner-epoch floor for
//!    the crashed node's bunches, and a fresh reachability report of every
//!    bunch it maps. Ownership is reconciled without ever moving a token a
//!    surviving node holds — the Section-5 acquire invariants are untouched
//!    because the recovering node only ever *demotes* itself (replica where
//!    a survivor owns) or claims objects nobody else owns.
//! 3. **Scion/stub regeneration** — the piggy-backed reports are applied
//!    through the ordinary idempotent cleaner
//!    ([`bmx_gc::cleaner::process_report`]), which recreates every scion
//!    whose site is the recovered node. No recovery-special cleaning logic
//!    exists: correctness rests exactly on the paper's Section-6 design.
//!
//! The *epoch rules*: the node's per-bunch collection epochs resume at the
//! maximum any surviving peer had applied ([`RejoinMsg::Reply::epochs`]),
//! so every post-restart report is strictly newer than anything the crashed
//! incarnation published — the cleaner's `>=` staleness gate then guarantees
//! no pre-crash table is ever mistaken for a fresh one. The
//! `trace::query::post_crash_epoch_violations` checker asserts exactly this.

use bmx_common::{BunchId, NodeId, Oid};
use bmx_dsm::DsmMsg;
use bmx_gc::ReachabilityReport;
use bmx_net::WireSize;
use std::collections::{BTreeMap, BTreeSet};

/// A peer's view of one object the recovering node pulled from its RVM
/// store.
#[derive(Clone, Debug)]
pub struct ObjView {
    /// The object.
    pub oid: Oid,
    /// Whether the peer holds a replica at all.
    pub holds_replica: bool,
    /// Whether the peer believes it is the owner.
    pub is_owner: bool,
    /// Whether the peer holds a (read or write) token.
    pub has_token: bool,
    /// The peer's ownerPtr for the object (meaningful when it holds a
    /// non-owned replica).
    pub owner_hint: NodeId,
}

/// A replica at a peer whose ownerPtr names the crashed node but which the
/// node did *not* recover: the authoritative copy died with the crash, and
/// ownership must be re-homed to a survivor.
#[derive(Clone, Debug)]
pub struct OrphanView {
    /// The object.
    pub oid: Oid,
    /// Its bunch.
    pub bunch: BunchId,
    /// Whether the peer holds a token for its (stale-at-worst) copy.
    pub has_token: bool,
}

/// One ownership decision broadcast at the end of the handshake.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// The object.
    pub oid: Oid,
    /// Its bunch.
    pub bunch: BunchId,
    /// The node that now owns it (the recovering node for recovered
    /// objects nobody else owned; a surviving replica holder for orphans).
    pub owner: NodeId,
    /// Every node known to hold a replica (entering ownerPtrs at the new
    /// owner).
    pub replicas: Vec<NodeId>,
    /// The subset holding read tokens (the new owner's copy-set).
    pub readers: Vec<NodeId>,
}

/// The rejoin handshake messages. All travel on the reliable
/// consistency-protocol lane (`MsgClass::Dsm`): a handshake message lost to
/// an overlapping fault would wedge the recovery, and the paper's
/// loss-tolerance argument covers the *GC* planes, not membership.
#[derive(Clone, Debug)]
pub enum RejoinMsg {
    /// Recovering node -> every surviving peer: "I lost everything volatile;
    /// here is what my RVM store gave back."
    Request {
        /// The rejoin epoch (strictly increasing per node across restarts).
        epoch: u64,
        /// Every `(object, bunch)` the RVM replay reinstalled.
        recovered: Vec<(Oid, BunchId)>,
    },
    /// Surviving peer -> recovering node.
    Reply {
        /// Echo of the request epoch (stale replies are discarded).
        epoch: u64,
        /// The replying peer.
        from: NodeId,
        /// The peer's view of each recovered object.
        views: Vec<ObjView>,
        /// Replicas orphaned by the crash (ownerPtr names the crashed node,
        /// object not in the recovered list).
        orphans: Vec<OrphanView>,
        /// The peer's cleaner-epoch floor per bunch for reports *from* the
        /// crashed node — the recovering node resumes its collection epochs
        /// above the cluster-wide maximum of these.
        epochs: Vec<(BunchId, u64)>,
        /// A fresh idempotent reachability report for every bunch the peer
        /// maps: the scion/stub regeneration payload.
        reports: Vec<ReachabilityReport>,
    },
    /// Recovering node -> every surviving peer: the ownership decisions.
    /// Peers repoint ownerPtrs; the chosen owner of each orphan adopts it.
    Assign {
        /// The rejoin epoch these decisions belong to.
        epoch: u64,
        /// The decisions.
        assignments: Vec<Assignment>,
    },
}

impl WireSize for RejoinMsg {
    fn wire_size(&self) -> u64 {
        match self {
            RejoinMsg::Request { recovered, .. } => 16 + 12 * recovered.len() as u64,
            RejoinMsg::Reply {
                views,
                orphans,
                epochs,
                reports,
                ..
            } => {
                20 + 14 * views.len() as u64
                    + 13 * orphans.len() as u64
                    + 12 * epochs.len() as u64
                    + reports
                        .iter()
                        .map(|r| {
                            // Same accounting as `GcMsg::Report`.
                            24 + 56 * r.inter_stubs.len() as u64
                                + 24 * r.intra_stubs.len() as u64
                                + 16 * r.exiting.len() as u64
                        })
                        .sum::<u64>()
            }
            RejoinMsg::Assign { assignments, .. } => {
                16 + assignments
                    .iter()
                    .map(|a| 20 + 4 * (a.replicas.len() + a.readers.len()) as u64)
                    .sum::<u64>()
            }
        }
    }
}

/// The in-progress recovery bookkeeping of one restarting node, held by the
/// cluster driver between the `Request` broadcast and the last `Reply`.
#[derive(Debug)]
pub struct Recovery {
    /// The rejoin epoch of this recovery.
    pub epoch: u64,
    /// What the RVM replay gave back.
    pub recovered: Vec<(Oid, BunchId)>,
    /// Peers whose `Reply` is still outstanding.
    pub awaiting: BTreeSet<NodeId>,
    /// Network tick the restart fired (for recovery-latency measurement).
    pub started_at: u64,
    /// Wall-clock microseconds the RVM replay took.
    pub replay_micros: u64,
    /// Collected peer views per recovered object, tagged with the replying
    /// peer (an `is_owner` view makes that peer the surviving owner).
    pub views: BTreeMap<Oid, Vec<(NodeId, ObjView)>>,
    /// Collected orphans: object -> (bunch, holders with token flag).
    pub orphans: BTreeMap<Oid, (BunchId, Vec<(NodeId, bool)>)>,
    /// Cluster-wide cleaner-epoch maximum per bunch for this node's reports.
    pub epoch_floor: BTreeMap<BunchId, u64>,
    /// Reports piggy-backed on replies, applied at completion (after the
    /// ownership reconciliation, so entering-ownerPtr adjustments land on
    /// reconciled state).
    pub reports: Vec<ReachabilityReport>,
    /// Token requests that arrived while the recovery was in flight,
    /// replayed once the pipeline completes. A silent drop would wedge the
    /// requester in real-thread mode: its `waiting_for` latch is only
    /// cleared by a grant or by the rejoin `Request` purge, and that purge
    /// fired once already — the re-sent request has nobody left to clear
    /// it. Deduplicated by `(kind, oid, requester)` so sim-mode acquire
    /// retries (which re-send every poll) cannot double-queue a grant.
    pub deferred: Vec<(NodeId, DsmMsg)>,
}

/// One completed recovery, recorded for the E9 experiment and the chaos
/// suite: latency is `complete_tick - restart_tick` of simulated time plus
/// the measured RVM replay wall time.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// The recovered node.
    pub node: NodeId,
    /// The rejoin epoch.
    pub epoch: u64,
    /// Tick the node restarted (RVM replay + request broadcast).
    pub restart_tick: u64,
    /// Tick the pipeline completed (last reply reconciled, assignments
    /// broadcast, scions regenerated).
    pub complete_tick: u64,
    /// Wall-clock microseconds of the RVM replay stage.
    pub replay_micros: u64,
    /// Objects reinstalled from the RVM store.
    pub objects_recovered: usize,
    /// Orphans re-homed to surviving replica holders.
    pub orphans_adopted: usize,
    /// Peer reports applied during scion/stub regeneration.
    pub reports_applied: usize,
}
