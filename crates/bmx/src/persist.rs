//! RVM-backed persistence by reachability.
//!
//! Persistence in BMX follows Atkinson's persistence-by-reachability: an
//! object is persistent iff it is reachable from the persistent root
//! (paper, Sections 1 and 2.1). The prototype associates each segment with
//! a file and transfers changes atomically through RVM (Section 8),
//! following O'Toole et al. in backing from-space and to-space each with a
//! file.
//!
//! [`checkpoint_bunch`] runs after a local BGC (which has compacted the live
//! objects into to-space) and writes each mapped segment image of the bunch
//! into an RVM region inside one recoverable transaction — a crash either
//! preserves the previous checkpoint or the new one. [`recover_bunch`]
//! rebuilds a node's replica (memory image, object directory, DSM ownership)
//! from the RVM store after a crash.

use bmx_addr::object;
use bmx_addr::MappedSegment;
use bmx_common::{Addr, BmxError, BunchId, NodeId, Result, SegmentId, StatKind};
use bmx_rvm::{RegionId, Rvm};

use crate::cluster::Cluster;

/// Byte capacity of a segment's RVM region (worst case: fully used).
fn region_capacity(words: usize) -> usize {
    let map_words = words.div_ceil(64);
    8 * (1 + words + 2 * map_words)
}

/// Encodes a mapped segment into the flat byte layout of its RVM region:
/// `[alloc_cursor u64][used words (cursor many)][object_map][ref_map]`.
///
/// Only the used prefix of the word array is serialized — after a
/// collection the to-space is compact, so the checkpoint scales with live
/// data, not segment capacity (persistence by reachability in byte form).
fn encode_segment(seg: &MappedSegment) -> Vec<u8> {
    let words = seg.info.words as usize;
    let used = seg.alloc_cursor as usize;
    let map_words = words.div_ceil(64);
    let mut out = Vec::with_capacity(8 * (1 + used + 2 * map_words));
    out.extend_from_slice(&seg.alloc_cursor.to_le_bytes());
    for w in &seg.words[..used] {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let mut pack = |bits: &bmx_common::Bitmap| {
        let mut buf = vec![0u64; map_words];
        for i in bits.iter_ones() {
            buf[i / 64] |= 1 << (i % 64);
        }
        for w in buf {
            out.extend_from_slice(&w.to_le_bytes());
        }
    };
    pack(&seg.object_map);
    pack(&seg.ref_map);
    out
}

fn decode_segment(info: bmx_addr::SegmentInfo, bytes: &[u8]) -> Result<MappedSegment> {
    let words = info.words as usize;
    let map_words = words.div_ceil(64);
    if bytes.len() < 8 {
        return Err(BmxError::Rvm(format!(
            "segment region too short: {}",
            bytes.len()
        )));
    }
    let rd = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    let mut seg = MappedSegment::new(info);
    seg.alloc_cursor = rd(0);
    let used = seg.alloc_cursor as usize;
    if used > words || bytes.len() < 8 * (1 + used + 2 * map_words) {
        return Err(BmxError::Rvm(format!(
            "segment region inconsistent: cursor {used}, {} bytes",
            bytes.len()
        )));
    }
    for i in 0..used {
        seg.words[i] = rd(1 + i);
    }
    for i in 0..words {
        if rd(1 + used + i / 64) & (1 << (i % 64)) != 0 {
            seg.object_map.set(i);
        }
        if rd(1 + used + map_words + i / 64) & (1 << (i % 64)) != 0 {
            seg.ref_map.set(i);
        }
    }
    Ok(seg)
}

/// Region id carrying the segment table of a bunch (ids, bases, lengths) so
/// recovery can re-register the layout with a fresh segment server.
fn meta_region(bunch: BunchId) -> RegionId {
    RegionId(u64::MAX - bunch.0 as u64)
}

/// Encodes the checkpointed segment table:
/// `[count][id base words]...` as little-endian u64s.
fn encode_meta(segs: &[bmx_addr::SegmentInfo]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * (1 + 3 * segs.len()));
    out.extend_from_slice(&(segs.len() as u64).to_le_bytes());
    for s in segs {
        out.extend_from_slice(&s.id.0.to_le_bytes());
        out.extend_from_slice(&s.base.0.to_le_bytes());
        out.extend_from_slice(&s.words.to_le_bytes());
    }
    out
}

fn decode_meta(bytes: &[u8]) -> Vec<(SegmentId, Addr, u64)> {
    if bytes.len() < 8 {
        return Vec::new();
    }
    let rd = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    let count = rd(0) as usize;
    (0..count)
        .filter(|i| 8 * (1 + 3 * (i + 1)) <= bytes.len())
        .map(|i| (SegmentId(rd(1 + 3 * i)), Addr(rd(2 + 3 * i)), rd(3 + 3 * i)))
        .collect()
}

/// Maximum segments a bunch's checkpoint metadata region can describe.
const META_CAP: usize = 1024;

// ---------------------------------------------------------------------
// Node metadata (crash-amnesia recovery manifest).
// ---------------------------------------------------------------------

/// Region id carrying a node's recovery manifest. Offset by `1 << 32` from
/// the top of the id space so it can never collide with a bunch's meta
/// region (`u64::MAX - bunch`) or a segment region (small ids counting up).
fn node_meta_region(node: NodeId) -> RegionId {
    RegionId(u64::MAX - (1u64 << 32) - node.0 as u64)
}

/// First word of a written node-meta region (an all-zero region means the
/// node never checkpointed).
const NODE_META_MAGIC: u64 = 0x424D_585F_4E4F_4445; // "BMX_NODE"
/// Maximum mutator roots the manifest can carry.
const NODE_META_ROOTS_CAP: usize = 4096;
/// Maximum checkpointed bunches the manifest can list.
const NODE_META_BUNCH_CAP: usize = 1024;

fn node_meta_bytes() -> usize {
    8 * (5 + NODE_META_ROOTS_CAP + NODE_META_BUNCH_CAP)
}

/// Everything a node needs besides the bunch images to come back: the OID
/// mint cursor (so post-restart allocations cannot collide with surviving
/// pre-crash objects), the rejoin epoch, the mutator roots, and the list of
/// checkpointed bunches to replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeMeta {
    /// The node's OID mint counter at checkpoint time.
    pub next_oid: u64,
    /// Rejoin epochs completed before the checkpoint (restart resumes
    /// strictly above this).
    pub rejoin_epoch: u64,
    /// The node's mutator roots (re-registered after replay).
    pub roots: Vec<Addr>,
    /// Every bunch with a checkpoint in this store.
    pub bunches: Vec<BunchId>,
}

fn encode_node_meta(meta: &NodeMeta) -> Vec<u8> {
    let roots = &meta.roots[..meta.roots.len().min(NODE_META_ROOTS_CAP)];
    let bunches = &meta.bunches[..meta.bunches.len().min(NODE_META_BUNCH_CAP)];
    let mut out = Vec::with_capacity(8 * (5 + roots.len() + bunches.len()));
    out.extend_from_slice(&NODE_META_MAGIC.to_le_bytes());
    out.extend_from_slice(&meta.next_oid.to_le_bytes());
    out.extend_from_slice(&meta.rejoin_epoch.to_le_bytes());
    out.extend_from_slice(&(roots.len() as u64).to_le_bytes());
    for r in roots {
        out.extend_from_slice(&r.0.to_le_bytes());
    }
    out.extend_from_slice(&(bunches.len() as u64).to_le_bytes());
    for b in bunches {
        out.extend_from_slice(&(b.0 as u64).to_le_bytes());
    }
    out
}

fn decode_node_meta(bytes: &[u8]) -> Option<NodeMeta> {
    if bytes.len() < 40 {
        return None;
    }
    let rd = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
    if rd(0) != NODE_META_MAGIC {
        return None;
    }
    let mut meta = NodeMeta {
        next_oid: rd(1),
        rejoin_epoch: rd(2),
        ..NodeMeta::default()
    };
    let root_count = rd(3) as usize;
    if bytes.len() < 8 * (5 + root_count) {
        return None;
    }
    for i in 0..root_count {
        meta.roots.push(Addr(rd(4 + i)));
    }
    let bunch_count = rd(4 + root_count) as usize;
    if bytes.len() < 8 * (5 + root_count + bunch_count) {
        return None;
    }
    for i in 0..bunch_count {
        meta.bunches.push(BunchId(rd(5 + root_count + i) as u32));
    }
    Some(meta)
}

/// Writes the node's recovery manifest as one recoverable transaction.
/// Called after every post-BGC bunch checkpoint so the manifest always
/// names the freshest checkpointed set.
pub fn checkpoint_node_meta(
    cluster: &mut Cluster,
    node: NodeId,
    rvm: &mut Rvm,
    meta: &NodeMeta,
) -> Result<()> {
    rvm.map(node_meta_region(node), node_meta_bytes())?;
    let bytes = encode_node_meta(meta);
    let tid = rvm.begin()?;
    rvm.set_range(tid, node_meta_region(node), 0, &bytes)?;
    rvm.commit(tid)?;
    cluster.stats[node.0 as usize].bump(StatKind::RvmLogRecords);
    cluster.stats[node.0 as usize].add(StatKind::RvmBytesLogged, bytes.len() as u64);
    Ok(())
}

/// Reads the node's recovery manifest back; `None` when the node never
/// checkpointed (an all-zero or missing region).
pub fn recover_node_meta(node: NodeId, rvm: &mut Rvm) -> Result<Option<NodeMeta>> {
    rvm.map(node_meta_region(node), node_meta_bytes())?;
    let bytes = rvm.read(node_meta_region(node), 0, node_meta_bytes())?;
    Ok(decode_node_meta(bytes))
}

/// Writes every locally mapped segment of `bunch` at `node` into `rvm`,
/// together with the bunch's segment table, as one recoverable transaction.
/// Returns the segment ids checkpointed.
pub fn checkpoint_bunch(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    rvm: &mut Rvm,
) -> Result<Vec<SegmentId>> {
    let seg_infos: Vec<bmx_addr::SegmentInfo> = {
        let srv = cluster.server.borrow();
        srv.bunch(bunch)?
            .segments
            .iter()
            .filter(|&&s| cluster.mems[node.0 as usize].has_segment(s))
            .map(|&s| srv.segment(s))
            .collect::<Result<Vec<_>>>()?
    };
    if seg_infos.is_empty() {
        return Err(BmxError::BunchUnmapped { node, bunch });
    }
    // Map all regions first (sizing them from the images).
    rvm.map(meta_region(bunch), 8 * (1 + 3 * META_CAP))?;
    let mut images = Vec::new();
    for info in &seg_infos {
        let seg = cluster.mems[node.0 as usize].segment(info.id)?;
        let bytes = encode_segment(seg);
        rvm.map(RegionId(info.id.0), region_capacity(info.words as usize))?;
        images.push((info.id, bytes));
    }
    let tid = rvm.begin()?;
    rvm.set_range(tid, meta_region(bunch), 0, &encode_meta(&seg_infos))?;
    for (sid, bytes) in &images {
        rvm.set_range(tid, RegionId(sid.0), 0, bytes)?;
        cluster.stats[node.0 as usize].bump(StatKind::RvmLogRecords);
        cluster.stats[node.0 as usize].add(StatKind::RvmBytesLogged, bytes.len() as u64);
    }
    rvm.commit(tid)?;
    Ok(seg_infos.into_iter().map(|s| s.id).collect())
}

/// Persistence by reachability (paper, Sections 1 and 2.1): "objects that
/// are no longer reachable from the persistent root should not be stored
/// on disk".
///
/// Runs a bunch collection (compacting the live objects into to-space),
/// completes the from-space reuse protocol (so retired segments carry no
/// garbage bytes), and only then checkpoints — the disk image holds
/// exactly the reachable data. Returns the checkpointed segments.
pub fn checkpoint_reachable(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    rvm: &mut Rvm,
) -> Result<Vec<SegmentId>> {
    cluster.run_bgc(node, bunch)?;
    // Best effort: if remote replicas stall the reuse protocol the
    // checkpoint still proceeds (retired segments then carry forwarding
    // headers, which recovery understands).
    let _ = cluster.reuse_from_space(node, bunch);
    checkpoint_bunch(cluster, node, bunch, rvm)
}

/// Rebuilds `bunch` at `node` from `rvm` after a crash: reinstalls the
/// segment images, repopulates the object directory, and re-registers the
/// recovered objects with the DSM as locally owned.
///
/// Ownership recovery is node-local: the recovering node is made owner of
/// every object it recovered (the single-node recovery scenario of
/// experiment E9; cross-node ownership recovery would need the consistency
/// protocol's own crash story, which the paper does not give).
pub fn recover_bunch(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    rvm: &mut Rvm,
) -> Result<usize> {
    recover_bunch_inner(cluster, node, bunch, rvm, true).map(|(segs, _)| segs)
}

/// [`recover_bunch`] minus the node-local ownership claim: reinstalls the
/// images and directory but registers *nothing* with the DSM. Returns the
/// recovered segment count and the non-forwarded objects found, so the
/// epoch-based rejoin handshake can reconcile ownership with the surviving
/// peers instead of unilaterally claiming it (which would mint a second
/// owner whenever a survivor took the token over before the crash).
pub fn recover_bunch_live(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    rvm: &mut Rvm,
) -> Result<(usize, Vec<bmx_common::Oid>)> {
    recover_bunch_inner(cluster, node, bunch, rvm, false)
}

fn recover_bunch_inner(
    cluster: &mut Cluster,
    node: NodeId,
    bunch: BunchId,
    rvm: &mut Rvm,
    claim_ownership: bool,
) -> Result<(usize, Vec<bmx_common::Oid>)> {
    // Re-adopt the checkpointed segment layout into the (possibly fresh)
    // segment server before touching the images.
    rvm.map(meta_region(bunch), 8 * (1 + 3 * META_CAP))?;
    let meta = decode_meta(rvm.read(meta_region(bunch), 0, 8 * (1 + 3 * META_CAP))?);
    for (id, base, words) in meta {
        cluster
            .server
            .borrow_mut()
            .adopt_segment(bunch, id, base, words)?;
    }
    let seg_infos: Vec<_> = {
        let srv = cluster.server.borrow();
        srv.bunch(bunch)?
            .segments
            .iter()
            .map(|&s| srv.segment(s))
            .collect::<Result<Vec<_>>>()?
    };
    let mut recovered = 0;
    let mem = &mut cluster.mems[node.0 as usize];
    for info in seg_infos {
        let region = RegionId(info.id.0);
        let byte_len = region_capacity(info.words as usize);
        rvm.map(region, byte_len)?;
        let bytes = rvm.read(region, 0, byte_len)?;
        // A region of all zeroes means this segment was never checkpointed.
        if bytes.iter().all(|&b| b == 0) {
            continue;
        }
        let seg = decode_segment(info, bytes)?;
        mem.install_segment(seg);
        recovered += 1;
    }
    if recovered == 0 {
        return Ok((0, Vec::new()));
    }
    cluster.gc.note_mapping(bunch, node);
    let brs = cluster.gc.node_mut(node).bunch_or_default(bunch);
    if brs.alloc_segments.is_empty() {
        brs.alloc_segments = cluster
            .server
            .borrow()
            .bunch(bunch)?
            .segments
            .iter()
            .copied()
            .filter(|&s| cluster.mems[node.0 as usize].has_segment(s))
            .collect();
    }
    // Repopulate the directory and DSM records from the recovered headers.
    let seg_ids = cluster.mems[node.0 as usize].mapped_segments();
    let mut found: Vec<(bmx_common::Oid, Addr, Addr)> = Vec::new();
    for sid in seg_ids {
        let mem = &cluster.mems[node.0 as usize];
        let Ok(seg) = mem.segment(sid) else { continue };
        if seg.info.bunch != bunch {
            continue;
        }
        for addr in object::objects_in(seg) {
            let v = object::view(mem, addr)?;
            found.push((
                v.oid,
                addr,
                if v.is_forwarded() {
                    v.forwarding
                } else {
                    Addr::NULL
                },
            ));
        }
    }
    let mut live = Vec::new();
    for (oid, addr, fwd) in found {
        let dir = &mut cluster.gc.node_mut(node).directory;
        if fwd.is_null() {
            dir.set_addr(oid, addr);
            if claim_ownership {
                cluster.engine.register_alloc(node, oid, bunch);
            } else {
                live.push(oid);
            }
        } else {
            dir.record_move(oid, addr, fwd);
            let cur = dir.resolve(fwd);
            dir.set_addr(oid, cur);
        }
    }
    Ok((recovered, live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::mutator::ObjSpec;
    use bmx_rvm::RvmOptions;
    use std::path::PathBuf;

    fn fresh_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bmx-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpoint_then_crash_then_recover() {
        let dir = fresh_dir("roundtrip");
        let n0 = NodeId(0);
        let (bunch, a, b, val) = {
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let bunch = c.create_bunch(n0).unwrap();
            let a = c.alloc(n0, bunch, &ObjSpec::with_refs(2, &[1])).unwrap();
            let b = c.alloc(n0, bunch, &ObjSpec::data(1)).unwrap();
            c.write_data(n0, a, 0, 314).unwrap();
            c.write_ref(n0, a, 1, b).unwrap();
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
            checkpoint_bunch(&mut c, n0, bunch, &mut rvm).unwrap();
            // Crash: cluster and rvm are dropped without truncation.
            (bunch, a, b, 314)
        };
        // A fresh cluster sharing the same (recreated) address layout.
        let mut c2 = Cluster::new(ClusterConfig::with_nodes(1));
        let bunch2 = c2.create_bunch(n0).unwrap();
        assert_eq!(bunch2, bunch, "deterministic bunch numbering");
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        let n = recover_bunch(&mut c2, n0, bunch2, &mut rvm).unwrap();
        assert!(n >= 1);
        assert_eq!(c2.read_data(n0, a, 0).unwrap(), val);
        assert_eq!(c2.read_ref(n0, a, 1).unwrap(), b);
    }

    #[test]
    fn uncheckpointed_changes_do_not_survive() {
        let dir = fresh_dir("lost");
        let n0 = NodeId(0);
        let (bunch, a) = {
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let bunch = c.create_bunch(n0).unwrap();
            let a = c.alloc(n0, bunch, &ObjSpec::data(1)).unwrap();
            c.write_data(n0, a, 0, 1).unwrap();
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
            checkpoint_bunch(&mut c, n0, bunch, &mut rvm).unwrap();
            // Post-checkpoint mutation, then crash without checkpointing.
            c.write_data(n0, a, 0, 2).unwrap();
            (bunch, a)
        };
        let mut c2 = Cluster::new(ClusterConfig::with_nodes(1));
        c2.create_bunch(n0).unwrap();
        let mut rvm = Rvm::open(&dir, RvmOptions::default()).unwrap();
        recover_bunch(&mut c2, n0, bunch, &mut rvm).unwrap();
        assert_eq!(c2.read_data(n0, a, 0).unwrap(), 1, "pre-checkpoint value");
    }
}
