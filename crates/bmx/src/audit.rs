//! The cluster auditor: whole-system invariant checking for tests.
//!
//! A garbage collector's bugs rarely announce themselves at the faulting
//! operation; they surface collections later as a dangling pointer or a
//! silently resurrected object. The auditor walks the *entire* cluster and
//! cross-checks the structural invariants the design promises, so test
//! suites can call [`audit`] after any scenario and fail at the first
//! inconsistency instead of the last symptom:
//!
//! 1. **Header/directory agreement** — every non-forwarded object header
//!    agrees with the node's directory about its OID's current address, and
//!    forwarding headers agree with the directory's forwarding knowledge.
//! 2. **Reference sanity** — every pointer field of every live object
//!    resolves (through local forwarding) to either null, a mapped object
//!    header, or an address outside the locally mapped space (a remote-only
//!    bunch — legal under weak consistency).
//! 3. **DSM ownership** — every OID with any replica record has exactly one
//!    owner node, and the owner holds a token (owner ⇒ consistent copy).
//! 4. **SSP bipartiteness** — every intra-bunch stub's scion site is a
//!    known node; every intra scion's stub holder likewise; inter-bunch
//!    stub/scion id spaces are consistent per creating node.
//! 5. **Root validity** — every mutator root resolves to a live local
//!    object header.

use std::collections::BTreeMap;

use bmx_addr::object;
use bmx_common::{Addr, NodeId, Oid};
use bmx_dsm::Token;

use crate::cluster::Cluster;

/// One inconsistency found by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The node it was found on (or the owner-check's subject).
    pub node: NodeId,
    /// Human-readable description.
    pub what: String,
}

/// Walks the whole cluster and returns every invariant violation found.
pub fn audit(cluster: &Cluster) -> Vec<Finding> {
    let mut findings = Vec::new();
    let nodes = cluster.nodes();

    // Per-node structural checks.
    for i in 0..nodes {
        let node = NodeId(i);
        audit_node(cluster, node, &mut findings);
    }

    // Global ownership: exactly one owner per live OID.
    let mut owners: BTreeMap<Oid, Vec<NodeId>> = BTreeMap::new();
    for i in 0..nodes {
        let node = NodeId(i);
        for (oid, st) in cluster.engine.replicas(node) {
            if st.is_owner {
                owners.entry(oid).or_default().push(node);
            }
        }
    }
    for i in 0..nodes {
        let node = NodeId(i);
        for (oid, _) in cluster.engine.replicas(node) {
            match owners.get(&oid).map(Vec::len).unwrap_or(0) {
                1 => {}
                0 => findings.push(Finding {
                    node,
                    what: format!("{oid} has replicas but no owner anywhere"),
                }),
                n => findings.push(Finding {
                    node,
                    what: format!("{oid} has {n} owners: {:?}", owners[&oid]),
                }),
            }
        }
    }
    for (oid, owner_nodes) in &owners {
        for &o in owner_nodes {
            let st = cluster.engine.obj_state(o, *oid).expect("owner has state");
            if st.token == Token::None {
                findings.push(Finding {
                    node: o,
                    what: format!("owner of {oid} holds no token (owner must stay consistent)"),
                });
            }
        }
    }
    findings
}

fn audit_node(cluster: &Cluster, node: NodeId, findings: &mut Vec<Finding>) {
    let ns = cluster.gc.node(node);
    let mem = &cluster.mems[node.0 as usize];
    let mut push = |what: String| findings.push(Finding { node, what });

    // 1 & 2: headers, directory, references.
    for sid in mem.mapped_segments() {
        let Ok(seg) = mem.segment(sid) else { continue };
        for addr in object::objects_in(seg) {
            let Ok(v) = object::view(mem, addr) else {
                push(format!("object-map bit without readable header at {addr}"));
                continue;
            };
            if v.is_forwarded() {
                let resolved = ns.directory.resolve(addr);
                if resolved == addr {
                    push(format!(
                        "forwarding header at {addr} unknown to the directory"
                    ));
                }
                continue;
            }
            // Live object: the directory's current address for its OID, if
            // tracked, must be this address.
            if let Some(cur) = ns.directory.addr_of(v.oid) {
                if cur != addr {
                    push(format!(
                        "directory says {} is at {cur}, header found at {addr}",
                        v.oid
                    ));
                }
            }
            match object::ref_fields(mem, addr) {
                Ok(fields) => {
                    for (f, t) in fields {
                        if t.is_null() {
                            continue;
                        }
                        let cur = ns.directory.resolve(t);
                        if !mem.is_mapped(cur) {
                            // Legal only if the target's bunch is not mapped
                            // locally at all (a purely remote reference).
                            if let Some(b) = cluster.server.borrow().bunch_of(cur) {
                                if ns.bunches.contains_key(&b) {
                                    push(format!(
                                        "{addr}.{f} -> {cur}: unmapped address in a locally mapped bunch"
                                    ));
                                }
                            } else {
                                push(format!("{addr}.{f} -> {cur}: address outside every bunch"));
                            }
                        } else if object::view(mem, cur).is_err() {
                            push(format!("{addr}.{f} -> {cur}: no object header there"));
                        }
                    }
                }
                Err(e) => push(format!("cannot scan fields of {addr}: {e}")),
            }
        }
    }

    // 4: SSP endpoint sanity.
    let node_count = cluster.nodes();
    for brs in ns.bunches.values() {
        for s in brs.stub_table.intra() {
            if s.scion_at.0 >= node_count {
                push(format!(
                    "intra stub for {} names unknown node {}",
                    s.oid, s.scion_at
                ));
            }
            if s.scion_at == node {
                push(format!("intra stub for {} points at its own node", s.oid));
            }
        }
        for s in brs.scion_table.intra() {
            if s.stub_at.0 >= node_count {
                push(format!(
                    "intra scion for {} names unknown node {}",
                    s.oid, s.stub_at
                ));
            }
        }
        for s in brs.stub_table.inter() {
            if s.scion_at.0 >= node_count {
                push(format!("inter stub {:?} names unknown scion site", s.id));
            }
        }
        for s in brs.scion_table.inter() {
            if s.source_node.0 >= node_count {
                push(format!("inter scion {:?} names unknown source node", s.id));
            }
        }
    }

    // 5: roots resolve to live headers.
    for (&rid, &addr) in &ns.roots {
        if addr.is_null() {
            continue;
        }
        let cur = ns.directory.resolve(addr);
        match object::view(mem, cur) {
            Ok(v) if v.is_forwarded() => push(format!(
                "root {rid} resolves to a forwarding header at {cur}"
            )),
            Ok(_) => {}
            Err(_) => push(format!(
                "root {rid} at {addr} resolves to {cur}: not an object"
            )),
        }
    }
}

/// Checks that every address in `expected_live` still resolves (through the
/// node's forwarding directory) to a live, non-forwarded object header — the
/// "zero premature reclamation" gate for chaos runs: whatever the fault plan
/// did to the message plane, an object the mutator can still reach must
/// never have been collected.
pub fn audit_liveness(cluster: &Cluster, expected_live: &[(NodeId, Addr)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(node, addr) in expected_live {
        let ns = cluster.gc.node(node);
        let mem = &cluster.mems[node.0 as usize];
        let cur = ns.directory.resolve(addr);
        match object::view(mem, cur) {
            Ok(v) if v.is_forwarded() => findings.push(Finding {
                node,
                what: format!(
                    "live object at {addr} resolves to an unresolved forwarding header at {cur}"
                ),
            }),
            Ok(_) => {}
            Err(_) => findings.push(Finding {
                node,
                what: format!("live object at {addr} (resolved {cur}) was reclaimed"),
            }),
        }
    }
    findings
}

/// Panics if any of `expected_live` was prematurely reclaimed, or if the
/// structural audit finds an inconsistency. The combined check chaos tests
/// run after every fault schedule completes.
pub fn assert_no_premature_reclamation(cluster: &Cluster, expected_live: &[(NodeId, Addr)]) {
    let mut findings = audit_liveness(cluster, expected_live);
    findings.extend(audit(cluster));
    assert!(
        findings.is_empty(),
        "chaos audit found {} problems:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  [{:?}] {}", f.node, f.what))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Panics with a readable report if the cluster violates any invariant.
pub fn assert_clean(cluster: &Cluster) {
    let findings = audit(cluster);
    assert!(
        findings.is_empty(),
        "cluster audit found {} problems:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  [{:?}] {}", f.node, f.what))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::mutator::ObjSpec;

    #[test]
    fn clean_cluster_audits_clean() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let a = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).unwrap();
        let t = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
        c.write_ref(n0, a, 0, t).unwrap();
        c.add_root(n0, a);
        c.map_bunch(NodeId(1), b, n0).unwrap();
        c.run_bgc(n0, b).unwrap();
        c.run_bgc(NodeId(1), b).unwrap();
        assert_clean(&c);
    }

    #[test]
    fn auditor_catches_a_planted_dangling_reference() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(1));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let a = c.alloc(n0, b, &ObjSpec::with_refs(1, &[0])).unwrap();
        c.add_root(n0, a);
        // Plant corruption behind the API's back: a pointer into the void
        // of the mapped segment.
        let bogus = a.add_words(40);
        bmx_addr::object::write_ref_field(&mut c.mems[0], a, 0, bogus).unwrap();
        let findings = audit(&c);
        assert!(
            findings.iter().any(|f| f.what.contains("no object header")),
            "expected a dangling-reference finding, got {findings:?}"
        );
    }

    #[test]
    fn auditor_catches_a_planted_double_owner() {
        let mut c = Cluster::new(ClusterConfig::with_nodes(2));
        let n0 = NodeId(0);
        let b = c.create_bunch(n0).unwrap();
        let a = c.alloc(n0, b, &ObjSpec::data(1)).unwrap();
        c.map_bunch(NodeId(1), b, n0).unwrap();
        let oid = c.oid_at_local(n0, a).unwrap();
        // Corrupt the protocol state directly.
        c.engine.register_alloc(NodeId(1), oid, b);
        let findings = audit(&c);
        assert!(
            findings.iter().any(|f| f.what.contains("2 owners")),
            "expected a double-owner finding, got {findings:?}"
        );
    }
}
