//! The scheduler half of the transport seam: *drivers* move pending
//! envelopes into the protocol state machine.
//!
//! The protocol code in `crates/dsm` and `crates/core` never schedules
//! itself — it reacts to delivered messages. What varies between the two
//! execution modes is *who* delivers:
//!
//! * [`TickDriver`] — the deterministic mode. One driver advances the
//!   discrete-event clock and dispatches every due envelope, whichever
//!   node it addresses. Bit-exact, seed-replayable; what chaos replay,
//!   trace invariants, and CI run on.
//! * [`LinkDriver`] — the parallel mode. One driver *per node*, each
//!   polling only its own inboxes on a shared
//!   [`ChannelTransport`](bmx_net::ChannelTransport) and applying
//!   envelopes under the caller-held protocol state. `bmx::parallel`
//!   runs one of these per OS thread.
//!
//! The conformance suite (`tests/parallel_conformance.rs`) drives both
//! modes through this same trait, which is what makes the differential
//! comparison an apples-to-apples statement about the protocol rather
//! than about two unrelated event loops.

use std::sync::Arc;

use bmx_common::{NodeId, Result};
use bmx_net::Transport;
use bmx_profile::{self as profile, SpanKind};

use crate::cluster::Cluster;
use crate::msg::ClusterMsg;

/// A message-delivery engine for one execution mode.
pub trait Driver {
    /// Delivers some pending envelopes into `cluster`. Returns how many
    /// were applied; `0` means nothing was pending for this driver.
    fn poll(&mut self, cluster: &mut Cluster) -> Result<usize>;

    /// Whether no deliverable work remains for this driver.
    fn is_idle(&self, cluster: &Cluster) -> bool;
}

/// The deterministic tick-loop driver: one instance serves the whole
/// cluster by advancing the simulated clock.
#[derive(Default)]
pub struct TickDriver;

impl Driver for TickDriver {
    fn poll(&mut self, cluster: &mut Cluster) -> Result<usize> {
        if cluster.net.in_flight() == 0 {
            return Ok(0);
        }
        cluster.step(1)?;
        Ok(1)
    }

    fn is_idle(&self, cluster: &Cluster) -> bool {
        cluster.net.in_flight() == 0
    }
}

/// A per-node driver over a shared transport (plain channels or the
/// fault-injecting wrapper): polls only this node's inboxes and applies
/// one envelope per [`Driver::poll`] call.
pub struct LinkDriver {
    node: NodeId,
    transport: Arc<dyn Transport<ClusterMsg>>,
}

impl LinkDriver {
    /// A driver delivering into `node` from `transport`.
    pub fn new(node: NodeId, transport: Arc<dyn Transport<ClusterMsg>>) -> Self {
        LinkDriver { node, transport }
    }

    /// The node this driver serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Pops this node's next pending envelope without applying it (the
    /// parallel runtime separates pop from apply so it can take the
    /// protocol lock only for the apply).
    pub fn next_pending(&self) -> Option<bmx_net::Envelope<ClusterMsg>> {
        self.transport.try_recv(self.node)
    }

    /// Accounts a popped envelope as fully applied (or discarded whole).
    pub fn ack(&self) {
        self.transport.ack_delivered();
    }
}

impl Driver for LinkDriver {
    fn poll(&mut self, cluster: &mut Cluster) -> Result<usize> {
        match self.transport.try_recv(self.node) {
            Some(env) => {
                // Same apply attribution as the parallel runtime's own
                // driver loop: callers that poll a LinkDriver directly
                // (threaded actors, conformance harnesses) profile
                // identically to `bmx::parallel`.
                let _apply = profile::span_with_flow(SpanKind::DriverApply, self.node, env.span);
                let r = cluster.deliver(env);
                self.transport.ack_delivered();
                r.map(|()| 1)
            }
            None => Ok(0),
        }
    }

    fn is_idle(&self, _cluster: &Cluster) -> bool {
        self.transport.in_flight() == 0
    }
}
