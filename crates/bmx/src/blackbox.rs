//! Post-mortem blackbox: when the parallel runtime dies badly, dump
//! everything a human needs to diagnose it — automatically.
//!
//! A chaos-soak failure or a nightly watchdog alarm used to arrive as a
//! bare assertion message; reconstructing *why* meant re-running the
//! seed locally with ad-hoc printf timing. The blackbox closes that
//! loop: a harness **arms** it with a label (typically the workload
//! seed), and when a watchdog alarm fires, a node's failure domain
//! crashes on a genuine panic/protocol error, or the harness itself
//! fails, the runtime writes `target/blackbox/<label>/` containing
//!
//! * `reason.txt` — why the dump happened (appended, wall-clock
//!   stamped, so repeated triggers in one episode stay readable);
//! * `spans.trace.json` — the wall-clock profiler's last-N spans per
//!   thread as a Perfetto trace ([`bmx_profile::chrome`]);
//! * `metrics.json` — a registry snapshot stamped with capture time and
//!   node generations ([`bmx_metrics::Snapshot::stamp_meta`]), so dumps
//!   from different threads/nodes are orderable after the fact;
//! * `flight.trace.json` — the causal flight recorder's retained events
//!   as a Chrome trace (non-draining: [`bmx_trace::snapshot_global`]).
//!
//! Arming is process-global (the parallel runtime's failure paths have
//! no harness context to thread a handle through) and **off by
//! default**: a green run writes nothing, which is exactly what CI
//! checks — nightly fails if `target/blackbox/` is non-empty on a
//! passing run, so every dump is either a diagnosed failure or a bug in
//! the triggers.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use bmx_metrics::Registry;
use bmx_profile as profile;
use bmx_trace as trace;

static ARMED: Mutex<Option<String>> = Mutex::new(None);

fn armed_label() -> std::sync::MutexGuard<'static, Option<String>> {
    ARMED.lock().unwrap_or_else(|p| p.into_inner())
}

/// Maps a free-form label (a `{seed:#x}`, a test name) onto a safe
/// directory name.
fn sanitize(label: &str) -> String {
    let cleaned: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unlabelled".into()
    } else {
        cleaned
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Arms the blackbox: from now until [`disarm`], any trigger dumps to
/// `target/blackbox/<label>/`. Re-arming replaces the label.
pub fn arm(label: &str) {
    *armed_label() = Some(sanitize(label));
}

/// Disarms the blackbox. Harnesses call this on their *success* path,
/// so a passing run leaves `target/blackbox/` empty for the CI gate.
pub fn disarm() {
    *armed_label() = None;
}

/// The label the blackbox is currently armed with, if any.
pub fn armed() -> Option<String> {
    armed_label().clone()
}

/// Dumps if armed; returns the dump directory when one was written.
/// Failure paths call this unconditionally — the armed check is the
/// policy, the caller just reports what happened.
pub fn dump_if_armed(
    reason: &str,
    reg: Option<&Registry>,
    generations: &[(u32, u64)],
) -> Option<PathBuf> {
    let label = armed_label().clone()?;
    dump(&label, reason, reg, generations).ok()
}

/// Writes one blackbox dump to `target/blackbox/<label>/`, regardless of
/// the armed state (test harnesses dump explicitly on their own failure
/// paths). Repeated dumps under one label overwrite the span/metric/
/// flight files — last writer wins, which is the incarnation closest to
/// the death — while `reason.txt` appends, keeping the full trigger
/// history.
pub fn dump(
    label: &str,
    reason: &str,
    reg: Option<&Registry>,
    generations: &[(u32, u64)],
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target")
        .join("blackbox")
        .join(sanitize(label));
    fs::create_dir_all(&dir)?;

    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("reason.txt"))?;
    writeln!(f, "[{} ms unix] {reason}", unix_ms())?;

    fs::write(
        dir.join("spans.trace.json"),
        profile::chrome::export(&profile::snapshot_all()),
    )?;

    if let Some(reg) = reg {
        let mut snap = reg.snapshot();
        snap.stamp_meta(generations);
        fs::write(dir.join("metrics.json"), bmx_metrics::json::to_json(&snap))?;
    }

    fs::write(
        dir.join("flight.trace.json"),
        trace::chrome::export(&trace::snapshot_global()),
    )?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sanitized() {
        assert_eq!(sanitize("seed-0xabc"), "seed-0xabc");
        assert_eq!(sanitize("soak seed 0x2"), "soak-seed-0x2");
        // Separators never survive: a label cannot escape the dump dir.
        assert_eq!(sanitize("../../etc/passwd"), "..-..-etc-passwd");
        assert_eq!(sanitize(""), "unlabelled");
    }

    #[test]
    fn arm_disarm_roundtrip() {
        disarm();
        assert!(armed().is_none());
        arm("seed 0x1");
        assert_eq!(armed().as_deref(), Some("seed-0x1"));
        disarm();
        assert!(armed().is_none());
        assert!(dump_if_armed("nothing armed", None, &[]).is_none());
    }
}
