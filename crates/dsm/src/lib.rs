//! Entry-consistency distributed shared memory for BMX.
//!
//! The BMX platform keeps bunches weakly consistent with the *entry
//! consistency* protocol (paper, Section 2.2): per object there are either
//! several read tokens or one exclusive write token. A node holding a read
//! token reads a consistent version; holding the write token means no other
//! consistent copy exists anywhere. Every object has an *owner* — the node
//! holding, or the last node to have held, the write token. Write tokens are
//! obtained from the owner; read tokens from any node already holding one.
//! Tokens are managed with an algorithm similar to Li's dynamic distributed
//! manager with distributed copy-sets: the copy-set of an object is spread
//! over the granting nodes, and *ownerPtr* forwarding pointers route
//! owner-bound requests.
//!
//! Crate layout:
//!
//! * [`state`] — per-node, per-object protocol state (token, owner flag,
//!   ownerPtr hint, copy-set, entering ownerPtrs, critical-section lock);
//! * [`msg`] — the protocol messages plus the [`msg::DsmPacket`] wrapper
//!   that carries piggy-backed GC payloads on every message;
//! * [`integration`] — the [`integration::GcIntegration`] trait through
//!   which the collector participates in the protocol (the three invariants
//!   of the paper's Section 5) *without ever acquiring a token*: the trait
//!   deliberately has no way to request one;
//! * [`engine`] — the protocol engine: acquire/release operations and the
//!   message handler, written against abstract send/memory/GC interfaces so
//!   the cluster driver in `bmx` (and the unit tests here) can pump it
//!   deterministically.

pub mod engine;
pub mod integration;
pub mod msg;
pub mod state;

pub use engine::{AcquireStart, DsmEngine, DsmShared};
pub use integration::{GcIntegration, NullGcIntegration};
pub use msg::{DsmMsg, DsmPacket, IntraSspCreate, Relocation};
pub use state::{ObjState, Token};
