//! DSM protocol messages and the piggy-back wrapper.

use std::collections::BTreeSet;

use bmx_addr::object::ObjectImage;
use bmx_common::{Addr, BunchId, NodeId, Oid};
use bmx_net::WireSize;

/// A relocation record: object `oid` moved from `from` to `to` at some node.
///
/// These are the paper's lazily propagated "new location" notices
/// (Section 4.4). They ride on consistency-protocol messages whenever
/// possible and in explicit background messages only for the from-space
/// reuse protocol (Section 4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// The relocated object.
    pub oid: Oid,
    /// The from-space address (where a forwarding header remains).
    pub from: Addr,
    /// The to-space address.
    pub to: Addr,
}

/// A request to create an intra-bunch stub, piggy-backed on a write-token
/// grant (invariant 3 of Section 5).
///
/// Intra-bunch SSPs run opposite to the ownerPtr: the *stub* lives at the
/// new owner, the *scion* at the old owner (paper, Section 3.1, the
/// N1-to-N2 SSP of Figure 1). `old_owner` holds inter-bunch stubs (or an
/// intra-bunch stub) for the object and has already created the matching
/// intra-bunch scion before replying with the grant; the new owner must
/// create the intra-bunch stub pointing at it upon reception.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntraSspCreate {
    /// The object whose ownership is moving.
    pub oid: Oid,
    /// Bunch the object belongs to.
    pub bunch: BunchId,
    /// The old owner: site of the intra-bunch scion and of the stubs it
    /// preserves.
    pub old_owner: NodeId,
}

/// The protocol messages proper.
#[derive(Clone, Debug)]
pub enum DsmMsg {
    /// Request for a read token, forwarded along ownerPtrs until it reaches
    /// a node that can grant (any token holder).
    ReadReq {
        /// The object.
        oid: Oid,
        /// The node that wants the token.
        requester: NodeId,
    },
    /// Request for a write token, forwarded along ownerPtrs to the owner.
    WriteReq {
        /// The object.
        oid: Oid,
        /// The node that wants the token.
        requester: NodeId,
    },
    /// Grant of a read token, with the consistent object contents.
    ReadGrant {
        /// The object.
        oid: Oid,
        /// Bunch the object belongs to.
        bunch: BunchId,
        /// The granter's current local address of the object.
        addr: Addr,
        /// Consistent contents.
        image: ObjectImage,
        /// Who the granter believes the owner is (sets the new replica's
        /// ownerPtr).
        owner_hint: NodeId,
        /// Invariant 1: new locations of the object and its direct
        /// referents, as known at the granter.
        relocations: Vec<Relocation>,
    },
    /// Grant of the write token (ownership transfer).
    WriteGrant {
        /// The object.
        oid: Oid,
        /// Bunch the object belongs to.
        bunch: BunchId,
        /// The granter's current local address of the object.
        addr: Addr,
        /// Consistent contents.
        image: ObjectImage,
        /// Invariant 1 payload.
        relocations: Vec<Relocation>,
        /// Invariant 3 payload: intra-bunch stubs the new owner must create.
        intra_ssp: Vec<IntraSspCreate>,
    },
    /// Invalidate the local read replica (transitively) on behalf of a write
    /// transfer; ack to `parent` once the local subtree is invalid.
    Invalidate {
        /// The object.
        oid: Oid,
        /// Where the aggregated ack must go.
        parent: NodeId,
    },
    /// Aggregated invalidation ack from one copy-set subtree.
    InvalidateAck {
        /// The object.
        oid: Oid,
        /// The subtree root that finished invalidating.
        child: NodeId,
    },
    /// Registration of a new replica holder with the owner (keeps the
    /// owner's entering-ownerPtr set complete when reads are granted by
    /// non-owners). Routed along ownerPtrs like a write request.
    RegisterReplica {
        /// The object.
        oid: Oid,
        /// The node that now holds a replica.
        holder: NodeId,
    },
}

impl DsmMsg {
    /// Short tag for logging and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            DsmMsg::ReadReq { .. } => "ReadReq",
            DsmMsg::WriteReq { .. } => "WriteReq",
            DsmMsg::ReadGrant { .. } => "ReadGrant",
            DsmMsg::WriteGrant { .. } => "WriteGrant",
            DsmMsg::Invalidate { .. } => "Invalidate",
            DsmMsg::InvalidateAck { .. } => "InvalidateAck",
            DsmMsg::RegisterReplica { .. } => "RegisterReplica",
        }
    }
}

impl WireSize for DsmMsg {
    fn wire_size(&self) -> u64 {
        match self {
            DsmMsg::ReadReq { .. } | DsmMsg::WriteReq { .. } => 24,
            DsmMsg::ReadGrant {
                image, relocations, ..
            } => 40 + image.wire_size() + 24 * relocations.len() as u64,
            DsmMsg::WriteGrant {
                image,
                relocations,
                intra_ssp,
                ..
            } => {
                40 + image.wire_size() + 24 * relocations.len() as u64 + 24 * intra_ssp.len() as u64
            }
            DsmMsg::Invalidate { .. } | DsmMsg::InvalidateAck { .. } => 20,
            DsmMsg::RegisterReplica { .. } => 24,
        }
    }
}

/// A coalesced envelope: every protocol message bound for one destination
/// in one protocol round, plus everything piggy-backed onto it.
///
/// The engine buffers outgoing messages per `(src, dst)` pair while it
/// processes one protocol round (one mutator operation or one delivered
/// envelope) and flushes a single envelope per destination at the end, so
/// an invalidation round costs one envelope per copy-set *node*, not one
/// per protocol action. The messages are applied in emission order at the
/// receiver.
///
/// Every envelope is a carrier: at flush the engine drains the collector's
/// pending per-destination payloads (lazily buffered relocations —
/// Section 4.4, and invariant-2 forwards) and attaches them here. The
/// receiver applies the piggy-back *before* acting on any of the messages,
/// which is what makes invariant 1 hold at acquire completion.
#[derive(Clone, Debug)]
pub struct DsmPacket {
    /// The protocol messages, in emission order.
    pub msgs: Vec<DsmMsg>,
    /// Piggy-backed relocation records.
    pub piggyback: Vec<Relocation>,
}

impl DsmPacket {
    /// An envelope carrying one message and no piggy-back.
    pub fn single(msg: DsmMsg) -> DsmPacket {
        DsmPacket {
            msgs: vec![msg],
            piggyback: Vec::new(),
        }
    }
}

/// Fixed per-envelope framing overhead (src, dst, seq, counts), in bytes.
pub const ENVELOPE_HEADER_BYTES: u64 = 16;

impl WireSize for DsmPacket {
    fn wire_size(&self) -> u64 {
        ENVELOPE_HEADER_BYTES
            + self.msgs.iter().map(WireSize::wire_size).sum::<u64>()
            + 24 * self.piggyback.len() as u64
    }
}

/// Set of node ids — alias used for copy-set fan-out in handler signatures.
pub type NodeSet = BTreeSet<NodeId>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_grows_with_payload() {
        let small = DsmPacket::single(DsmMsg::ReadReq {
            oid: Oid(1),
            requester: NodeId(0),
        });
        let big = DsmPacket {
            msgs: small.msgs.clone(),
            piggyback: vec![
                Relocation {
                    oid: Oid(2),
                    from: Addr(8),
                    to: Addr(16)
                };
                4
            ],
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn coalesced_envelope_amortizes_framing() {
        let msg = || DsmMsg::Invalidate {
            oid: Oid(1),
            parent: NodeId(0),
        };
        let two_envelopes = DsmPacket::single(msg()).wire_size() * 2;
        let one_envelope = DsmPacket {
            msgs: vec![msg(), msg()],
            piggyback: vec![],
        }
        .wire_size();
        assert_eq!(one_envelope + ENVELOPE_HEADER_BYTES, two_envelopes);
    }

    #[test]
    fn kinds_are_distinct() {
        let a = DsmMsg::ReadReq {
            oid: Oid(1),
            requester: NodeId(0),
        };
        let b = DsmMsg::WriteReq {
            oid: Oid(1),
            requester: NodeId(0),
        };
        assert_ne!(a.kind(), b.kind());
    }
}
