//! The entry-consistency protocol engine.
//!
//! The engine is deliberately transport-agnostic: it never touches the
//! network directly. Operations and the message handler receive a `send`
//! closure; the cluster driver (in `bmx`) wires that closure to the
//! simulated network and pumps deliveries back into [`DsmEngine::handle`].
//! This keeps the protocol unit-testable with a five-line pump and lets the
//! same engine run under the deterministic or the threaded driver.
//!
//! Outgoing messages are *coalesced*: while one protocol round runs (one
//! mutator operation, one delivered envelope), emissions are buffered per
//! destination, and a single envelope per `(src, dst)` pair leaves the node
//! when the round ends. Every envelope drains the collector's piggy-back
//! buffer for its destination ([`GcIntegration::drain_piggyback`]); every
//! incoming envelope applies the attached payload before the protocol
//! actions. Together with the grant-side hooks, this implements the three
//! invariants of the paper's Section 5.

use std::collections::BTreeMap;

use bmx_addr::object::{self, ObjectImage};
use bmx_addr::NodeMemory;
use bmx_common::{Addr, BmxError, BunchId, NodeId, NodeStats, Oid, Result, StatKind};
use bmx_metrics::{self as metrics, Hst};
use bmx_profile as profile;
use bmx_trace::{self as trace, AccessMode, TraceEvent};

use crate::integration::GcIntegration;
use crate::msg::{DsmMsg, DsmPacket, Relocation};
use crate::state::{DsmNodeState, ObjState, PendingInval, PendingWrite, QueuedReq, ReqKind, Token};

/// Mutable context the engine operates in: node memories, per-node counters,
/// and the collector's integration hooks.
pub struct DsmShared<'a> {
    /// One memory per node, indexed by `NodeId`.
    pub mems: &'a mut [NodeMemory],
    /// One counter set per node, indexed by `NodeId`.
    pub stats: &'a mut [NodeStats],
    /// The collector's participation hooks.
    pub gc: &'a mut dyn GcIntegration,
}

/// Send callback: `(src, dst, packet)`.
pub type SendFn<'a> = dyn FnMut(NodeId, NodeId, DsmPacket) + 'a;

/// Outcome of starting an acquire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcquireStart {
    /// The token was already held (or obtainable locally); no messages.
    Satisfied,
    /// A request is in flight; pump the network and check completion.
    Requested,
}

/// The protocol engine for a fixed-size cluster.
pub struct DsmEngine {
    nodes: Vec<DsmNodeState>,
    /// Messages buffered during the current protocol round, keyed by
    /// `(src, dst)`. Drained into one envelope per pair when the round's
    /// public entry point returns; always empty between rounds.
    outbox: BTreeMap<(NodeId, NodeId), Vec<DsmMsg>>,
    /// When `false`, every emission leaves immediately as its own
    /// single-message envelope (the pre-coalescing wire behaviour, kept for
    /// the equivalence tests and as a diagnostic knob).
    coalesce: bool,
    /// Lost-request re-sends issued by [`DsmEngine::nudge_wait`].
    nudges: u64,
    /// Per-`(node, oid)` request-path accounting: `[rx, fwd, queued,
    /// granted]` for write requests handled at `node`. Diagnostic only —
    /// surfaced by [`DsmEngine::describe_object`].
    req_counts: BTreeMap<(NodeId, Oid), [u64; 4]>,
}

impl DsmEngine {
    /// Creates an engine for `n` nodes.
    pub fn new(n: usize) -> Self {
        DsmEngine {
            nodes: (0..n).map(|_| DsmNodeState::default()).collect(),
            outbox: BTreeMap::new(),
            coalesce: true,
            nudges: 0,
            req_counts: BTreeMap::new(),
        }
    }

    /// Switches envelope coalescing on or off (on by default). With it off
    /// the engine reproduces the unbatched one-envelope-per-message wire
    /// behaviour; protocol state transitions are identical either way.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn ns(&self, node: NodeId) -> &DsmNodeState {
        &self.nodes[node.0 as usize]
    }

    fn ns_mut(&mut self, node: NodeId) -> &mut DsmNodeState {
        &mut self.nodes[node.0 as usize]
    }

    // ------------------------------------------------------------------
    // Registration.
    // ------------------------------------------------------------------

    /// Registers a freshly allocated object: `node` owns it and holds the
    /// write token.
    pub fn register_alloc(&mut self, node: NodeId, oid: Oid, bunch: BunchId) {
        self.ns_mut(node)
            .objects
            .insert(oid, ObjState::new_owner(bunch, node));
    }

    /// Registers a replica created by mapping a bunch image from `source`:
    /// the replica starts inconsistent, with its ownerPtr pointing along
    /// `source`'s knowledge of the owner. Sends the entering-ownerPtr
    /// registration toward the owner.
    pub fn register_mapped_replica(
        &mut self,
        node: NodeId,
        oid: Oid,
        bunch: BunchId,
        owner_hint: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) {
        if owner_hint == node {
            // Degenerate mapping from ourselves; nothing to register.
            return;
        }
        self.ns_mut(node)
            .objects
            .insert(oid, ObjState::new_replica(bunch, Token::None, owner_hint));
        self.emit(
            sh,
            send,
            node,
            owner_hint,
            DsmMsg::RegisterReplica { oid, holder: node },
        );
        self.flush_outbox(sh, send);
    }

    // ------------------------------------------------------------------
    // Introspection (used by the collector and the experiments).
    // ------------------------------------------------------------------

    /// Token `node` currently holds for `oid`.
    pub fn token(&self, node: NodeId, oid: Oid) -> Token {
        self.ns(node).get(oid).map_or(Token::None, |s| s.token)
    }

    /// Whether `node` is the owner (holds or last held the write token).
    pub fn is_owner(&self, node: NodeId, oid: Oid) -> bool {
        self.ns(node).get(oid).is_some_and(|s| s.is_owner)
    }

    /// Whether `node` holds any replica of `oid` (even inconsistent).
    pub fn has_replica(&self, node: NodeId, oid: Oid) -> bool {
        self.ns(node).get(oid).is_some()
    }

    /// Full object state, if a replica exists at `node`.
    pub fn obj_state(&self, node: NodeId, oid: Oid) -> Option<&ObjState> {
        self.ns(node).get(oid)
    }

    /// Every replica `node` holds, in `Oid` order.
    pub fn replicas(&self, node: NodeId) -> Vec<(Oid, &ObjState)> {
        self.ns(node).replicas().collect()
    }

    /// The exiting ownerPtrs of `bunch` at `node`: one per non-owned
    /// replica, pointing at the node's current hint of the owner.
    pub fn exiting_owner_ptrs(&self, node: NodeId, bunch: BunchId) -> Vec<(Oid, NodeId)> {
        self.ns(node)
            .replicas()
            .filter(|(_, s)| s.bunch == bunch && !s.is_owner)
            .map(|(o, s)| (o, s.owner_hint))
            .collect()
    }

    /// The entering ownerPtrs of `bunch` at `node`: per owned replica, the
    /// nodes registered as holding replicas that point here.
    pub fn entering_owner_ptrs(&self, node: NodeId, bunch: BunchId) -> Vec<(Oid, Vec<NodeId>)> {
        self.ns(node)
            .replicas()
            .filter(|(_, s)| s.bunch == bunch && !s.entering.is_empty())
            .map(|(o, s)| (o, s.entering.iter().copied().collect()))
            .collect()
    }

    /// Whether the local acquire of `oid` at `node` is still outstanding.
    pub fn is_waiting(&self, node: NodeId, oid: Oid) -> bool {
        self.ns(node).waiting_for.contains_key(&oid)
    }

    /// Write-request accounting at `(node, oid)`: `[rx, forwarded,
    /// queued, transfer-started]`. Zeros if none handled yet.
    pub fn write_req_counts(&self, node: NodeId, oid: Oid) -> [u64; 4] {
        self.req_counts.get(&(node, oid)).copied().unwrap_or([0; 4])
    }

    /// One-line-per-node diagnostic of every replica's view of `oid`:
    /// token, ownership, hint, lock/wait state, and any queued or pending
    /// protocol entries. The chaos harness prints this when an acquire
    /// wedges past its deadline.
    pub fn describe_object(&self, oid: Oid) -> String {
        let mut out = String::new();
        for (i, ns) in self.nodes.iter().enumerate() {
            let Some(st) = ns.get(oid) else { continue };
            out.push_str(&format!(
                "  N{i}: token={:?} owner={} hint=N{} locked={} reserved={} wait={:?} \
                 queued={:?} pending_w={} copy_set={:?} entering={:?}\n",
                st.token,
                st.is_owner,
                st.owner_hint.0,
                st.locked,
                st.reserved,
                ns.waiting_for.get(&oid),
                ns.queued.get(&oid).map_or(&[][..], |q| &q[..]),
                ns.pending_write.contains_key(&oid),
                st.copy_set,
                st.entering,
            ));
            let n = NodeId(i as u32);
            if let Some(rc) = self.req_counts.get(&(n, oid)) {
                out.push_str(&format!(
                    "      wreq rx={} fwd={} queued={} granted={}\n",
                    rc[0], rc[1], rc[2], rc[3]
                ));
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Collector-driven state updates (scion cleaner / BGC reclamation).
    // ------------------------------------------------------------------

    /// Drops the replica record at `node` (the local BGC reclaimed the
    /// object). Returns the dropped state.
    pub fn drop_replica(&mut self, node: NodeId, oid: Oid) -> Option<ObjState> {
        let dropped = self.ns_mut(node).drop_replica(oid);
        if dropped.is_some() {
            trace::emit(node, TraceEvent::ReplicaDrop { oid });
        }
        dropped
    }

    /// Removes `from` from the entering-ownerPtr set of `oid` at `node`
    /// (the scion cleaner learned the remote replica is gone).
    pub fn remove_entering(&mut self, node: NodeId, oid: Oid, from: NodeId) {
        if let Some(s) = self.ns_mut(node).get_mut(oid) {
            s.entering.remove(&from);
        }
    }

    /// Adds `from` to the entering-ownerPtr set of `oid` at `node` (the
    /// scion cleaner learned of a remote replica pointing here).
    pub fn add_entering(&mut self, node: NodeId, oid: Oid, from: NodeId) {
        if let Some(s) = self.ns_mut(node).get_mut(oid) {
            s.entering.insert(from);
        }
    }

    // ------------------------------------------------------------------
    // Crash-amnesia recovery.
    // ------------------------------------------------------------------

    /// Discards every piece of volatile protocol state at `node` — the
    /// object directory, token/ownership caches, queued requests, pending
    /// transfers and invalidations. This models the power-failure half of
    /// an amnesia crash; the rejoin handshake rebuilds the state from the
    /// RVM store and the surviving peers.
    pub fn amnesia_reset(&mut self, node: NodeId) {
        self.nodes[node.0 as usize] = DsmNodeState::default();
    }

    /// Reconciles a surviving node `at` with the fact that `gone` crashed
    /// with amnesia: every in-flight message to or from `gone` was dropped
    /// and `gone` has forgotten it ever sent anything, so bookkeeping that
    /// waits on `gone` would wait forever. Queued requests from `gone` are
    /// dropped, invalidation rounds stop awaiting its ack, and a write
    /// transfer it requested is converted into a self-promotion at the
    /// owner (the owner regains exclusivity; `gone` re-requests after
    /// rejoin if it still cares).
    ///
    /// Entering ownerPtrs that name `gone` are deliberately *kept*: they
    /// are reclamation roots, and dropping them early could let a
    /// collection reclaim an object the restarted node still reaches. The
    /// fresh reachability reports requested during rejoin retire them
    /// through the normal idempotent cleaner path instead.
    pub fn purge_peer(
        &mut self,
        at: NodeId,
        gone: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let r = self.purge_peer_inner(at, gone, sh, send);
        self.flush_outbox(sh, send);
        r
    }

    fn purge_peer_inner(
        &mut self,
        at: NodeId,
        gone: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let ns = self.ns_mut(at);
        // Requests queued by the crashed node: it forgot asking.
        for q in ns.queued.values_mut() {
            q.retain(|r| r.requester != gone);
        }
        ns.queued.retain(|_, q| !q.is_empty());
        // Deferred invalidations whose parent died: the ack would go
        // nowhere, and the parent's transfer died with it.
        for parents in ns.deferred_invals.values_mut() {
            parents.retain(|&p| p != gone);
        }
        ns.deferred_invals.retain(|_, p| !p.is_empty());
        // Replica bookkeeping: `gone`'s copies are forgotten, and acquires
        // routed along an ownerPtr naming `gone` were dropped mid-flight —
        // clear the wait so the mutator's retry re-sends after rejoin.
        let mut stale_waits = Vec::new();
        for (&oid, st) in ns.objects.iter_mut() {
            st.copy_set.remove(&gone);
            if !st.is_owner && st.owner_hint == gone {
                stale_waits.push(oid);
            }
        }
        for oid in stale_waits {
            ns.waiting_for.remove(&oid);
        }
        // Transitive invalidation rounds awaiting the crashed node.
        let mut inval_done = Vec::new();
        for (&oid, pi) in ns.pending_inval.iter_mut() {
            pi.awaiting.remove(&gone);
            if pi.awaiting.is_empty() {
                inval_done.push((oid, pi.parent));
            }
        }
        for (oid, _) in &inval_done {
            ns.pending_inval.remove(oid);
        }
        // Write transfers: stop awaiting `gone`'s ack; a transfer *to*
        // `gone` becomes a self-promotion at the owner.
        let mut xfer_done = Vec::new();
        for (&oid, pw) in ns.pending_write.iter_mut() {
            if pw.requester == gone {
                pw.requester = at;
            }
            pw.awaiting.remove(&gone);
            if pw.awaiting.is_empty() {
                xfer_done.push(oid);
            }
        }
        for (oid, parent) in inval_done {
            if parent != gone {
                self.emit(
                    sh,
                    send,
                    at,
                    parent,
                    DsmMsg::InvalidateAck { oid, child: at },
                );
            }
        }
        for oid in xfer_done {
            let pw = self.ns_mut(at).pending_write.remove(&oid).expect("present");
            {
                let _flow = profile::flow_scope(pw.flow);
                self.complete_write_transfer(at, oid, pw.requester, sh, send)?;
            }
            let queued = self.ns_mut(at).queued.remove(&oid).unwrap_or_default();
            for q in queued {
                let _flow = profile::flow_scope(q.flow);
                match q.kind {
                    ReqKind::Read => self.handle_read_req(at, oid, q.requester, sh, send)?,
                    ReqKind::Write => self.handle_write_req(at, oid, q.requester, sh, send)?,
                }
            }
        }
        Ok(())
    }

    /// At a recovered node: installs `oid` as an inconsistent replica whose
    /// ownerPtr names the surviving `owner`. Used when the rejoin handshake
    /// finds a peer that (still) owns an object recovered from the RVM
    /// store — the recovered image may be stale, so the node re-enters the
    /// copy-set without any token and re-acquires on next use.
    pub fn rejoin_install_replica(
        &mut self,
        node: NodeId,
        oid: Oid,
        bunch: BunchId,
        owner: NodeId,
    ) {
        self.ns_mut(node)
            .objects
            .insert(oid, ObjState::new_replica(bunch, Token::None, owner));
    }

    /// At a recovered node: claims ownership of a recovered `oid` because
    /// no surviving peer owns it. `replicas` are the peers that still hold
    /// copies (they become entering ownerPtrs); `readers` the subset that
    /// reported a read token (they stay valid, so the claimant takes only a
    /// read token when any exist — writes go through the normal
    /// invalidation path).
    pub fn rejoin_claim_owner(
        &mut self,
        node: NodeId,
        oid: Oid,
        bunch: BunchId,
        replicas: &[NodeId],
        readers: &[NodeId],
    ) {
        let mut st = ObjState::new_owner(bunch, node);
        if readers.iter().any(|&r| r != node) {
            st.token = Token::Read;
        }
        for &h in replicas {
            if h != node {
                st.entering.insert(h);
            }
        }
        for &r in readers {
            if r != node {
                st.copy_set.insert(r);
            }
        }
        self.ns_mut(node).objects.insert(oid, st);
    }

    /// At a surviving node: adopts ownership of an object orphaned by an
    /// amnesia crash (the crashed owner did not checkpoint it, so its
    /// authoritative copy is gone). The adopter's replica — possibly stale
    /// — becomes the authoritative one; this is the bounded data loss the
    /// crash-amnesia model allows. The token is promoted only to `Read` so
    /// other surviving readers stay valid.
    pub fn rejoin_adopt_owner(
        &mut self,
        node: NodeId,
        oid: Oid,
        replicas: &[NodeId],
        readers: &[NodeId],
    ) {
        if let Some(st) = self.ns_mut(node).get_mut(oid) {
            st.is_owner = true;
            st.owner_hint = node;
            if st.token == Token::None {
                st.token = Token::Read;
            }
            for &h in replicas {
                if h != node {
                    st.entering.insert(h);
                }
            }
            for &r in readers {
                if r != node {
                    st.copy_set.insert(r);
                }
            }
        }
    }

    /// Repoints a surviving replica's ownerPtr after a rejoin assignment
    /// re-homed the object (no-op at the owner itself).
    pub fn set_owner_hint(&mut self, node: NodeId, oid: Oid, owner: NodeId) {
        if let Some(st) = self.ns_mut(node).get_mut(oid) {
            if !st.is_owner {
                st.owner_hint = owner;
            }
        }
    }

    // ------------------------------------------------------------------
    // Mutator operations.
    // ------------------------------------------------------------------

    /// Starts a read-token acquire at `node`.
    pub fn start_read(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<AcquireStart> {
        let r = self.start_read_inner(node, oid, sh, send);
        self.flush_outbox(sh, send);
        r
    }

    fn start_read_inner(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<AcquireStart> {
        sh.stats[node.0 as usize].bump(StatKind::MutatorReadAcquires);
        let hint = {
            let st = self
                .ns(node)
                .get(oid)
                .ok_or(BmxError::OwnerUnknown { oid })?;
            if st.token != Token::None {
                trace::emit(
                    node,
                    TraceEvent::AcquireStart {
                        oid,
                        mode: AccessMode::Read,
                    },
                );
                return Ok(AcquireStart::Satisfied);
            }
            debug_assert!(!st.is_owner, "owner must hold a token");
            st.owner_hint
        };
        trace::emit(
            node,
            TraceEvent::AcquireStart {
                oid,
                mode: AccessMode::Read,
            },
        );
        self.ns_mut(node).waiting_for.insert(oid, ReqKind::Read);
        self.emit(
            sh,
            send,
            node,
            hint,
            DsmMsg::ReadReq {
                oid,
                requester: node,
            },
        );
        Ok(AcquireStart::Requested)
    }

    /// Re-emits the outstanding token request for `oid` toward the
    /// *current* owner hint; a no-op unless `node` is waiting. This is the
    /// lost-request recovery primitive for the real-thread runtime: a
    /// request can die in a crashed node's inbox or its amnesia-wiped
    /// request queue, and when the requester's hint names a surviving
    /// *forwarder* the rejoin purge never clears the wait — nobody is left
    /// to produce the grant. Safe at any cadence: request queues
    /// deduplicate by `(requester, kind)`, grant application is
    /// idempotent, and a stale duplicate forwarded back to a requester
    /// that has since become owner resolves as a self-promotion.
    pub fn nudge_wait(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) {
        let Some(&kind) = self.ns(node).waiting_for.get(&oid) else {
            return;
        };
        let Some(st) = self.ns(node).get(oid) else {
            return;
        };
        let hint = st.owner_hint;
        if hint == node {
            return;
        }
        let msg = match kind {
            ReqKind::Read => DsmMsg::ReadReq {
                oid,
                requester: node,
            },
            ReqKind::Write => DsmMsg::WriteReq {
                oid,
                requester: node,
            },
        };
        self.emit(sh, send, node, hint, msg);
        self.flush_outbox(sh, send);
        self.nudges += 1;
    }

    /// Total re-sends issued by [`DsmEngine::nudge_wait`] (all nodes).
    pub fn nudges_sent(&self) -> u64 {
        self.nudges
    }

    /// Starts a write-token acquire at `node`.
    pub fn start_write(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<AcquireStart> {
        let r = self.start_write_inner(node, oid, sh, send);
        self.flush_outbox(sh, send);
        r
    }

    fn start_write_inner(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<AcquireStart> {
        sh.stats[node.0 as usize].bump(StatKind::MutatorWriteAcquires);
        let (is_owner, token, hint) = {
            let st = self
                .ns(node)
                .get(oid)
                .ok_or(BmxError::OwnerUnknown { oid })?;
            (st.is_owner, st.token, st.owner_hint)
        };
        trace::emit(
            node,
            TraceEvent::AcquireStart {
                oid,
                mode: AccessMode::Write,
            },
        );
        if token == Token::Write {
            return Ok(AcquireStart::Satisfied);
        }
        self.ns_mut(node).waiting_for.insert(oid, ReqKind::Write);
        if is_owner {
            // Owner promoting read -> write: invalidate readers locally.
            self.owner_start_write_transfer(node, oid, node, sh, send)?;
        } else {
            self.emit(
                sh,
                send,
                node,
                hint,
                DsmMsg::WriteReq {
                    oid,
                    requester: node,
                },
            );
        }
        Ok(AcquireStart::Requested)
    }

    /// Marks the object as inside a mutator critical section.
    ///
    /// The driver calls this after the acquire completed; remote requests
    /// and invalidations arriving while locked are deferred to
    /// [`DsmEngine::unlock`].
    pub fn lock(&mut self, node: NodeId, oid: Oid) -> Result<()> {
        let st = self
            .ns_mut(node)
            .get_mut(oid)
            .ok_or(BmxError::NoToken { node, oid })?;
        if st.token == Token::None {
            return Err(BmxError::NoToken { node, oid });
        }
        let claimed_reservation = st.reserved;
        st.locked = true;
        // The waiter claims its grant: the reservation's job is done.
        st.reserved = false;
        if claimed_reservation {
            // The parked-grant claim is the moment a blocking acquire
            // actually enters its critical section; mark it so the
            // profiler's stitched track ends on something visible.
            profile::mark(profile::SpanKind::ReserveClaim, node);
        }
        Ok(())
    }

    /// Abandons an outstanding acquire at `node` (timeout, target down).
    ///
    /// Removes the wait record and, if a grant already landed and reserved
    /// the replica for this waiter, releases the reservation and serves
    /// whatever parked behind it — otherwise the abandoned reservation
    /// would wedge every later remote request for the object.
    pub fn cancel_wait(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        self.ns_mut(node).waiting_for.remove(&oid);
        let reserved = self.ns(node).get(oid).is_some_and(|s| s.reserved);
        if reserved {
            self.ns_mut(node)
                .get_mut(oid)
                .expect("checked above")
                .reserved = false;
            self.serve_parked(node, oid, sh, send)?;
        }
        self.flush_outbox(sh, send);
        Ok(())
    }

    /// Ends the critical section (token release) and serves deferred work.
    ///
    /// A release with deferred invalidations *and* queued requests is the
    /// densest coalescing site: the aggregated acks and the forwarded
    /// requests all leave in the round's single per-destination envelopes.
    pub fn unlock(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let r = self.unlock_inner(node, oid, sh, send);
        self.flush_outbox(sh, send);
        r
    }

    fn unlock_inner(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        {
            let st = self
                .ns_mut(node)
                .get_mut(oid)
                .ok_or(BmxError::NoToken { node, oid })?;
            st.locked = false;
        }
        trace::emit(node, TraceEvent::TokenRelease { oid });
        self.serve_parked(node, oid, sh, send)
    }

    /// Serves the work parked while the replica was locked or reserved:
    /// deferred invalidations first (they strip the token, so the queued
    /// requests are then forwarded rather than granted), then the request
    /// queue.
    fn serve_parked(
        &mut self,
        node: NodeId,
        oid: Oid,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let parents = self
            .ns_mut(node)
            .deferred_invals
            .remove(&oid)
            .unwrap_or_default();
        for parent in parents {
            self.handle_invalidate(node, oid, parent, sh, send)?;
        }
        let queued = self.ns_mut(node).queued.remove(&oid).unwrap_or_default();
        for q in queued {
            // The grant leaves from the *holder's* release, long after
            // the request envelope was applied; restoring the stored
            // flow keeps it on the requester's track.
            let _flow = profile::flow_scope(q.flow);
            match q.kind {
                ReqKind::Read => self.handle_read_req(node, oid, q.requester, sh, send)?,
                ReqKind::Write => self.handle_write_req(node, oid, q.requester, sh, send)?,
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Message plumbing.
    // ------------------------------------------------------------------

    /// Queues `msg` on the round's outbox (or, with coalescing off, wraps
    /// it with the piggy-back payload pending for `dst` and sends at once).
    fn emit(
        &mut self,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
        src: NodeId,
        dst: NodeId,
        msg: DsmMsg,
    ) {
        sh.stats[src.0 as usize].bump(StatKind::DsmLogicalMessages);
        if !self.coalesce {
            let piggyback = sh.gc.drain_piggyback(src, dst);
            sh.stats[src.0 as usize].bump(StatKind::DsmProtocolMessages);
            sh.stats[src.0 as usize].add(StatKind::PiggybackedRelocations, piggyback.len() as u64);
            send(
                src,
                dst,
                DsmPacket {
                    msgs: vec![msg],
                    piggyback,
                },
            );
            return;
        }
        self.outbox.entry((src, dst)).or_default().push(msg);
    }

    /// Ends a protocol round: every buffered `(src, dst)` message group
    /// leaves as one envelope, carrying the piggy-back payload drained once
    /// for that destination. Iteration over the `BTreeMap` keeps the flush
    /// order deterministic.
    fn flush_outbox(&mut self, sh: &mut DsmShared<'_>, send: &mut SendFn<'_>) {
        if self.outbox.is_empty() {
            return;
        }
        for ((src, dst), msgs) in std::mem::take(&mut self.outbox) {
            let piggyback = sh.gc.drain_piggyback(src, dst);
            sh.stats[src.0 as usize].bump(StatKind::DsmProtocolMessages);
            sh.stats[src.0 as usize].add(StatKind::PiggybackedRelocations, piggyback.len() as u64);
            metrics::observe(src, Hst::EnvelopeMsgs, msgs.len() as u64);
            send(src, dst, DsmPacket { msgs, piggyback });
        }
    }

    /// Handles a delivered envelope at `dst`.
    pub fn handle(
        &mut self,
        src: NodeId,
        dst: NodeId,
        packet: DsmPacket,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let r = self.handle_inner(src, dst, packet, sh, send);
        self.flush_outbox(sh, send);
        r
    }

    fn handle_inner(
        &mut self,
        src: NodeId,
        dst: NodeId,
        packet: DsmPacket,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        // Piggy-backed relocations apply before any protocol action
        // (invariant 1) and fan out to local copy-sets (invariant 2).
        if !packet.piggyback.is_empty() {
            self.apply_incoming_relocations(dst, &packet.piggyback, sh);
        }
        for msg in packet.msgs {
            self.handle_msg(src, dst, msg, sh, send)?;
        }
        Ok(())
    }

    /// Dispatches one constituent message of an envelope, in arrival order.
    fn handle_msg(
        &mut self,
        src: NodeId,
        dst: NodeId,
        msg: DsmMsg,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        match msg {
            DsmMsg::ReadReq { oid, requester } => {
                self.handle_read_req(dst, oid, requester, sh, send)
            }
            DsmMsg::WriteReq { oid, requester } => {
                self.handle_write_req(dst, oid, requester, sh, send)
            }
            DsmMsg::ReadGrant {
                oid,
                bunch,
                addr,
                image,
                owner_hint,
                relocations,
            } => self.handle_read_grant(dst, oid, bunch, addr, image, owner_hint, relocations, sh),
            DsmMsg::WriteGrant {
                oid,
                bunch,
                addr,
                image,
                relocations,
                intra_ssp,
            } => self.handle_write_grant(
                src,
                dst,
                oid,
                bunch,
                addr,
                image,
                relocations,
                intra_ssp,
                sh,
            ),
            DsmMsg::Invalidate { oid, parent } => {
                self.handle_invalidate_arrival(dst, oid, parent, sh, send)
            }
            DsmMsg::InvalidateAck { oid, child } => {
                self.handle_invalidate_ack(dst, oid, child, sh, send)
            }
            DsmMsg::RegisterReplica { oid, holder } => {
                self.handle_register_replica(dst, oid, holder, sh, send)
            }
        }
    }

    fn apply_incoming_relocations(
        &mut self,
        node: NodeId,
        relocs: &[Relocation],
        sh: &mut DsmShared<'_>,
    ) {
        sh.gc.apply_relocations(node, relocs, sh.mems);
        // Invariant 2: forward to the local copy-set of each affected object.
        for r in relocs {
            if let Some(st) = self.ns(node).get(r.oid) {
                if !st.copy_set.is_empty() {
                    let cs: Vec<NodeId> = st.copy_set.iter().copied().collect();
                    sh.gc.queue_forward(node, &cs, std::slice::from_ref(r));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Request handling.
    // ------------------------------------------------------------------

    /// Parks a token request behind the critical section, ignoring an exact
    /// `(requester, kind)` duplicate already queued. Requesters are allowed
    /// to re-send an outstanding request (sim-mode acquire retries do it on
    /// every poll; the real-thread runtime nudges a long-waiting acquire to
    /// survive crash-window losses), and a double entry here would grant
    /// the same token twice.
    fn queue_request(&mut self, at: NodeId, oid: Oid, requester: NodeId, kind: ReqKind) {
        let q = self.ns_mut(at).queued.entry(oid).or_default();
        if !q.iter().any(|e| e.requester == requester && e.kind == kind) {
            // The request is being parked while its envelope is applied,
            // so the driver's flow scope is the requester's flow.
            q.push(QueuedReq {
                requester,
                kind,
                flow: profile::current_flow(),
            });
        }
    }

    fn handle_read_req(
        &mut self,
        at: NodeId,
        oid: Oid,
        requester: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let (token, parked, pending, hint, is_owner) = {
            let st = self
                .ns(at)
                .get(oid)
                .ok_or_else(|| BmxError::Protocol(format!("ReadReq for unknown {oid} at {at}")))?;
            (
                st.token,
                st.locked || st.reserved,
                self.ns(at).pending_write.contains_key(&oid),
                st.owner_hint,
                st.is_owner,
            )
        };
        if parked || pending {
            self.queue_request(at, oid, requester, ReqKind::Read);
            return Ok(());
        }
        if token == Token::None {
            // Inconsistent copy: cannot grant; forward along the ownerPtr.
            self.emit(sh, send, at, hint, DsmMsg::ReadReq { oid, requester });
            return Ok(());
        }
        // Grant. A write token demotes to read (the owner keeps a consistent,
        // readable copy and remains the owner).
        let (bunch, owner_hint_for_grantee) = {
            let st = self.ns_mut(at).get_mut(oid).expect("checked above");
            if st.token == Token::Write {
                st.token = Token::Read;
            }
            st.copy_set.insert(requester);
            if st.is_owner {
                st.entering.insert(requester);
            }
            (st.bunch, if st.is_owner { at } else { st.owner_hint })
        };
        if !is_owner {
            // The owner must learn about the new replica holder.
            self.emit(
                sh,
                send,
                at,
                hint,
                DsmMsg::RegisterReplica {
                    oid,
                    holder: requester,
                },
            );
        }
        let addr = sh
            .gc
            .local_addr(at, oid)
            .ok_or_else(|| BmxError::Protocol(format!("granter {at} has no address for {oid}")))?;
        let image = ObjectImage::capture(&sh.mems[at.0 as usize], addr)?;
        sh.stats[at.0 as usize].add(StatKind::ImageWordsCopied, image.data.len() as u64);
        metrics::observe(at, Hst::GrantImageWords, image.data.len() as u64);
        let relocations = sh.gc.grant_relocations(at, oid, sh.mems);
        trace::emit(
            at,
            TraceEvent::TokenGrant {
                oid,
                to: requester,
                mode: AccessMode::Read,
            },
        );
        self.emit(
            sh,
            send,
            at,
            requester,
            DsmMsg::ReadGrant {
                oid,
                bunch,
                addr,
                image,
                owner_hint: owner_hint_for_grantee,
                relocations,
            },
        );
        Ok(())
    }

    fn handle_write_req(
        &mut self,
        at: NodeId,
        oid: Oid,
        requester: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let (is_owner, parked, pending, hint) = {
            let st = self
                .ns(at)
                .get(oid)
                .ok_or_else(|| BmxError::Protocol(format!("WriteReq for unknown {oid} at {at}")))?;
            (
                st.is_owner,
                st.locked || st.reserved,
                self.ns(at).pending_write.contains_key(&oid),
                st.owner_hint,
            )
        };
        let rc = self.req_counts.entry((at, oid)).or_default();
        rc[0] += 1;
        if !is_owner {
            // Not the owner: forward along the ownerPtr chain.
            rc[1] += 1;
            self.emit(sh, send, at, hint, DsmMsg::WriteReq { oid, requester });
            return Ok(());
        }
        if parked || pending {
            rc[2] += 1;
            self.queue_request(at, oid, requester, ReqKind::Write);
            return Ok(());
        }
        rc[3] += 1;
        self.owner_start_write_transfer(at, oid, requester, sh, send)
    }

    /// At the owner: invalidate all readers, then transfer the write token
    /// to `requester` (which may be the owner itself, for a promotion).
    fn owner_start_write_transfer(
        &mut self,
        owner: NodeId,
        oid: Oid,
        requester: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let targets: Vec<NodeId> = {
            let st = self.ns_mut(owner).get_mut(oid).expect("owner state exists");
            let t = st.copy_set.iter().copied().collect();
            st.copy_set.clear();
            t
        };
        metrics::observe(owner, Hst::InvalidationFanout, targets.len() as u64);
        if targets.is_empty() {
            return self.complete_write_transfer(owner, oid, requester, sh, send);
        }
        self.ns_mut(owner).pending_write.insert(
            oid,
            PendingWrite {
                requester,
                awaiting: targets.iter().copied().collect(),
                flow: profile::current_flow(),
            },
        );
        for t in targets {
            self.emit(
                sh,
                send,
                owner,
                t,
                DsmMsg::Invalidate { oid, parent: owner },
            );
        }
        Ok(())
    }

    fn handle_invalidate_arrival(
        &mut self,
        at: NodeId,
        oid: Oid,
        parent: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let parked = self.ns(at).get(oid).is_some_and(|s| s.locked || s.reserved);
        if parked {
            self.ns_mut(at)
                .deferred_invals
                .entry(oid)
                .or_default()
                .push(parent);
            return Ok(());
        }
        self.handle_invalidate(at, oid, parent, sh, send)
    }

    fn handle_invalidate(
        &mut self,
        at: NodeId,
        oid: Oid,
        parent: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let children: Vec<NodeId> = match self.ns_mut(at).get_mut(oid) {
            Some(st) => {
                if st.token != Token::None {
                    st.token = Token::None;
                    sh.stats[at.0 as usize].bump(StatKind::Invalidations);
                    trace::emit(at, TraceEvent::TokenInvalidated { oid, by: parent });
                }
                let c = st.copy_set.iter().copied().collect();
                st.copy_set.clear();
                c
            }
            // Replica already reclaimed locally: nothing to invalidate.
            None => Vec::new(),
        };
        if children.is_empty() {
            self.emit(
                sh,
                send,
                at,
                parent,
                DsmMsg::InvalidateAck { oid, child: at },
            );
            return Ok(());
        }
        self.ns_mut(at).pending_inval.insert(
            oid,
            PendingInval {
                parent,
                awaiting: children.iter().copied().collect(),
            },
        );
        for c in children {
            self.emit(sh, send, at, c, DsmMsg::Invalidate { oid, parent: at });
        }
        Ok(())
    }

    fn handle_invalidate_ack(
        &mut self,
        at: NodeId,
        oid: Oid,
        child: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        // Aggregating a transitive invalidation?
        if let Some(pi) = self.ns_mut(at).pending_inval.get_mut(&oid) {
            pi.awaiting.remove(&child);
            if pi.awaiting.is_empty() {
                let parent = pi.parent;
                self.ns_mut(at).pending_inval.remove(&oid);
                self.emit(
                    sh,
                    send,
                    at,
                    parent,
                    DsmMsg::InvalidateAck { oid, child: at },
                );
            }
            return Ok(());
        }
        // Otherwise this is the owner collecting acks for a write transfer.
        let done = {
            let pw = self.ns_mut(at).pending_write.get_mut(&oid).ok_or_else(|| {
                BmxError::Protocol(format!("stray InvalidateAck for {oid} at {at}"))
            })?;
            pw.awaiting.remove(&child);
            pw.awaiting.is_empty()
        };
        if done {
            let pw = self.ns_mut(at).pending_write.remove(&oid).expect("present");
            {
                // The final ack completes someone else's acquire; the
                // grant belongs on the original requester's track.
                let _flow = profile::flow_scope(pw.flow);
                self.complete_write_transfer(at, oid, pw.requester, sh, send)?;
            }
            // Requests queued behind the transfer can now be served (they
            // will be forwarded to the new owner).
            let queued = self.ns_mut(at).queued.remove(&oid).unwrap_or_default();
            for q in queued {
                let _flow = profile::flow_scope(q.flow);
                match q.kind {
                    ReqKind::Read => self.handle_read_req(at, oid, q.requester, sh, send)?,
                    ReqKind::Write => self.handle_write_req(at, oid, q.requester, sh, send)?,
                }
            }
        }
        Ok(())
    }

    /// All readers are invalid; hand the write token to `requester`.
    fn complete_write_transfer(
        &mut self,
        owner: NodeId,
        oid: Oid,
        requester: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        if requester == owner {
            // Local promotion: the owner keeps ownership, now exclusive.
            // Reserve for the local waiter just like a remote grant would —
            // the promoted token is equally stealable until the claim.
            let reserve = self.ns(owner).waiting_for.contains_key(&oid);
            let st = self.ns_mut(owner).get_mut(oid).expect("owner state exists");
            st.token = Token::Write;
            st.reserved = reserve;
            self.ns_mut(owner).waiting_for.remove(&oid);
            return Ok(());
        }
        // Invariant 3: intra-bunch SSPs are prepared (scion side) before the
        // grant is sent; the stub-creation requests ride on the grant.
        let intra_ssp = sh.gc.prepare_ownership_transfer(owner, requester, oid);
        let relocations = sh.gc.grant_relocations(owner, oid, sh.mems);
        let addr = sh
            .gc
            .local_addr(owner, oid)
            .ok_or_else(|| BmxError::Protocol(format!("owner {owner} has no address for {oid}")))?;
        let image = ObjectImage::capture(&sh.mems[owner.0 as usize], addr)?;
        sh.stats[owner.0 as usize].add(StatKind::ImageWordsCopied, image.data.len() as u64);
        metrics::observe(owner, Hst::GrantImageWords, image.data.len() as u64);
        let bunch = {
            let st = self.ns_mut(owner).get_mut(oid).expect("owner state exists");
            if st.token != Token::None {
                st.token = Token::None;
                sh.stats[owner.0 as usize].bump(StatKind::Invalidations);
            }
            st.is_owner = false;
            st.owner_hint = requester;
            st.entering.remove(&requester);
            st.bunch
        };
        trace::emit(
            owner,
            TraceEvent::TokenGrant {
                oid,
                to: requester,
                mode: AccessMode::Write,
            },
        );
        self.emit(
            sh,
            send,
            owner,
            requester,
            DsmMsg::WriteGrant {
                oid,
                bunch,
                addr,
                image,
                relocations,
                intra_ssp,
            },
        );
        Ok(())
    }

    fn handle_register_replica(
        &mut self,
        at: NodeId,
        oid: Oid,
        holder: NodeId,
        sh: &mut DsmShared<'_>,
        send: &mut SendFn<'_>,
    ) -> Result<()> {
        let (is_owner, hint) = {
            let st = self.ns(at).get(oid).ok_or_else(|| {
                BmxError::Protocol(format!("RegisterReplica for unknown {oid} at {at}"))
            })?;
            (st.is_owner, st.owner_hint)
        };
        if is_owner {
            self.ns_mut(at)
                .get_mut(oid)
                .expect("checked")
                .entering
                .insert(holder);
            trace::emit(at, TraceEvent::ReplicaRegister { oid, holder });
        } else {
            self.emit(sh, send, at, hint, DsmMsg::RegisterReplica { oid, holder });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Grant handling.
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn handle_read_grant(
        &mut self,
        at: NodeId,
        oid: Oid,
        bunch: BunchId,
        addr: Addr,
        image: ObjectImage,
        owner_hint: NodeId,
        relocations: Vec<Relocation>,
        sh: &mut DsmShared<'_>,
    ) -> Result<()> {
        self.apply_incoming_relocations(at, &relocations, sh);
        self.install_replica(at, oid, addr, &image, sh)?;
        let ns = self.ns_mut(at);
        // Reserve the token for the local waiter (if any) until its next
        // poll claims it — a write waiter keeps waiting, a read token is
        // no use to it.
        let reserve = matches!(ns.waiting_for.get(&oid), Some(ReqKind::Read));
        match ns.get_mut(oid) {
            Some(st) => {
                st.token = Token::Read;
                if !st.is_owner {
                    st.owner_hint = owner_hint;
                }
                st.reserved = reserve;
            }
            None => {
                let mut st = ObjState::new_replica(bunch, Token::Read, owner_hint);
                st.reserved = reserve;
                ns.objects.insert(oid, st);
            }
        }
        if reserve {
            ns.waiting_for.remove(&oid);
        }
        trace::emit(
            at,
            TraceEvent::AcquireComplete {
                oid,
                mode: AccessMode::Read,
            },
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_write_grant(
        &mut self,
        src: NodeId,
        at: NodeId,
        oid: Oid,
        bunch: BunchId,
        addr: Addr,
        image: ObjectImage,
        relocations: Vec<Relocation>,
        intra_ssp: Vec<crate::msg::IntraSspCreate>,
        sh: &mut DsmShared<'_>,
    ) -> Result<()> {
        self.apply_incoming_relocations(at, &relocations, sh);
        // Invariant 3, new-owner side: the intra-bunch stubs exist before the
        // acquire completes.
        sh.gc.apply_intra_ssp(at, &intra_ssp);
        self.install_replica(at, oid, addr, &image, sh)?;
        let ns = self.ns_mut(at);
        // A write token satisfies either wait kind; hold it for the local
        // waiter until its next poll claims it, so a concurrent remote
        // request cannot steal it inside that window (on real threads the
        // waiter may be parked in its poll backoff for milliseconds).
        let reserve = ns.waiting_for.contains_key(&oid);
        match ns.get_mut(oid) {
            Some(st) => {
                st.token = Token::Write;
                st.is_owner = true;
                st.owner_hint = at;
                st.entering.insert(src);
                st.reserved = reserve;
            }
            None => {
                let mut st = ObjState::new_owner(bunch, at);
                st.entering.insert(src);
                st.reserved = reserve;
                ns.objects.insert(oid, st);
            }
        }
        ns.waiting_for.remove(&oid);
        trace::emit(at, TraceEvent::OwnershipMigrate { oid, from: src });
        trace::emit(
            at,
            TraceEvent::AcquireComplete {
                oid,
                mode: AccessMode::Write,
            },
        );
        Ok(())
    }

    /// Installs a granted object image into the local replica.
    ///
    /// The address in the grant is the *granter's* current address; the
    /// local address may differ if this node relocated the object itself
    /// (Fig. 3 case (d)) — `resolve_current` follows local forwarding. The
    /// installed data's pointer fields are likewise rewritten through local
    /// forwarding before the acquire completes.
    fn install_replica(
        &mut self,
        at: NodeId,
        oid: Oid,
        granter_addr: Addr,
        image: &ObjectImage,
        sh: &mut DsmShared<'_>,
    ) -> Result<()> {
        let local = sh.gc.local_addr(at, oid).unwrap_or(granter_addr);
        let local = sh.gc.resolve_current(at, local);
        sh.gc.ensure_mapped(at, local, sh.mems);
        let mem = &mut sh.mems[at.0 as usize];
        object::install_object_at(mem, local, image)?;
        sh.gc.note_local_addr(at, oid, local);
        // Fig. 3 case (d): rewrite refs that point at from-space copies that
        // were already relocated locally.
        for (field, target) in object::ref_fields(mem, local)? {
            let cur = sh.gc.resolve_current(at, target);
            if cur != target {
                object::write_ref_field(mem, local, field, cur)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests;
