//! The collector's participation interface.
//!
//! The DSM engine calls into the collector through [`GcIntegration`] at the
//! points the paper's Section 5 identifies — and at no others. Note what the
//! trait does *not* offer: any way to acquire, release, or even observe a
//! token. "In any circumstance, the garbage collector acquires neither a
//! read nor a write token" (Section 10) is thus enforced structurally, not
//! just by discipline; experiment E2 additionally watches the
//! [`bmx_common::StatKind::GcTokenAcquires`] counter stay at zero.

use std::collections::BTreeMap;

use bmx_addr::NodeMemory;
use bmx_common::{Addr, NodeId, Oid};

use crate::msg::{IntraSspCreate, Relocation};

/// Hooks through which the collector participates in the DSM protocol.
pub trait GcIntegration {
    /// The node-local current address of `oid`'s replica, if known.
    ///
    /// Reflects local relocations (the node's own BGC copied the object) and
    /// applied relocation records from other nodes.
    fn local_addr(&self, node: NodeId, oid: Oid) -> Option<Addr>;

    /// Records that `oid`'s replica at `node` lives at `addr` (called when a
    /// grant installs a replica).
    fn note_local_addr(&mut self, node: NodeId, oid: Oid, addr: Addr);

    /// Ensures the segment containing `addr` is mapped at `node` (mapping a
    /// fresh zeroed replica if necessary) so a grant can be installed there.
    /// To-space segments created by remote collections reach other nodes
    /// this way.
    fn ensure_mapped(&mut self, node: NodeId, addr: Addr, mems: &mut [NodeMemory]);

    /// Follows node-local forwarding: if the object at `addr` was copied at
    /// `node`, returns its to-space address, else `addr` unchanged.
    fn resolve_current(&self, node: NodeId, addr: Addr) -> Addr;

    /// Invariant 1 (granter side): the new locations of `oid` and of every
    /// object directly referenced from it, as far as they were relocated at
    /// `granter`. `mems` gives read access so the implementation can walk
    /// the object's pointer fields.
    fn grant_relocations(
        &mut self,
        granter: NodeId,
        oid: Oid,
        mems: &[NodeMemory],
    ) -> Vec<Relocation>;

    /// Invariant 1 (receiver side): apply relocation records at `node`
    /// before the triggering acquire completes. Implementations update the
    /// local directory, map to-space segments, install copies at the new
    /// addresses, and leave forwarding headers.
    fn apply_relocations(&mut self, node: NodeId, relocs: &[Relocation], mems: &mut [NodeMemory]);

    /// Invariant 2: relocations received at `node` must reach every member
    /// of the local copy-set of the affected object. Implementations buffer
    /// them for piggy-backing (no extra message).
    fn queue_forward(&mut self, node: NodeId, copy_set: &[NodeId], relocs: &[Relocation]);

    /// Invariant 3 (old-owner side): ownership of `oid` is about to move
    /// from `old_owner` to `new_owner`. If the old owner holds inter-bunch
    /// stubs (or an intra-bunch stub) for the object, it creates the
    /// intra-bunch *scion* now and returns the stub-creation request to
    /// piggy-back on the grant.
    fn prepare_ownership_transfer(
        &mut self,
        old_owner: NodeId,
        new_owner: NodeId,
        oid: Oid,
    ) -> Vec<IntraSspCreate>;

    /// Invariant 3 (new-owner side): create the intra-bunch stubs requested
    /// by the grant, before the acquire completes.
    fn apply_intra_ssp(&mut self, node: NodeId, reqs: &[IntraSspCreate]);

    /// Drains the lazily buffered relocation records waiting to travel from
    /// `src` to `dst` (Section 4.4 piggy-backing). Called by the engine for
    /// every outgoing message.
    fn drain_piggyback(&mut self, src: NodeId, dst: NodeId) -> Vec<Relocation>;
}

/// A no-op integration for DSM-only tests: same addresses everywhere, no
/// relocations, no SSPs.
#[derive(Default)]
pub struct NullGcIntegration {
    addrs: BTreeMap<(NodeId, Oid), Addr>,
}

impl NullGcIntegration {
    /// Creates an empty integration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the (node-independent) address of a freshly allocated
    /// object on every node of a `nodes`-node cluster.
    pub fn register_everywhere(&mut self, nodes: u32, oid: Oid, addr: Addr) {
        for n in 0..nodes {
            self.addrs.insert((NodeId(n), oid), addr);
        }
    }
}

impl GcIntegration for NullGcIntegration {
    fn local_addr(&self, node: NodeId, oid: Oid) -> Option<Addr> {
        self.addrs.get(&(node, oid)).copied()
    }

    fn note_local_addr(&mut self, node: NodeId, oid: Oid, addr: Addr) {
        self.addrs.insert((node, oid), addr);
    }

    fn ensure_mapped(&mut self, _node: NodeId, _addr: Addr, _mems: &mut [NodeMemory]) {}

    fn resolve_current(&self, _node: NodeId, addr: Addr) -> Addr {
        addr
    }

    fn grant_relocations(
        &mut self,
        _granter: NodeId,
        _oid: Oid,
        _mems: &[NodeMemory],
    ) -> Vec<Relocation> {
        Vec::new()
    }

    fn apply_relocations(
        &mut self,
        _node: NodeId,
        _relocs: &[Relocation],
        _mems: &mut [NodeMemory],
    ) {
    }

    fn queue_forward(&mut self, _node: NodeId, _copy_set: &[NodeId], _relocs: &[Relocation]) {}

    fn prepare_ownership_transfer(
        &mut self,
        _old_owner: NodeId,
        _new_owner: NodeId,
        _oid: Oid,
    ) -> Vec<IntraSspCreate> {
        Vec::new()
    }

    fn apply_intra_ssp(&mut self, _node: NodeId, _reqs: &[IntraSspCreate]) {}

    fn drain_piggyback(&mut self, _src: NodeId, _dst: NodeId) -> Vec<Relocation> {
        Vec::new()
    }
}
