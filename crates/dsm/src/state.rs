//! Per-node, per-object DSM protocol state.

use std::collections::{BTreeMap, BTreeSet};

use bmx_common::{BunchId, NodeId, Oid};

/// Token held by a node for one object.
///
/// [`Token::None`] corresponds to the paper's *inconsistent copy* marker
/// `i`: the replica's bytes are still there, but their observed state is
/// undefined until a token is re-acquired.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Token {
    /// No token: the local replica (if any) is inconsistent.
    #[default]
    None,
    /// Shared read token: the replica is consistent for reading.
    Read,
    /// Exclusive write token: no other consistent copy exists.
    Write,
}

/// Why a remote request is parked at this node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqKind {
    /// A read-token request.
    Read,
    /// A write-token request.
    Write,
}

/// A remote request queued behind a critical section.
#[derive(Clone, Copy, Debug)]
pub struct QueuedReq {
    /// The node that asked.
    pub requester: NodeId,
    /// What it asked for.
    pub kind: ReqKind,
    /// The wall-clock profiler flow the request arrived under (0 when
    /// profiling is off). Purely observational — never compared, never
    /// branched on — it lets the eventual grant inherit the requester's
    /// flow even though it is sent from a *later* protocol step (the
    /// holder's release), keeping the cross-node acquire stitched.
    pub flow: u64,
}

/// Pending write-token transfer at the owner: invalidation acks outstanding.
#[derive(Clone, Debug)]
pub struct PendingWrite {
    /// Node the write token will be granted to.
    pub requester: NodeId,
    /// Direct copy-set members whose (aggregated) acks are still missing.
    pub awaiting: BTreeSet<NodeId>,
    /// Profiler flow of the write request (same observational contract
    /// as [`QueuedReq::flow`]): restored when the last ack completes the
    /// transfer, so the grant joins the requester's track.
    pub flow: u64,
}

/// Pending transitive invalidation at a non-owner: children's acks missing.
#[derive(Clone, Debug)]
pub struct PendingInval {
    /// Where to send the aggregated ack.
    pub parent: NodeId,
    /// Direct grantees whose acks are still missing.
    pub awaiting: BTreeSet<NodeId>,
}

/// Protocol state one node keeps for one object replica.
///
/// The *presence* of this record means the node holds a replica of the
/// object (possibly inconsistent); the bunch garbage collector derives its
/// exiting-ownerPtr tables from these records.
#[derive(Clone, Debug)]
pub struct ObjState {
    /// The bunch the object belongs to.
    pub bunch: BunchId,
    /// Token currently held.
    pub token: Token,
    /// True if this node holds or last held the write token.
    pub is_owner: bool,
    /// The ownerPtr: where owner-bound requests are forwarded. Meaningless
    /// while `is_owner`.
    pub owner_hint: NodeId,
    /// Direct read grantees (the local share of the distributed copy-set).
    pub copy_set: BTreeSet<NodeId>,
    /// Nodes whose ownerPtr enters here (GC roots at the owner; maintained
    /// from grants and scion-cleaner reports).
    pub entering: BTreeSet<NodeId>,
    /// Mutator is inside an acquire/release critical section.
    pub locked: bool,
    /// A grant landed for a still-outstanding local acquire, and the
    /// waiting mutator has not claimed it yet. While set, request and
    /// invalidate handlers treat the replica like `locked` (queue/defer
    /// instead of serving) so a concurrent remote request cannot steal
    /// the token out from under the waiter between the grant's arrival
    /// and the waiter's next poll — on real threads that window is long
    /// enough to livelock under duplicate-request storms. Cleared by
    /// [`super::DsmEngine::lock`] (the claim) or by cancelling the wait.
    pub reserved: bool,
}

impl ObjState {
    /// Fresh state for the allocating node: owner with the write token.
    pub fn new_owner(bunch: BunchId, node: NodeId) -> Self {
        ObjState {
            bunch,
            token: Token::Write,
            is_owner: true,
            owner_hint: node,
            copy_set: BTreeSet::new(),
            entering: BTreeSet::new(),
            locked: false,
            reserved: false,
        }
    }

    /// Fresh state for a node that just received a replica from `hint`'s
    /// direction.
    pub fn new_replica(bunch: BunchId, token: Token, owner_hint: NodeId) -> Self {
        ObjState {
            bunch,
            token,
            is_owner: false,
            owner_hint,
            copy_set: BTreeSet::new(),
            entering: BTreeSet::new(),
            locked: false,
            reserved: false,
        }
    }
}

/// All DSM state of one node.
#[derive(Default)]
pub struct DsmNodeState {
    /// Per-object replica state. Presence of a key = a replica exists here.
    pub objects: BTreeMap<Oid, ObjState>,
    /// Requests parked behind critical sections, per object.
    pub queued: BTreeMap<Oid, Vec<QueuedReq>>,
    /// Outstanding write-transfer invalidations at this (owner) node.
    pub pending_write: BTreeMap<Oid, PendingWrite>,
    /// Outstanding transitive invalidations at this (non-owner) node.
    pub pending_inval: BTreeMap<Oid, PendingInval>,
    /// Local acquires waiting for a grant (used by the driver to detect
    /// completion).
    pub waiting_for: BTreeMap<Oid, ReqKind>,
    /// Invalidations deferred because the mutator holds the object in a
    /// critical section; each entry is the parent awaiting the ack.
    pub deferred_invals: BTreeMap<Oid, Vec<NodeId>>,
}

impl DsmNodeState {
    /// Borrows the state of `oid`, if a replica exists here.
    pub fn get(&self, oid: Oid) -> Option<&ObjState> {
        self.objects.get(&oid)
    }

    /// Mutably borrows the state of `oid`, if a replica exists here.
    pub fn get_mut(&mut self, oid: Oid) -> Option<&mut ObjState> {
        self.objects.get_mut(&oid)
    }

    /// Oids of every replica this node holds, in `Oid` order.
    pub fn replicas(&self) -> impl Iterator<Item = (Oid, &ObjState)> {
        self.objects.iter().map(|(&o, s)| (o, s))
    }

    /// Removes the replica record (the object was reclaimed locally).
    pub fn drop_replica(&mut self, oid: Oid) -> Option<ObjState> {
        self.queued.remove(&oid);
        self.objects.remove(&oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_owner_holds_write_token() {
        let s = ObjState::new_owner(BunchId(1), NodeId(3));
        assert_eq!(s.token, Token::Write);
        assert!(s.is_owner);
        assert_eq!(s.owner_hint, NodeId(3));
    }

    #[test]
    fn new_replica_is_not_owner() {
        let s = ObjState::new_replica(BunchId(1), Token::Read, NodeId(0));
        assert!(!s.is_owner);
        assert_eq!(s.token, Token::Read);
        assert_eq!(s.owner_hint, NodeId(0));
    }

    #[test]
    fn node_state_tracks_replicas() {
        let mut ns = DsmNodeState::default();
        ns.objects
            .insert(Oid(1), ObjState::new_owner(BunchId(1), NodeId(0)));
        ns.objects.insert(
            Oid(2),
            ObjState::new_replica(BunchId(1), Token::None, NodeId(1)),
        );
        assert_eq!(ns.replicas().count(), 2);
        assert!(ns.get(Oid(1)).unwrap().is_owner);
        ns.drop_replica(Oid(1));
        assert!(ns.get(Oid(1)).is_none());
        assert_eq!(ns.replicas().count(), 1);
    }

    #[test]
    fn default_token_is_inconsistent() {
        assert_eq!(Token::default(), Token::None);
    }
}
