//! Protocol-level tests for the entry-consistency engine, driven by the
//! simulated network.

use bmx_addr::object;
use bmx_addr::server::{Protection, SegmentServer};
use bmx_addr::{NodeMemory, SegmentInfo};
use bmx_common::{Addr, BunchId, NodeId, NodeStats, Oid, StatKind};
use bmx_net::{MsgClass, Network, NetworkConfig};

use super::*;
use crate::integration::NullGcIntegration;
use crate::msg::DsmPacket;

struct Harness {
    engine: DsmEngine,
    mems: Vec<NodeMemory>,
    stats: Vec<NodeStats>,
    gc: NullGcIntegration,
    net: Network<DsmPacket>,
    #[allow(dead_code)]
    server: SegmentServer,
    bunch: BunchId,
    seg: SegmentInfo,
}

fn n(i: u32) -> NodeId {
    NodeId(i)
}

impl Harness {
    fn new(nodes: u32) -> Harness {
        let mut server = SegmentServer::new(256);
        let bunch = server.create_bunch(n(0), Protection::default());
        let seg = server.alloc_segment(bunch).unwrap();
        let mut mems: Vec<NodeMemory> = (0..nodes).map(|i| NodeMemory::new(n(i))).collect();
        for m in &mut mems {
            m.map_segment(seg);
        }
        Harness {
            engine: DsmEngine::new(nodes as usize),
            mems,
            stats: (0..nodes).map(|_| NodeStats::new()).collect(),
            gc: NullGcIntegration::new(),
            net: Network::new(NetworkConfig::lossless(1)),
            server,
            bunch,
            seg,
        }
    }

    /// Allocates an object at node 0 and registers replicas on every node.
    fn alloc(&mut self, oid: u64, size: u64, refs: &[u64]) -> Addr {
        let seg = self.mems[0].segment_mut(self.seg.id).unwrap();
        let addr = object::alloc_in_segment(seg, Oid(oid), size, refs).unwrap();
        // Mirror the raw allocation into every replica image (a fresh
        // mapping would have shipped the segment image; tests shortcut).
        let img = object::ObjectImage::capture(&self.mems[0], addr).unwrap();
        let count = self.mems.len();
        for i in 1..count {
            object::install_object_at(&mut self.mems[i], addr, &img).unwrap();
        }
        self.gc.register_everywhere(count as u32, Oid(oid), addr);
        self.engine.register_alloc(n(0), Oid(oid), self.bunch);
        for i in 1..count as u32 {
            let (engine, mems, stats, gc, net) = (
                &mut self.engine,
                &mut self.mems,
                &mut self.stats,
                &mut self.gc,
                &mut self.net,
            );
            let mut sh = DsmShared { mems, stats, gc };
            let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
                net.send(src, dst, MsgClass::Dsm, pkt);
            };
            engine.register_mapped_replica(n(i), Oid(oid), self.bunch, n(0), &mut sh, &mut send);
        }
        self.pump();
        addr
    }

    fn pump(&mut self) {
        while self.net.in_flight() > 0 {
            let due = self.net.tick();
            for env in due {
                let (engine, mems, stats, gc, net) = (
                    &mut self.engine,
                    &mut self.mems,
                    &mut self.stats,
                    &mut self.gc,
                    &mut self.net,
                );
                let mut sh = DsmShared { mems, stats, gc };
                let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
                    net.send(src, dst, MsgClass::Dsm, pkt);
                };
                engine
                    .handle(env.src, env.dst, env.payload, &mut sh, &mut send)
                    .unwrap();
            }
        }
    }

    fn start(&mut self, node: NodeId, oid: Oid, write: bool) -> AcquireStart {
        let (engine, mems, stats, gc, net) = (
            &mut self.engine,
            &mut self.mems,
            &mut self.stats,
            &mut self.gc,
            &mut self.net,
        );
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
            net.send(src, dst, MsgClass::Dsm, pkt);
        };
        if write {
            engine.start_write(node, oid, &mut sh, &mut send).unwrap()
        } else {
            engine.start_read(node, oid, &mut sh, &mut send).unwrap()
        }
    }

    fn acquire_read(&mut self, node: NodeId, oid: Oid) {
        self.start(node, oid, false);
        self.pump();
        assert!(
            matches!(self.engine.token(node, oid), Token::Read | Token::Write),
            "read acquire did not complete at {node} for {oid}"
        );
        self.claim(node, oid);
    }

    fn acquire_write(&mut self, node: NodeId, oid: Oid) {
        self.start(node, oid, true);
        self.pump();
        assert_eq!(
            self.engine.token(node, oid),
            Token::Write,
            "write acquire incomplete"
        );
        assert!(self.engine.is_owner(node, oid));
        self.claim(node, oid);
    }

    /// Claims a landed grant without entering a critical section: releases
    /// the grant-time reservation so later remote requests and
    /// invalidations are served. Every real caller does one of `lock()`
    /// (mutators) or `cancel_wait` (e.g. the strong-copy baseline); a
    /// token held by neither would keep the replica parked forever.
    fn claim(&mut self, node: NodeId, oid: Oid) {
        let (engine, mems, stats, gc, net) = (
            &mut self.engine,
            &mut self.mems,
            &mut self.stats,
            &mut self.gc,
            &mut self.net,
        );
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
            net.send(src, dst, MsgClass::Dsm, pkt);
        };
        engine.cancel_wait(node, oid, &mut sh, &mut send).unwrap();
        self.pump();
    }

    fn unlock(&mut self, node: NodeId, oid: Oid) {
        let (engine, mems, stats, gc, net) = (
            &mut self.engine,
            &mut self.mems,
            &mut self.stats,
            &mut self.gc,
            &mut self.net,
        );
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
            net.send(src, dst, MsgClass::Dsm, pkt);
        };
        engine.unlock(node, oid, &mut sh, &mut send).unwrap();
        self.pump();
    }
}

#[test]
fn owner_starts_with_write_token() {
    let mut h = Harness::new(2);
    h.alloc(1, 2, &[]);
    assert_eq!(h.engine.token(n(0), Oid(1)), Token::Write);
    assert!(h.engine.is_owner(n(0), Oid(1)));
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert!(h.engine.has_replica(n(1), Oid(1)));
}

#[test]
fn read_acquire_from_owner_ships_data() {
    let mut h = Harness::new(2);
    let a = h.alloc(1, 2, &[]);
    object::write_data_field(&mut h.mems[0], a, 0, 77).unwrap();
    h.acquire_read(n(1), Oid(1));
    assert_eq!(object::read_field(&h.mems[1], a, 0).unwrap(), 77);
    // The owner demoted write -> read and keeps ownership.
    assert_eq!(h.engine.token(n(0), Oid(1)), Token::Read);
    assert!(h.engine.is_owner(n(0), Oid(1)));
    // Owner registered the new replica holder.
    let st = h.engine.obj_state(n(0), Oid(1)).unwrap();
    assert!(st.entering.contains(&n(1)));
    assert!(st.copy_set.contains(&n(1)));
}

#[test]
fn read_acquire_already_held_is_local() {
    let mut h = Harness::new(2);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    let before = h.net.total_sent();
    assert_eq!(h.start(n(1), Oid(1), false), AcquireStart::Satisfied);
    assert_eq!(h.net.total_sent(), before, "no messages for a held token");
}

#[test]
fn read_token_obtainable_from_non_owner_holder() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    // Repoint node 2's hint at node 1 so the request lands on a non-owner
    // read holder, exercising the distributed copy-set grant.
    h.engine.ns_mut(n(2)).get_mut(Oid(1)).unwrap().owner_hint = n(1);
    h.acquire_read(n(2), Oid(1));
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::Read);
    // Node 1 granted, so node 2 is in node 1's copy-set...
    assert!(h
        .engine
        .obj_state(n(1), Oid(1))
        .unwrap()
        .copy_set
        .contains(&n(2)));
    // ...and the owner learned about the replica via RegisterReplica.
    assert!(h
        .engine
        .obj_state(n(0), Oid(1))
        .unwrap()
        .entering
        .contains(&n(2)));
}

#[test]
fn write_acquire_invalidates_transitive_readers() {
    let mut h = Harness::new(4);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    h.engine.ns_mut(n(2)).get_mut(Oid(1)).unwrap().owner_hint = n(1);
    h.acquire_read(n(2), Oid(1)); // granted by node 1 -> tree 0 -> 1 -> 2
    h.acquire_write(n(3), Oid(1));
    assert_eq!(h.engine.token(n(0), Oid(1)), Token::None);
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::None);
    assert_eq!(h.engine.token(n(3), Oid(1)), Token::Write);
    assert!(h.engine.is_owner(n(3), Oid(1)));
    assert!(!h.engine.is_owner(n(0), Oid(1)));
    // Old owner's ownerPtr points at the new owner.
    assert_eq!(h.engine.obj_state(n(0), Oid(1)).unwrap().owner_hint, n(3));
    let inval: u64 = (0..4)
        .map(|i| h.stats[i].get(StatKind::Invalidations))
        .sum();
    assert!(
        inval >= 3,
        "readers plus old owner invalidated, got {inval}"
    );
}

#[test]
fn unlock_round_coalesces_messages_per_destination() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    // Two writers queue behind node 0's critical section.
    h.engine.lock(n(0), Oid(1)).unwrap();
    h.start(n(1), Oid(1), true);
    h.pump();
    h.start(n(2), Oid(1), true);
    h.pump();
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::None);
    let sent_before = h.net.total_sent();
    // Release without pumping: the round grants the token to node 1 AND
    // forwards node 2's queued request to the new owner — two protocol
    // messages, one destination, one envelope.
    {
        let (engine, mems, stats, gc, net) = (
            &mut h.engine,
            &mut h.mems,
            &mut h.stats,
            &mut h.gc,
            &mut h.net,
        );
        let mut sh = DsmShared { mems, stats, gc };
        let mut send = |src: NodeId, dst: NodeId, pkt: DsmPacket| {
            assert_eq!((src, dst), (n(0), n(1)));
            assert_eq!(pkt.msgs.len(), 2, "grant + forwarded request coalesce");
            assert_eq!(pkt.msgs[0].kind(), "WriteGrant");
            assert_eq!(pkt.msgs[1].kind(), "WriteReq");
            net.send(src, dst, MsgClass::Dsm, pkt);
        };
        engine.unlock(n(0), Oid(1), &mut sh, &mut send).unwrap();
    }
    assert_eq!(h.net.total_sent(), sent_before + 1, "one envelope, not two");
    h.pump();
    // Node 1's grant lands reserved for its waiter; the forwarded request
    // parks behind it. The waiter's critical section hands the token on.
    h.engine.lock(n(1), Oid(1)).unwrap();
    h.unlock(n(1), Oid(1));
    // The chained transfer still completes: node 2 ends up as owner.
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::Write);
    assert!(h.engine.is_owner(n(2), Oid(1)));
    // Envelope count < constituent message count at the coalescing node.
    let env = h.stats[0].get(StatKind::DsmProtocolMessages);
    let logical = h.stats[0].get(StatKind::DsmLogicalMessages);
    assert!(
        env < logical,
        "coalescing must save envelopes: {env} envelopes / {logical} messages"
    );
}

#[test]
fn uncoalesced_engine_matches_final_state() {
    // The same contended schedule, coalescing off: wire envelopes revert to
    // one per message but every protocol outcome is identical.
    let run = |coalesce: bool| {
        let mut h = Harness::new(3);
        h.engine.set_coalescing(coalesce);
        h.alloc(1, 1, &[]);
        h.engine.lock(n(0), Oid(1)).unwrap();
        h.start(n(1), Oid(1), true);
        h.pump();
        h.start(n(2), Oid(1), true);
        h.pump();
        h.unlock(n(0), Oid(1));
        let tokens: Vec<Token> = (0..3).map(|i| h.engine.token(n(i), Oid(1))).collect();
        let owners: Vec<bool> = (0..3).map(|i| h.engine.is_owner(n(i), Oid(1))).collect();
        let logical: u64 = h
            .stats
            .iter()
            .map(|s| s.get(StatKind::DsmLogicalMessages))
            .sum();
        let envelopes: u64 = h
            .stats
            .iter()
            .map(|s| s.get(StatKind::DsmProtocolMessages))
            .sum();
        (tokens, owners, logical, envelopes)
    };
    let (t_on, o_on, logical_on, env_on) = run(true);
    let (t_off, o_off, logical_off, env_off) = run(false);
    assert_eq!(t_on, t_off);
    assert_eq!(o_on, o_off);
    assert_eq!(logical_on, logical_off, "same protocol actions either way");
    assert_eq!(
        logical_off, env_off,
        "uncoalesced: one envelope per message"
    );
    assert!(env_on < env_off, "coalescing saved envelopes");
}

#[test]
fn write_data_propagates_through_grants() {
    let mut h = Harness::new(3);
    let a = h.alloc(1, 2, &[]);
    h.acquire_write(n(1), Oid(1));
    object::write_data_field(&mut h.mems[1], a, 1, 4242).unwrap();
    h.acquire_read(n(2), Oid(1));
    assert_eq!(object::read_field(&h.mems[2], a, 1).unwrap(), 4242);
    // And back at the original allocator after it re-acquires.
    h.acquire_read(n(0), Oid(1));
    assert_eq!(object::read_field(&h.mems[0], a, 1).unwrap(), 4242);
}

#[test]
fn owner_ptr_chain_forwards_requests() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    // Ownership hops 0 -> 1; node 2's hint still points at node 0.
    h.acquire_write(n(1), Oid(1));
    assert_eq!(h.engine.obj_state(n(2), Oid(1)).unwrap().owner_hint, n(0));
    // The request must be forwarded 2 -> 0 -> 1 and still complete.
    h.acquire_write(n(2), Oid(1));
    assert!(h.engine.is_owner(n(2), Oid(1)));
    // The intermediate old owner repointed to the requester when it lost
    // ownership, so chains stay short.
    assert_eq!(h.engine.obj_state(n(1), Oid(1)).unwrap().owner_hint, n(2));
}

#[test]
fn owner_promotes_read_to_write_locally() {
    let mut h = Harness::new(2);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1)); // owner demotes to Read
    assert_eq!(h.engine.token(n(0), Oid(1)), Token::Read);
    h.acquire_write(n(0), Oid(1)); // promotion invalidates node 1
    assert_eq!(h.engine.token(n(0), Oid(1)), Token::Write);
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert!(h.engine.is_owner(n(0), Oid(1)));
}

#[test]
fn locked_object_defers_remote_requests() {
    let mut h = Harness::new(2);
    h.alloc(1, 1, &[]);
    h.engine.lock(n(0), Oid(1)).unwrap();
    h.start(n(1), Oid(1), true);
    h.pump();
    // The request is parked: node 1 must not have the token yet.
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert!(h.engine.is_waiting(n(1), Oid(1)));
    h.unlock(n(0), Oid(1));
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::Write);
    assert!(!h.engine.is_waiting(n(1), Oid(1)));
}

#[test]
fn locked_reader_defers_invalidation() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    h.engine.lock(n(1), Oid(1)).unwrap();
    h.start(n(2), Oid(1), true);
    h.pump();
    // Node 1 is in a read critical section: it has not been invalidated and
    // the transfer is stalled.
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::Read);
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::None);
    h.unlock(n(1), Oid(1));
    assert_eq!(h.engine.token(n(1), Oid(1)), Token::None);
    assert_eq!(h.engine.token(n(2), Oid(1)), Token::Write);
}

#[test]
fn exiting_and_entering_owner_ptr_tables() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    h.alloc(2, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    h.acquire_read(n(2), Oid(1));
    let bunch = h.bunch;
    // Non-owners export exiting pointers toward the owner.
    assert_eq!(
        h.engine.exiting_owner_ptrs(n(1), bunch),
        vec![(Oid(1), n(0)), (Oid(2), n(0))]
    );
    // The owner's entering table lists both replica holders for O1 (which
    // they acquired) and both mapped replicas for O2.
    let entering = h.engine.entering_owner_ptrs(n(0), bunch);
    let o1 = entering.iter().find(|(o, _)| *o == Oid(1)).unwrap();
    assert_eq!(o1.1, vec![n(1), n(2)]);
}

#[test]
fn gc_token_acquires_stay_zero() {
    let mut h = Harness::new(3);
    h.alloc(1, 1, &[]);
    h.acquire_read(n(1), Oid(1));
    h.acquire_write(n(2), Oid(1));
    for s in &h.stats {
        assert_eq!(s.get(StatKind::GcTokenAcquires), 0);
    }
    assert!(h.stats[0].get(StatKind::DsmProtocolMessages) > 0);
}

#[test]
fn sequential_writers_see_each_other() {
    let mut h = Harness::new(4);
    let a = h.alloc(1, 1, &[]);
    for round in 0..8u64 {
        let node = n((round % 4) as u32);
        h.acquire_write(node, Oid(1));
        let cur = object::read_field(&h.mems[node.0 as usize], a, 0).unwrap();
        assert_eq!(cur, round, "writer must observe the previous increment");
        object::write_data_field(&mut h.mems[node.0 as usize], a, 0, cur + 1).unwrap();
    }
}

#[test]
fn ref_fields_survive_grants() {
    let mut h = Harness::new(2);
    let a = h.alloc(1, 2, &[0]);
    let b = h.alloc(2, 1, &[]);
    object::write_ref_field(&mut h.mems[0], a, 0, b).unwrap();
    h.acquire_read(n(1), Oid(1));
    assert_eq!(object::read_ref_field(&h.mems[1], a, 0).unwrap(), b);
}
