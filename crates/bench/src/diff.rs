//! Perf-regression diffing between two `BENCH_tables.json` snapshots.
//!
//! The perf CI lane regenerates the evaluation tables and diffs them
//! against the committed `BENCH_baseline.json` with the `bench-diff`
//! binary, which uses this module. The policy is direction-aware and
//! per-metric:
//!
//! * **wall-clock columns** (`*_us`, `ns/...`) are noisy on shared CI
//!   runners, so they get a relative tolerance band (default 40%) and only
//!   *slower* is a regression;
//! * **deterministic counters** (messages, envelopes, invalidations,
//!   bytes, words copied) come out of the seeded simulation bit-exact, so
//!   they are gated at zero tolerance — any increase is a regression;
//! * **achievement counters** (`piggybacked`, `fast_paths`,
//!   `words_reclaimed`, ...) gate the opposite direction: a *decrease*
//!   fails;
//! * **workload parameters** (`objects`, `replicas`, `stores`, ...) and
//!   every non-numeric cell must match exactly — a mismatch means the
//!   benchmark shape changed and the baseline must be regenerated
//!   (`scripts/update_baseline.sh`), which is reported distinctly.
//!
//! Tables are matched by the title prefix before the first `:` (so `E4b`
//! survives cosmetic title edits) and rows by their first cell. A table or
//! row present in the baseline but missing from the current run fails;
//! new tables or rows only present in the current run are reported but
//! pass, so a PR adding an experiment does not need a two-step dance.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Minimal JSON value — just the shapes `Table::to_json` emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// String.
    Str(String),
    /// Number (kept as f64; the tables only hold integers and short
    /// decimals, all exactly representable).
    Num(f64),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order irrelevant).
    Obj(BTreeMap<String, Json>),
}

/// Parses a JSON document. Supports objects, arrays, strings with the
/// escapes `Table::to_json` produces, numbers, and the literals
/// `true`/`false`/`null` (mapped to 1/0/0 — the tables never emit them,
/// but a hand-edited baseline should not crash the gate).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Num(1.0)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Num(0.0)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Num(0.0)),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            _ => {
                // UTF-8 continuation bytes pass through untouched.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| "bad utf8 in string")?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("bad number at offset {start}"))
}

/// One parsed benchmark table.
#[derive(Clone, Debug)]
pub struct BenchTable {
    /// Full title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Stringified rows.
    pub rows: Vec<Vec<String>>,
}

impl BenchTable {
    /// The stable match key: the title up to the first `:`.
    pub fn key(&self) -> &str {
        self.title.split(':').next().unwrap_or(&self.title).trim()
    }
}

/// Extracts the `tables` array from a parsed `BENCH_tables.json` document.
pub fn extract_tables(doc: &Json) -> Result<Vec<BenchTable>, String> {
    let Json::Obj(root) = doc else {
        return Err("root is not an object".into());
    };
    let Some(Json::Arr(tables)) = root.get("tables") else {
        return Err("missing \"tables\" array".into());
    };
    let get_str = |v: &Json| -> Result<String, String> {
        if let Json::Str(s) = v {
            Ok(s.clone())
        } else if let Json::Num(n) = v {
            Ok(fmt_num(*n))
        } else {
            Err("expected scalar cell".into())
        }
    };
    let mut out = Vec::new();
    for t in tables {
        let Json::Obj(t) = t else {
            return Err("table entry is not an object".into());
        };
        let Some(Json::Str(title)) = t.get("title") else {
            return Err("table missing title".into());
        };
        let Some(Json::Arr(headers)) = t.get("headers") else {
            return Err(format!("table {title:?} missing headers"));
        };
        let Some(Json::Arr(rows)) = t.get("rows") else {
            return Err(format!("table {title:?} missing rows"));
        };
        out.push(BenchTable {
            title: title.clone(),
            headers: headers.iter().map(&get_str).collect::<Result<_, _>>()?,
            rows: rows
                .iter()
                .map(|r| {
                    let Json::Arr(cells) = r else {
                        return Err("row is not an array".into());
                    };
                    cells.iter().map(&get_str).collect()
                })
                .collect::<Result<_, _>>()?,
        });
    }
    Ok(out)
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Gate direction and tolerance for one column.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Noisy wall-clock measurement: regression if
    /// `current > baseline * (1 + tol)`.
    TimeLowerBetter,
    /// Noisy wall-clock throughput (`*_per_sec`): regression if
    /// `current < baseline * (1 - tol)` — same relative band as
    /// [`Gate::TimeLowerBetter`], opposite direction.
    RateHigherBetter,
    /// Deterministic cost counter: regression on any increase.
    CounterLowerBetter,
    /// Deterministic achievement counter: regression on any decrease.
    CounterHigherBetter,
    /// Workload parameter / identity cell: must match exactly.
    Identity,
}

/// Achievement counters — more is better.
const HIGHER_BETTER: &[&str] = &[
    "piggybacked",
    "fast_paths",
    "words_reclaimed",
    "completed",
    "recovered",
    "parts_verified",
];

/// Workload-shape parameters — a change means the benchmark itself
/// changed, which is a baseline-update event, not a regression.
const PARAMS: &[&str] = &[
    "replicas",
    "readers",
    "synced",
    "bunches",
    "heap_objs",
    "objects",
    "steps",
    "stores",
    "loads",
    "relocated",
    "ring_len",
    "hops",
    "drop",
    "remote_frac",
    "mutators",
];

/// Classifies a column by header name. The first column is always the row
/// key and therefore [`Gate::Identity`].
pub fn classify(header: &str, col: usize) -> Gate {
    if col == 0 || PARAMS.contains(&header) {
        return Gate::Identity;
    }
    if header.ends_with("_us") || header.contains("ns/") || header.ends_with("_ticks") {
        return Gate::TimeLowerBetter;
    }
    if header.ends_with("_per_sec") {
        return Gate::RateHigherBetter;
    }
    if HIGHER_BETTER.contains(&header) {
        return Gate::CounterHigherBetter;
    }
    Gate::CounterLowerBetter
}

/// Outcome of one diff run.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Human-readable regression lines; non-empty means the gate fails.
    pub regressions: Vec<String>,
    /// Benchmark-shape mismatches (also failing, but with the
    /// update-the-baseline remedy).
    pub shape_changes: Vec<String>,
    /// Informational improvement lines.
    pub improvements: Vec<String>,
    /// Informational notes (new tables, new rows).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Whether the perf gate passes.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty() && self.shape_changes.is_empty()
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let section = |out: &mut String, head: &str, lines: &[String]| {
            if !lines.is_empty() {
                let _ = writeln!(out, "{head}");
                for l in lines {
                    let _ = writeln!(out, "  {l}");
                }
            }
        };
        section(&mut out, "REGRESSIONS:", &self.regressions);
        section(&mut out, "BENCHMARK SHAPE CHANGES (regenerate the baseline with scripts/update_baseline.sh if intentional):", &self.shape_changes);
        section(&mut out, "improvements:", &self.improvements);
        section(&mut out, "notes:", &self.notes);
        if self.pass() {
            let _ = writeln!(out, "perf gate: PASS");
        } else {
            let _ = writeln!(out, "perf gate: FAIL");
        }
        out
    }
}

/// Merges repeated measurement runs into one best-case snapshot, cell by
/// cell: wall-clock and cost columns take the minimum across runs,
/// achievement columns the maximum. Repeating the run and keeping the
/// best case filters the one-sided noise of a shared CI runner (a
/// scheduler stall only ever makes a benchmark *slower*). Deterministic
/// counters are identical across runs anyway, so min == max for them.
/// Tables or rows missing from later runs keep the earlier runs' cells.
pub fn merge_best(runs: &[Vec<BenchTable>]) -> Vec<BenchTable> {
    let mut merged: Vec<BenchTable> = runs.first().cloned().unwrap_or_default();
    for run in &runs[1..] {
        for t in run {
            let Some(m) = merged
                .iter_mut()
                .find(|m| m.key() == t.key() && m.headers == t.headers)
            else {
                merged.push(t.clone());
                continue;
            };
            for row in &t.rows {
                let key = row_key(&t.headers, row);
                let Some(mrow) = m.rows.iter_mut().find(|r| row_key(&t.headers, r) == key) else {
                    m.rows.push(row.clone());
                    continue;
                };
                for (col, header) in t.headers.iter().enumerate() {
                    let keep_max = match classify(header, col) {
                        Gate::Identity => continue,
                        Gate::CounterHigherBetter | Gate::RateHigherBetter => true,
                        Gate::TimeLowerBetter | Gate::CounterLowerBetter => false,
                    };
                    let (Ok(old), Ok(new)) = (mrow[col].parse::<f64>(), row[col].parse::<f64>())
                    else {
                        continue;
                    };
                    if (keep_max && new > old) || (!keep_max && new < old) {
                        mrow[col] = row[col].clone();
                    }
                }
            }
        }
    }
    merged
}

/// Renders tables back to the `BENCH_tables.json` document format (via
/// [`crate::table::Table`], so the output is byte-compatible with what the
/// `tables` binary writes).
pub fn render_json(tables: &[BenchTable]) -> String {
    let rendered: Vec<String> = tables
        .iter()
        .map(|t| {
            let mut out = crate::table::Table::new(
                &t.title,
                &t.headers.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            for r in &t.rows {
                out.row(r.clone());
            }
            out.to_json()
        })
        .collect();
    format!(
        "{{\n  \"tables\": [\n  {}\n  ]\n}}\n",
        rendered.join(",\n  ")
    )
}

/// Diffs `current` against `baseline` with the given relative tolerance for
/// wall-clock columns.
pub fn diff(baseline: &[BenchTable], current: &[BenchTable], time_tol: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|t| t.key() == base.key()) else {
            report
                .shape_changes
                .push(format!("table {} disappeared", base.key()));
            continue;
        };
        diff_table(base, cur, time_tol, &mut report);
    }
    for cur in current {
        if !baseline.iter().any(|t| t.key() == cur.key()) {
            report
                .notes
                .push(format!("new table {} (not in baseline)", cur.key()));
        }
    }
    report
}

/// The row key: every identity-classified cell (row label plus workload
/// parameters). Tables like E2 repeat the label across parameter sweeps
/// ("bmx" × readers ∈ {1,2,4,8}), so the label alone is ambiguous.
fn row_key(headers: &[String], row: &[String]) -> String {
    headers
        .iter()
        .enumerate()
        .filter(|(col, h)| classify(h, *col) == Gate::Identity)
        .map(|(col, _)| row[col].as_str())
        .collect::<Vec<_>>()
        .join(" / ")
}

fn diff_table(base: &BenchTable, cur: &BenchTable, time_tol: f64, report: &mut DiffReport) {
    if base.headers != cur.headers {
        report.shape_changes.push(format!(
            "{}: headers changed {:?} -> {:?}",
            base.key(),
            base.headers,
            cur.headers
        ));
        return;
    }
    for brow in &base.rows {
        let key = row_key(&base.headers, brow);
        let Some(crow) = cur.rows.iter().find(|r| row_key(&cur.headers, r) == key) else {
            report
                .shape_changes
                .push(format!("{} row {key:?} disappeared", base.key()));
            continue;
        };
        for (col, header) in base.headers.iter().enumerate() {
            let (b, c) = (&brow[col], &crow[col]);
            let place = format!("{} [{key} / {header}]", base.key());
            match classify(header, col) {
                // Identity columns form the row key: equal by construction.
                Gate::Identity => {}
                gate => {
                    let (Ok(bv), Ok(cv)) = (b.parse::<f64>(), c.parse::<f64>()) else {
                        if b != c {
                            report
                                .shape_changes
                                .push(format!("{place}: non-numeric cell changed {b} -> {c}"));
                        }
                        continue;
                    };
                    check(gate, bv, cv, time_tol, &place, report);
                }
            }
        }
    }
    for crow in &cur.rows {
        let key = row_key(&cur.headers, crow);
        if !base.rows.iter().any(|r| row_key(&base.headers, r) == key) {
            report.notes.push(format!("{} new row {key:?}", base.key()));
        }
    }
}

fn check(gate: Gate, base: f64, cur: f64, time_tol: f64, place: &str, report: &mut DiffReport) {
    match gate {
        Gate::TimeLowerBetter => {
            if cur > base * (1.0 + time_tol) {
                report.regressions.push(format!(
                    "{place}: {base} -> {cur} (+{:.0}%, tolerance {:.0}%)",
                    (cur / base.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                    time_tol * 100.0
                ));
            } else if base > 0.0 && cur < base * (1.0 - time_tol) {
                report.improvements.push(format!(
                    "{place}: {base} -> {cur} (-{:.0}%)",
                    (1.0 - cur / base) * 100.0
                ));
            }
        }
        Gate::RateHigherBetter => {
            if cur < base * (1.0 - time_tol) {
                report.regressions.push(format!(
                    "{place}: {base} -> {cur} (-{:.0}%, tolerance {:.0}%)",
                    (1.0 - cur / base.max(f64::MIN_POSITIVE)) * 100.0,
                    time_tol * 100.0
                ));
            } else if cur > base * (1.0 + time_tol) {
                report.improvements.push(format!(
                    "{place}: {base} -> {cur} (+{:.0}%)",
                    (cur / base.max(f64::MIN_POSITIVE) - 1.0) * 100.0
                ));
            }
        }
        Gate::CounterLowerBetter => {
            if cur > base {
                report.regressions.push(format!(
                    "{place}: {base} -> {cur} (deterministic counter rose)"
                ));
            } else if cur < base {
                report
                    .improvements
                    .push(format!("{place}: {base} -> {cur}"));
            }
        }
        Gate::CounterHigherBetter => {
            if cur < base {
                report.regressions.push(format!(
                    "{place}: {base} -> {cur} (achievement counter fell)"
                ));
            } else if cur > base {
                report
                    .improvements
                    .push(format!("{place}: {base} -> {cur}"));
            }
        }
        Gate::Identity => unreachable!("identity handled by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(title: &str, headers: &[&str], rows: &[&[&str]]) -> BenchTable {
        BenchTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
        }
    }

    #[test]
    fn parses_the_tables_json_shape() {
        let doc = parse_json(
            r#"{ "tables": [ { "title": "E1: x", "headers": ["a", "b_us"],
                 "rows": [["1", "426"], ["2", "380"]] } ] }"#,
        )
        .unwrap();
        let tables = extract_tables(&doc).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].key(), "E1");
        assert_eq!(tables[0].rows[1], vec!["2", "380"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse_json(
            r#"{"tables": [{"title": "q\"uote\\n", "headers": ["a"], "rows": [["x\ny"]]}]}"#,
        )
        .unwrap();
        let t = extract_tables(&doc).unwrap();
        assert_eq!(t[0].title, "q\"uote\\n");
        assert_eq!(t[0].rows[0][0], "x\ny");
    }

    #[test]
    fn classification_covers_the_published_columns() {
        assert_eq!(classify("bmx_us", 1), Gate::TimeLowerBetter);
        assert_eq!(classify("ns/store", 2), Gate::TimeLowerBetter);
        assert_eq!(classify("refault_msgs", 4), Gate::CounterLowerBetter);
        assert_eq!(classify("envelopes", 2), Gate::CounterLowerBetter);
        assert_eq!(classify("piggybacked", 3), Gate::CounterHigherBetter);
        assert_eq!(classify("ops_per_sec", 2), Gate::RateHigherBetter);
        assert_eq!(classify("objects", 1), Gate::Identity);
        assert_eq!(classify("whatever", 0), Gate::Identity);
    }

    #[test]
    fn rate_gate_bands_throughput_drops_only() {
        let base = [table(
            "E13: t",
            &["nodes", "ops_per_sec"],
            &[&["2", "1000"]],
        )];
        let slow = [table("E13: t", &["nodes", "ops_per_sec"], &[&["2", "790"]])];
        let ok = [table("E13: t", &["nodes", "ops_per_sec"], &[&["2", "810"]])];
        let fast = [table(
            "E13: t",
            &["nodes", "ops_per_sec"],
            &[&["2", "5000"]],
        )];
        assert!(!diff(&base, &slow, 0.20).pass());
        assert!(diff(&base, &ok, 0.20).pass());
        assert!(
            diff(&base, &fast, 0.20).pass(),
            "faster is never a regression"
        );
    }

    #[test]
    fn time_regression_beyond_band_fails() {
        let base = [table("E1: t", &["n", "bmx_us"], &[&["1", "100"]])];
        let slow = [table("E1: t", &["n", "bmx_us"], &[&["1", "121"]])];
        let ok = [table("E1: t", &["n", "bmx_us"], &[&["1", "119"]])];
        assert!(!diff(&base, &slow, 0.20).pass());
        assert!(diff(&base, &ok, 0.20).pass());
    }

    #[test]
    fn counter_gates_are_zero_tolerance_and_direction_aware() {
        let base = [table(
            "E2: t",
            &["collector", "refault_msgs", "piggybacked"],
            &[&["bmx", "240", "50"]],
        )];
        let worse_cost = [table(
            "E2: t",
            &["collector", "refault_msgs", "piggybacked"],
            &[&["bmx", "241", "50"]],
        )];
        let worse_wins = [table(
            "E2: t",
            &["collector", "refault_msgs", "piggybacked"],
            &[&["bmx", "240", "49"]],
        )];
        let better = [table(
            "E2: t",
            &["collector", "refault_msgs", "piggybacked"],
            &[&["bmx", "239", "51"]],
        )];
        assert!(!diff(&base, &worse_cost, 0.4).pass());
        assert!(!diff(&base, &worse_wins, 0.4).pass());
        let rep = diff(&base, &better, 0.4);
        assert!(rep.pass());
        assert_eq!(rep.improvements.len(), 2);
    }

    #[test]
    fn shape_changes_fail_with_the_update_remedy() {
        let base = [table("E4: t", &["n", "per_bunch_us"], &[&["1", "100"]])];
        let gone = diff(&base, &[], 0.4);
        assert!(!gone.pass());
        assert!(gone.render().contains("update_baseline.sh"));

        let param = [table("E4: t", &["n", "per_bunch_us"], &[&["2", "100"]])];
        let rep = diff(&base, &param, 0.4);
        assert!(!rep.pass());
        assert!(!rep.shape_changes.is_empty());
    }

    #[test]
    fn merge_keeps_the_best_case_per_direction() {
        let run1 = vec![table(
            "E8: t",
            &["kind", "ns/store", "fast_paths"],
            &[&["data", "84", "4900"]],
        )];
        let run2 = vec![table(
            "E8: t",
            &["kind", "ns/store", "fast_paths"],
            &[&["data", "56", "5000"]],
        )];
        let merged = merge_best(&[run1, run2]);
        assert_eq!(merged[0].rows[0], vec!["data", "56", "5000"]);
    }

    #[test]
    fn new_tables_and_rows_pass_with_a_note() {
        let base = [table("E1: t", &["n", "bmx_us"], &[&["1", "100"]])];
        let cur = [
            table("E1: t", &["n", "bmx_us"], &[&["1", "100"], &["2", "150"]]),
            table("E12: new", &["mode", "envelopes"], &[&["coalesced", "9"]]),
        ];
        let rep = diff(&base, &cur, 0.4);
        assert!(rep.pass());
        assert_eq!(rep.notes.len(), 2);
    }
}
