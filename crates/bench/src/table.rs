//! Minimal aligned-table printing for the `tables` binary.

/// A printable table: a title, column headers, and string rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as a JSON object `{"title", "headers", "rows"}` —
    /// the machine-readable twin of [`Table::render`], consumed by
    /// `BENCH_tables.json`.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let list = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(", ");
        let rows = self
            .rows
            .iter()
            .map(|r| format!("      [{}]", list(r)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n    \"title\": {},\n    \"headers\": [{}],\n    \"rows\": [\n{}\n    ]\n  }}",
            esc(&self.title),
            list(&self.headers),
            rows
        )
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_escapes_and_nests() {
        let mut t = Table::new("q\"uote", &["a", "b"]);
        t.row(vec!["1".into(), "x\\y".into()]);
        let j = t.to_json();
        assert!(j.contains(r#""title": "q\"uote""#));
        assert!(j.contains(r#""x\\y""#));
        assert!(j.contains(r#""headers": ["a", "b"]"#));
    }
}
