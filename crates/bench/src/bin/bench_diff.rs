//! Perf-regression gate: diffs a fresh `BENCH_tables.json` against the
//! committed `BENCH_baseline.json`.
//!
//! Usage: `bench-diff <baseline.json> <current.json>... [--tol <frac>]`
//!
//! Exits nonzero on any regression (per-metric, direction-aware — see
//! `bmx_bench::diff` for the policy) or benchmark-shape change. `--tol`
//! sets the relative tolerance band for wall-clock columns (default 0.40;
//! deterministic counters are always gated at zero tolerance). Passing
//! several current snapshots merges them cell-wise into the best case
//! first — the CI lane runs the tables twice to filter one-sided
//! scheduler noise.

//!
//! `bench-diff --merge <out.json> <run.json>...` instead merges the runs
//! and writes the best-case snapshot without diffing — used by
//! `scripts/update_baseline.sh` to refresh `BENCH_baseline.json`.

use bmx_bench::diff::{diff, extract_tables, merge_best, parse_json, render_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol = 0.40f64;
    let mut merge_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--merge" {
            let v = it
                .next()
                .unwrap_or_else(|| usage("missing path for --merge"));
            merge_out = Some(v.clone());
        } else if a == "--tol" {
            let v = it
                .next()
                .unwrap_or_else(|| usage("missing value for --tol"));
            tol = v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad --tol value {v:?}")));
        } else if a == "--help" || a == "-h" {
            usage("");
        } else {
            paths.push(a.clone());
        }
    }
    let load = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let doc = parse_json(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        extract_tables(&doc).unwrap_or_else(|e| fail(&format!("bad tables in {path}: {e}")))
    };
    if let Some(out) = merge_out {
        if paths.is_empty() {
            usage("--merge needs at least one run snapshot");
        }
        let runs: Vec<_> = paths.iter().map(|p| load(p)).collect();
        let merged = render_json(&merge_best(&runs));
        std::fs::write(&out, merged).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        eprintln!("wrote best-of-{} snapshot to {out}", paths.len());
        return;
    }
    if paths.len() < 2 {
        usage("expected a baseline and at least one current snapshot");
    }
    let baseline = load(&paths[0]);
    let runs: Vec<_> = paths[1..].iter().map(|p| load(p)).collect();
    let current = merge_best(&runs);
    let report = diff(&baseline, &current, tol);
    print!("{}", report.render());
    std::process::exit(if report.pass() { 0 } else { 1 });
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: bench-diff <baseline.json> <current.json>... [--tol <frac>]");
    eprintln!("       bench-diff --merge <out.json> <run.json>...");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
