//! Regenerates every evaluation table (experiments E1–E10).
//!
//! Usage: `cargo run --release -p bmx-bench --bin tables [e1 e2 ...]`
//! (no arguments = all experiments). A full run rewrites both
//! `tables_output.txt` (human-readable) and `BENCH_tables.json`
//! (machine-readable) in the repository root; a partial run only prints.
//!
//! Set `BMX_METRICS=1` to run with the metrics plane installed: the run
//! then also dumps a metrics snapshot to `target/bench_metrics.json` and
//! a Prometheus rendering to `target/bench_metrics.prom`. The E4 pause
//! tables are the overhead canary — they must reproduce within noise
//! whether or not metrics are enabled (see DESIGN.md §9).

use bmx_bench::experiments::*;
use bmx_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let metered = std::env::var("BMX_METRICS").is_ok_and(|v| v == "1");
    if metered {
        bmx_metrics::install();
    }

    let mut tables: Vec<Table> = Vec::new();

    if want("e1") {
        let rows = e1_replication::run(&[1, 2, 4, 8, 16]);
        tables.push(e1_replication::table(&rows));
    }
    if want("e2") {
        let mut rows = Vec::new();
        for readers in [1, 2, 4, 8] {
            rows.extend(e2_interference::run(readers));
        }
        tables.push(e2_interference::table(&rows));
    }
    if want("e3") {
        let mut rows = Vec::new();
        for synced in [10, 50, 100] {
            rows.extend(e3_piggyback::run(synced));
        }
        tables.push(e3_piggyback::table(&rows));
    }
    if want("e4") {
        let rows = e4_pause::run(&[1, 2, 4, 8, 16, 32]);
        tables.push(e4_pause::table(&rows));
        let rows = e4_pause::run_flip(&[100, 400, 1600]);
        tables.push(e4_pause::flip_table(&rows));
    }
    if want("e5") {
        let rows = e5_message_loss::run(&[0.0, 0.1, 0.3, 0.5]);
        tables.push(e5_message_loss::table(&rows));
    }
    if want("e6") {
        let rows = e6_ssp_ablation::run(&[0, 1, 2, 4, 8]);
        tables.push(e6_ssp_ablation::table(&rows));
    }
    if want("e7") {
        let rows = e7_cycles::run(&[2, 4, 8, 16, 32]);
        tables.push(e7_cycles::table(&rows));
    }
    if want("e8") {
        let rows = e8_barrier::run();
        tables.push(e8_barrier::table(&rows));
    }
    if want("e9") {
        let rows = e9_recovery::run(&[(2, 4), (4, 8), (8, 16), (16, 16)]);
        tables.push(e9_recovery::table(&rows));
        let rows = e9_recovery::run_rejoin(&[(2, 4), (4, 8), (8, 16)]);
        tables.push(e9_recovery::rejoin_table(&rows));
    }
    if want("e10") {
        let rows = e10_fromspace::run(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        tables.push(e10_fromspace::table(&rows));
    }
    if want("e11") {
        let rows = e11_consistency::run();
        tables.push(e11_consistency::table(&rows));
    }
    if want("e12") {
        let rows = e12_hot_paths::run();
        tables.push(e12_hot_paths::table(&rows));
    }
    if want("e13") {
        let rows = e13_parallel::run(&[2, 4]);
        tables.push(e13_parallel::table(&rows));
    }

    let mut text = String::new();
    for t in &tables {
        text.push_str(&t.render());
    }
    print!("{text}");

    // A full run refreshes the committed artifacts; a subset run would
    // silently drop the other experiments' tables, so it only prints.
    if args.is_empty() {
        let json = format!(
            "{{\n  \"tables\": [\n  {}\n  ]\n}}\n",
            tables
                .iter()
                .map(Table::to_json)
                .collect::<Vec<_>>()
                .join(",\n  ")
        );
        std::fs::write("tables_output.txt", &text).expect("write tables_output.txt");
        std::fs::write("BENCH_tables.json", &json).expect("write BENCH_tables.json");
    }

    if metered {
        let snap = bmx_metrics::snapshot();
        std::fs::create_dir_all("target").ok();
        std::fs::write(
            "target/bench_metrics.json",
            bmx_metrics::json::to_json(&snap),
        )
        .expect("write bench metrics snapshot");
        if let Some(reg) = bmx_metrics::registry() {
            std::fs::write(
                "target/bench_metrics.prom",
                bmx_metrics::prometheus::render(&reg),
            )
            .expect("write bench metrics exposition");
        }
    }
}
