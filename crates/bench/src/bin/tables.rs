//! Regenerates every evaluation table (experiments E1–E10).
//!
//! Usage: `cargo run --release -p bmx-bench --bin tables [e1 e2 ...]`
//! (no arguments = all experiments). The output of a full run is recorded
//! in EXPERIMENTS.md.

use bmx_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("e1") {
        let rows = e1_replication::run(&[1, 2, 4, 8, 16]);
        print!("{}", e1_replication::table(&rows).render());
    }
    if want("e2") {
        let mut rows = Vec::new();
        for readers in [1, 2, 4, 8] {
            rows.extend(e2_interference::run(readers));
        }
        print!("{}", e2_interference::table(&rows).render());
    }
    if want("e3") {
        let mut rows = Vec::new();
        for synced in [10, 50, 100] {
            rows.extend(e3_piggyback::run(synced));
        }
        print!("{}", e3_piggyback::table(&rows).render());
    }
    if want("e4") {
        let rows = e4_pause::run(&[1, 2, 4, 8, 16, 32]);
        print!("{}", e4_pause::table(&rows).render());
        let rows = e4_pause::run_flip(&[100, 400, 1600]);
        print!("{}", e4_pause::flip_table(&rows).render());
    }
    if want("e5") {
        let rows = e5_message_loss::run(&[0.0, 0.1, 0.3, 0.5]);
        print!("{}", e5_message_loss::table(&rows).render());
    }
    if want("e6") {
        let rows = e6_ssp_ablation::run(&[0, 1, 2, 4, 8]);
        print!("{}", e6_ssp_ablation::table(&rows).render());
    }
    if want("e7") {
        let rows = e7_cycles::run(&[2, 4, 8, 16, 32]);
        print!("{}", e7_cycles::table(&rows).render());
    }
    if want("e8") {
        let rows = e8_barrier::run();
        print!("{}", e8_barrier::table(&rows).render());
    }
    if want("e9") {
        let rows = e9_recovery::run(&[(2, 4), (4, 8), (8, 16), (16, 16)]);
        print!("{}", e9_recovery::table(&rows).render());
        let rows = e9_recovery::run_rejoin(&[(2, 4), (4, 8), (8, 16)]);
        print!("{}", e9_recovery::rejoin_table(&rows).render());
    }
    if want("e10") {
        let rows = e10_fromspace::run(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        print!("{}", e10_fromspace::table(&rows).render());
    }
    if want("e11") {
        let rows = e11_consistency::run();
        print!("{}", e11_consistency::table(&rows).render());
    }
}
