//! E2 — collector/consistency interference (Sections 4.2 and 8).
//!
//! Readers on R nodes hold read tokens over the whole working set. A
//! collection runs at the owner; afterwards each reader re-reads the
//! working set. Under the BGC, every re-read is a local token hit (zero
//! messages); under the token-acquiring baseline every replica was
//! invalidated, so the readers' working set must be re-faulted through the
//! protocol — the disruption the paper's design exists to avoid.

use bmx_baselines::strong_bgc;
use bmx_common::{NodeId, StatKind};

use crate::fixtures;
use crate::table::Table;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which collector ran.
    pub collector: &'static str,
    /// Reader nodes.
    pub readers: u32,
    /// Tokens the collector acquired.
    pub gc_token_acquires: u64,
    /// Replicas invalidated on the collector's behalf.
    pub gc_invalidations: u64,
    /// DSM messages the readers needed to restore their working set.
    pub refault_msgs: u64,
}

/// Objects in the working set.
pub const OBJECTS: usize = 120;

/// Runs both collectors for the given reader count.
pub fn run(readers: u32) -> Vec<Row> {
    ["bmx", "strong"]
        .into_iter()
        .map(|which| {
            let mut fx = fixtures::replicated_list(readers + 1, OBJECTS).expect("fixture");
            fixtures::warm_readers(&mut fx).expect("warm");
            let before_gc: Vec<_> = fx.cluster.stats.to_vec();
            match which {
                "bmx" => {
                    fx.cluster.run_bgc(NodeId(0), fx.bunch).expect("bgc");
                }
                _ => {
                    strong_bgc(&mut fx.cluster, NodeId(0), fx.bunch).expect("strong");
                }
            }
            let gc_token_acquires = delta(&fx.cluster, &before_gc, StatKind::GcTokenAcquires);
            let gc_invalidations = delta(&fx.cluster, &before_gc, StatKind::GcInvalidations);

            // Readers re-touch their working set.
            let before_read: Vec<_> = fx.cluster.stats.to_vec();
            for i in 1..=readers {
                for &cell in &fx.list.cells {
                    fx.cluster.acquire_read(NodeId(i), cell).expect("re-read");
                    fx.cluster.release(NodeId(i), cell).expect("release");
                }
            }
            let refault_msgs = delta(&fx.cluster, &before_read, StatKind::DsmProtocolMessages);
            Row {
                collector: which,
                readers,
                gc_token_acquires,
                gc_invalidations,
                refault_msgs,
            }
        })
        .collect()
}

fn delta(cluster: &bmx::Cluster, before: &[bmx_common::NodeStats], kind: StatKind) -> u64 {
    cluster
        .stats
        .iter()
        .zip(before)
        .map(|(now, then)| now.get(kind) - then.get(kind))
        .sum()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E2: consistency interference (120-object working set)",
        &["collector", "readers", "gc_tok", "gc_inval", "refault_msgs"],
    );
    for r in rows {
        t.row(vec![
            r.collector.to_string(),
            r.readers.to_string(),
            r.gc_token_acquires.to_string(),
            r.gc_invalidations.to_string(),
            r.refault_msgs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgc_causes_zero_refaults() {
        let rows = run(2);
        let bmx = &rows[0];
        let strong = &rows[1];
        assert_eq!(bmx.gc_token_acquires, 0);
        assert_eq!(bmx.gc_invalidations, 0);
        assert_eq!(bmx.refault_msgs, 0, "readers' tokens survived the BGC");
        assert!(strong.gc_invalidations > 0);
        assert!(
            strong.refault_msgs > 0,
            "readers had to re-fault after the baseline"
        );
    }
}
