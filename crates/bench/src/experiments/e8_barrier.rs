//! E8 — write-barrier cost (Sections 3.2 and 8: every write is
//! instrumented; inter-bunch stores take the SSP-creating slow path).
//!
//! Measures the time per store for plain data stores (no barrier
//! bookkeeping), intra-bunch pointer stores (fast path), and inter-bunch
//! pointer stores (slow path; the first store per source/target pair
//! creates the SSP, repeats deduplicate).

use std::time::Instant;

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_common::{NodeId, StatKind};

use crate::table::Table;

/// One measured store kind.
#[derive(Clone, Debug)]
pub struct Row {
    /// Store kind.
    pub kind: &'static str,
    /// Stores performed.
    pub stores: u64,
    /// Nanoseconds per store.
    pub ns_per_store: u128,
    /// Barrier fast paths taken.
    pub fast_paths: u64,
    /// Barrier slow paths taken.
    pub slow_paths: u64,
}

/// Stores per measurement.
pub const STORES: u64 = 5_000;

/// Runs all three store kinds.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();
    // Shared fixture: two bunches at one node.
    let mut c = Cluster::new(ClusterConfig {
        segment_words: 1 << 16,
        ..ClusterConfig::with_nodes(1)
    });
    let n0 = NodeId(0);
    let b1 = c.create_bunch(n0).expect("bunch");
    let b2 = c.create_bunch(n0).expect("bunch");
    let src = c
        .alloc(n0, b1, &ObjSpec::with_refs(4, &[0, 1]))
        .expect("src");
    let same = c
        .alloc(n0, b1, &ObjSpec::data(1))
        .expect("same-bunch target");
    let other = c
        .alloc(n0, b2, &ObjSpec::data(1))
        .expect("other-bunch target");

    // Plain data stores.
    let t0 = Instant::now();
    for i in 0..STORES {
        c.write_data(n0, src, 2, i).expect("data store");
    }
    let data_ns = t0.elapsed().as_nanos() / STORES as u128;
    rows.push(Row {
        kind: "data",
        stores: STORES,
        ns_per_store: data_ns,
        fast_paths: 0,
        slow_paths: 0,
    });

    // Intra-bunch pointer stores (barrier fast path).
    let before = c.stats[0].clone();
    let t0 = Instant::now();
    for _ in 0..STORES {
        c.write_ref(n0, src, 0, same).expect("intra store");
    }
    let intra_ns = t0.elapsed().as_nanos() / STORES as u128;
    rows.push(Row {
        kind: "ref intra-bunch",
        stores: STORES,
        ns_per_store: intra_ns,
        fast_paths: c.stats[0].get(StatKind::BarrierFastPaths)
            - before.get(StatKind::BarrierFastPaths),
        slow_paths: c.stats[0].get(StatKind::BarrierSlowPaths)
            - before.get(StatKind::BarrierSlowPaths),
    });

    // Inter-bunch pointer stores (slow path; SSP created once, then
    // deduplicated).
    let before = c.stats[0].clone();
    let t0 = Instant::now();
    for _ in 0..STORES {
        c.write_ref(n0, src, 1, other).expect("inter store");
    }
    let inter_ns = t0.elapsed().as_nanos() / STORES as u128;
    rows.push(Row {
        kind: "ref inter-bunch",
        stores: STORES,
        ns_per_store: inter_ns,
        fast_paths: c.stats[0].get(StatKind::BarrierFastPaths)
            - before.get(StatKind::BarrierFastPaths),
        slow_paths: c.stats[0].get(StatKind::BarrierSlowPaths)
            - before.get(StatKind::BarrierSlowPaths),
    });
    rows
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E8: write-barrier cost per store (5000 stores each)",
        &["kind", "stores", "ns/store", "fast_paths", "slow_paths"],
    );
    for r in rows {
        t.row(vec![
            r.kind.to_string(),
            r.stores.to_string(),
            r.ns_per_store.to_string(),
            r.fast_paths.to_string(),
            r.slow_paths.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_paths_are_classified() {
        let rows = run();
        let intra = &rows[1];
        let inter = &rows[2];
        assert_eq!(intra.fast_paths, STORES);
        assert_eq!(intra.slow_paths, 0);
        assert_eq!(
            inter.slow_paths, STORES,
            "every inter-bunch store takes the slow path"
        );
    }
}
