//! E3 — lazy piggy-backed reference updating versus explicit messages
//! (Section 4.4: "no extra message is used").
//!
//! After a collection relocates part of the working set at the owner, a
//! second node synchronizes on a fraction of the objects. In piggy-back
//! mode the relocation records ride those acquire replies; in the explicit
//! ablation every relocation costs its own background message the moment
//! it happens.

use bmx_common::{NodeId, StatKind};
use bmx_gc::RelocMode;

use crate::fixtures;
use crate::table::Table;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Propagation mode.
    pub mode: &'static str,
    /// Objects relocated by the collection.
    pub relocated: u64,
    /// Objects the second node then synchronized on.
    pub synced: usize,
    /// Relocation records that travelled piggy-backed.
    pub piggybacked: u64,
    /// Explicit relocation messages sent.
    pub explicit_msgs: u64,
    /// Total GC-only messages on the wire (background class).
    pub background_msgs: u64,
}

/// Working-set size.
pub const OBJECTS: usize = 100;

/// Runs both modes, syncing `synced` objects after the collection.
pub fn run(synced: usize) -> Vec<Row> {
    [
        (RelocMode::Piggyback, "piggyback"),
        (RelocMode::Explicit, "explicit"),
    ]
    .into_iter()
    .map(|(mode, name)| {
        let mut fx = fixtures::replicated_list_with(2, OBJECTS, mode).expect("fixture");
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let stats = fx
            .cluster
            .run_bgc(n0, fx.bunch)
            .expect("bgc relocates the owner's objects");
        // Node 1 synchronizes on part of the set.
        for &cell in fx.list.cells.iter().take(synced) {
            fx.cluster.acquire_read(n1, cell).expect("sync");
            fx.cluster.release(n1, cell).expect("release");
        }
        Row {
            mode: name,
            relocated: stats.copied,
            synced,
            piggybacked: fx.cluster.total_stat(StatKind::PiggybackedRelocations),
            explicit_msgs: fx.cluster.total_stat(StatKind::ExplicitRelocationMessages),
            background_msgs: fx
                .cluster
                .net
                .class_stats(bmx_net::MsgClass::GcBackground)
                .sent,
        }
    })
    .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E3: relocation propagation (100 objects relocated at the owner)",
        &[
            "mode",
            "relocated",
            "synced",
            "piggybacked",
            "explicit_msgs",
            "bg_msgs",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mode.to_string(),
            r.relocated.to_string(),
            r.synced.to_string(),
            r.piggybacked.to_string(),
            r.explicit_msgs.to_string(),
            r.background_msgs.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piggyback_mode_sends_no_extra_messages() {
        let rows = run(40);
        let pig = &rows[0];
        let exp = &rows[1];
        assert!(pig.relocated > 0);
        assert_eq!(
            pig.explicit_msgs, 0,
            "the paper's claim: zero extra messages"
        );
        assert_eq!(pig.background_msgs, 0);
        assert!(
            pig.piggybacked > 0,
            "records travelled on protocol messages"
        );
        assert!(exp.explicit_msgs > 0, "the ablation pays real messages");
    }
}
