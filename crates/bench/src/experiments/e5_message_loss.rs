//! E5 — message loss tolerance (Section 6.1): idempotent reachability
//! tables versus Bevan-style increment/decrement counting.
//!
//! For each drop rate, the BMX side runs a churn workload whose tables are
//! lost with that probability, then re-sends the (idempotent) tables once
//! and measures: live objects lost (safety — must be zero) and garbage
//! still uncollected (liveness after recovery — must be zero). The
//! reference-counting baseline runs an equivalent event volume; its lost
//! inc/dec messages are unrecoverable, so counts corrupt.

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_baselines::refcount::RefCountSim;
use bmx_common::{Addr, NodeId};
use bmx_gc::RelocMode;
use bmx_net::{MsgClass, NetworkConfig};

use crate::table::Table;

/// One measured drop rate.
#[derive(Clone, Debug)]
pub struct Row {
    /// Probability each GC message is dropped.
    pub drop_rate: f64,
    /// BMX: tables dropped by the network during the run.
    pub bmx_tables_dropped: u64,
    /// BMX: live objects erroneously reclaimed (safety; must be 0).
    pub bmx_live_lost: u64,
    /// BMX: garbage still uncollected after one table re-send round.
    pub bmx_garbage_left: u64,
    /// Refcount baseline: messages dropped.
    pub rc_dropped: u64,
    /// Refcount baseline: live objects whose count hit zero (unsafe).
    pub rc_unsafe: u64,
    /// Refcount baseline: permanently leaked objects.
    pub rc_leaks: u64,
}

/// Population per run.
const OBJECTS: usize = 40;

/// Runs the sweep.
pub fn run(drop_rates: &[f64]) -> Vec<Row> {
    drop_rates.iter().map(|&p| run_one(p)).collect()
}

fn run_one(p: f64) -> Row {
    // --- BMX side: cross-bunch references under table loss. -------------
    let cfg = ClusterConfig {
        nodes: 2,
        net: NetworkConfig::lossless(1).with_drop(MsgClass::StubTable, p),
        reloc_mode: RelocMode::Piggyback,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let (n0, n1) = (NodeId(0), NodeId(1));
    let b_src = c.create_bunch(n0).expect("bunch");
    let b_tgt = c.create_bunch(n1).expect("bunch");
    // Half the targets will stay referenced, half become garbage.
    let holder = c
        .alloc(
            n0,
            b_src,
            &ObjSpec::with_refs(OBJECTS as u64, &(0..OBJECTS as u64).collect::<Vec<_>>()),
        )
        .expect("holder");
    c.add_root(n0, holder);
    let mut targets = Vec::new();
    for i in 0..OBJECTS {
        let t = c.alloc(n1, b_tgt, &ObjSpec::data(1)).expect("target");
        c.write_data(n1, t, 0, i as u64).expect("tag");
        c.write_ref(n0, holder, i as u64, t).expect("link");
        targets.push(t);
    }
    // Drop the odd-indexed references.
    for i in (1..OBJECTS).step_by(2) {
        c.write_ref(n0, holder, i as u64, Addr::NULL)
            .expect("unlink");
    }
    // Collections under loss: the source publishes tables (maybe eaten),
    // the target collects on whatever arrived.
    c.run_bgc(n0, b_src).expect("bgc src");
    c.run_bgc(n1, b_tgt).expect("bgc tgt");
    let dropped = c.net.class_stats(MsgClass::StubTable).dropped;
    // Recovery: one verbatim re-send over a healed channel, then collect.
    c.net.set_drop(MsgClass::StubTable, 0.0);
    c.resend_report(n0, b_src, &[n1]).expect("resend");
    c.run_bgc(n1, b_tgt).expect("bgc tgt after recovery");

    let mut live_lost = 0;
    let mut garbage_left = 0;
    for (i, &t) in targets.iter().enumerate() {
        let present = c.oid_at_local(n1, t).is_ok();
        if i % 2 == 0 {
            if !present {
                live_lost += 1;
            }
        } else if present {
            garbage_left += 1;
        }
    }

    // --- Reference-counting baseline at the same drop rate. -------------
    let mut sim = RefCountSim::new(OBJECTS as u64, 3, p, 0xE5);
    let rc = sim.run(OBJECTS as u64 * 40);

    Row {
        drop_rate: p,
        bmx_tables_dropped: dropped,
        bmx_live_lost: live_lost,
        bmx_garbage_left: garbage_left,
        rc_dropped: rc.dropped,
        rc_unsafe: rc.unsafe_reclaims,
        rc_leaks: rc.leaks,
    }
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E5: GC traffic under message loss (tables+resend vs inc/dec counting)",
        &[
            "drop",
            "tbl_drop",
            "bmx_live_lost",
            "bmx_garbage_left",
            "rc_drop",
            "rc_unsafe",
            "rc_leak",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}%", r.drop_rate * 100.0),
            r.bmx_tables_dropped.to_string(),
            r.bmx_live_lost.to_string(),
            r.bmx_garbage_left.to_string(),
            r.rc_dropped.to_string(),
            r.rc_unsafe.to_string(),
            r.rc_leaks.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_recover_where_counting_corrupts() {
        let rows = run(&[0.0, 0.5]);
        for r in &rows {
            assert_eq!(
                r.bmx_live_lost,
                0,
                "safety must hold at {:.0}%",
                r.drop_rate * 100.0
            );
            assert_eq!(
                r.bmx_garbage_left,
                0,
                "one re-send restores liveness at {:.0}%",
                r.drop_rate * 100.0
            );
        }
        assert_eq!(
            rows[0].rc_unsafe + rows[0].rc_leaks,
            0,
            "lossless counting is exact"
        );
        assert!(
            rows[1].rc_unsafe + rows[1].rc_leaks > 0,
            "lossy counting must corrupt: {:?}",
            rows[1]
        );
    }
}
