//! E9 — RVM-backed persistence and crash recovery (Sections 2.1 and 8):
//! checkpoint a collected (hence compacted) bunch, crash, recover, verify.

use std::time::Instant;

use bmx::persist;
use bmx::{Cluster, ClusterConfig};
use bmx_common::NodeId;
use bmx_rvm::{Rvm, RvmOptions};
use bmx_workloads::db;

use crate::table::Table;

/// One measured heap size.
#[derive(Clone, Debug)]
pub struct Row {
    /// Objects in the database graph.
    pub objects: usize,
    /// Bytes committed to the RVM log by the checkpoint.
    pub checkpoint_bytes: u64,
    /// Checkpoint wall time, microseconds.
    pub checkpoint_us: u128,
    /// Recovery wall time, microseconds.
    pub recover_us: u128,
    /// Parts verified intact after recovery.
    pub verified: usize,
}

/// Runs the sweep over database sizes (assemblies x parts).
pub fn run(sizes: &[(usize, usize)]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&(assemblies, parts)| {
            let dir = std::env::temp_dir().join(format!(
                "bmx-e9-{}-{}-{}",
                std::process::id(),
                assemblies,
                parts
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let n0 = NodeId(0);
            let (graph, checkpoint_bytes, checkpoint_us) = {
                let mut c = Cluster::new(ClusterConfig {
                    // Small segments so the checkpoint grows with the heap.
                    segment_words: 1 << 10,
                    ..ClusterConfig::with_nodes(1)
                });
                let b = c.create_bunch(n0).expect("bunch");
                let graph = db::build_db(&mut c, n0, b, assemblies, parts).expect("db");
                c.add_root(n0, graph.module);
                // Persistence by reachability: collect first, so only live
                // objects reach the disk image.
                c.run_bgc(n0, b).expect("bgc");
                let mut rvm = Rvm::open(&dir, RvmOptions::default()).expect("rvm");
                let t0 = Instant::now();
                persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).expect("checkpoint");
                (graph, rvm.log_bytes(), t0.elapsed().as_micros())
                // <- crash: everything volatile is dropped here
            };
            let mut c = Cluster::new(ClusterConfig {
                segment_words: 1 << 10,
                ..ClusterConfig::with_nodes(1)
            });
            let b = c.create_bunch(n0).expect("bunch");
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).expect("rvm");
            let t0 = Instant::now();
            persist::recover_bunch(&mut c, n0, b, &mut rvm).expect("recover");
            let recover_us = t0.elapsed().as_micros();
            let verified = db::verify_db(&c, n0, &graph).expect("verify");
            Row {
                objects: graph.object_count(),
                checkpoint_bytes,
                checkpoint_us,
                recover_us,
                verified,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E9: checkpoint / crash / recover (design database)",
        &[
            "objects",
            "ckpt_bytes",
            "ckpt_us",
            "recover_us",
            "parts_verified",
        ],
    );
    for r in rows {
        t.row(vec![
            r.objects.to_string(),
            r.checkpoint_bytes.to_string(),
            r.checkpoint_us.to_string(),
            r.recover_us.to_string(),
            r.verified.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_the_whole_graph() {
        let rows = run(&[(2, 4), (4, 8)]);
        assert_eq!(rows[0].verified, 8);
        assert_eq!(rows[1].verified, 32);
        assert!(rows[1].checkpoint_bytes > rows[0].checkpoint_bytes);
    }
}
