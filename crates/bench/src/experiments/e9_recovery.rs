//! E9 — RVM-backed persistence and crash recovery (Sections 2.1 and 8):
//! checkpoint a collected (hence compacted) bunch, crash, recover, verify.
//!
//! Two measurements. The single-node sweep ([`run`]) isolates the storage
//! substrate: checkpoint a compacted heap, drop everything volatile,
//! recover from disk alone. The live-rejoin sweep ([`run_rejoin`]) measures
//! the full crash-amnesia pipeline in a running 3-node cluster: a replica
//! holder crashes mid-workload, replays its RVM checkpoint, completes the
//! epoch-based rejoin handshake, and regenerates its scion/stub state from
//! peer reports — the latency a deployment actually observes.

use std::time::Instant;

use bmx::persist;
use bmx::{Cluster, ClusterConfig, PersistConfig, RetryPolicy};
use bmx_common::{Addr, BmxError, NodeId};
use bmx_net::{FaultPlan, NetworkConfig};
use bmx_rvm::{Rvm, RvmOptions};
use bmx_workloads::db;

use crate::table::Table;

/// One measured heap size.
#[derive(Clone, Debug)]
pub struct Row {
    /// Objects in the database graph.
    pub objects: usize,
    /// Bytes committed to the RVM log by the checkpoint.
    pub checkpoint_bytes: u64,
    /// Checkpoint wall time, microseconds.
    pub checkpoint_us: u128,
    /// Recovery wall time, microseconds.
    pub recover_us: u128,
    /// Parts verified intact after recovery.
    pub verified: usize,
}

/// Runs the sweep over database sizes (assemblies x parts).
pub fn run(sizes: &[(usize, usize)]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&(assemblies, parts)| {
            let dir = std::env::temp_dir().join(format!(
                "bmx-e9-{}-{}-{}",
                std::process::id(),
                assemblies,
                parts
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let n0 = NodeId(0);
            let (graph, checkpoint_bytes, checkpoint_us) = {
                let mut c = Cluster::new(ClusterConfig {
                    // Small segments so the checkpoint grows with the heap.
                    segment_words: 1 << 10,
                    ..ClusterConfig::with_nodes(1)
                });
                let b = c.create_bunch(n0).expect("bunch");
                let graph = db::build_db(&mut c, n0, b, assemblies, parts).expect("db");
                c.add_root(n0, graph.module);
                // Persistence by reachability: collect first, so only live
                // objects reach the disk image.
                c.run_bgc(n0, b).expect("bgc");
                let mut rvm = Rvm::open(&dir, RvmOptions::default()).expect("rvm");
                let t0 = Instant::now();
                persist::checkpoint_bunch(&mut c, n0, b, &mut rvm).expect("checkpoint");
                (graph, rvm.log_bytes(), t0.elapsed().as_micros())
                // <- crash: everything volatile is dropped here
            };
            let mut c = Cluster::new(ClusterConfig {
                segment_words: 1 << 10,
                ..ClusterConfig::with_nodes(1)
            });
            let b = c.create_bunch(n0).expect("bunch");
            let mut rvm = Rvm::open(&dir, RvmOptions::default()).expect("rvm");
            let t0 = Instant::now();
            persist::recover_bunch(&mut c, n0, b, &mut rvm).expect("recover");
            let recover_us = t0.elapsed().as_micros();
            let verified = db::verify_db(&c, n0, &graph).expect("verify");
            Row {
                objects: graph.object_count(),
                checkpoint_bytes,
                checkpoint_us,
                recover_us,
                verified,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E9: checkpoint / crash / recover (design database)",
        &[
            "objects",
            "ckpt_bytes",
            "ckpt_us",
            "recover_us",
            "parts_verified",
        ],
    );
    for r in rows {
        t.row(vec![
            r.objects.to_string(),
            r.checkpoint_bytes.to_string(),
            r.checkpoint_us.to_string(),
            r.recover_us.to_string(),
            r.verified.to_string(),
        ]);
    }
    t
}

/// One measured live rejoin.
#[derive(Clone, Debug)]
pub struct RejoinRow {
    /// Objects in the shared database graph.
    pub objects: usize,
    /// Simulated ticks from restart to rejoin completion (handshake +
    /// scion/stub regeneration).
    pub rejoin_ticks: u64,
    /// Wall-clock microseconds of the RVM replay stage.
    pub replay_us: u64,
    /// Objects the victim reinstalled from its checkpoint.
    pub recovered: usize,
    /// Orphans re-homed to surviving replica holders.
    pub orphans: usize,
    /// Peer reports applied during scion/stub regeneration.
    pub reports: usize,
    /// Parts verified intact at the root holder after the rejoin.
    pub verified: usize,
}

/// Fault windows for the live-rejoin sweep (simulated ticks). Setup of the
/// largest graph must finish well before `CRASH_START`; the workload keeps
/// running through the outage and past the rejoin.
const CRASH_START: u64 = 6_000;
const CRASH_END: u64 = 6_400;
const RUN_UNTIL: u64 = 7_500;

/// The live-rejoin sweep: for each database size, a 3-node cluster replicates
/// the graph everywhere, ownership of a working set migrates continuously,
/// and the victim replica (which has been collecting — and therefore
/// checkpointing — the shared bunch in rotation) amnesia-crashes mid-workload.
/// The row reports the rejoin latency split into its simulated and measured
/// parts, straight from the cluster's recovery log.
pub fn run_rejoin(sizes: &[(usize, usize)]) -> Vec<RejoinRow> {
    sizes
        .iter()
        .map(|&(assemblies, parts)| {
            let dir = std::env::temp_dir().join(format!(
                "bmx-e9-rejoin-{}-{}-{}",
                std::process::id(),
                assemblies,
                parts
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let (n0, n1, n2) = (NodeId(0), NodeId(1), NodeId(2));
            let victim = n2;
            let mut net = NetworkConfig::lossless(1).with_fault(FaultPlan::none().crash_amnesia(
                victim,
                CRASH_START,
                CRASH_END,
            ));
            net.seed = 9;
            let mut c = Cluster::new(ClusterConfig {
                nodes: 3,
                net,
                retry: Some(RetryPolicy {
                    initial_interval: 4,
                    backoff: 2,
                    max_interval: 32,
                    budget: 6,
                }),
                persist: Some(PersistConfig {
                    dir: dir.clone(),
                    truncate_log_bytes: Some(1 << 18),
                }),
                ..Default::default()
            });

            let shared = c.create_bunch(n0).expect("bunch");
            let graph = db::build_db(&mut c, n0, shared, assemblies, parts).expect("db");
            c.add_root(n0, graph.module);
            c.map_bunch(n1, shared, n0).expect("map n1");
            c.map_bunch(n2, shared, n0).expect("map n2");
            // The working set whose ownership keeps moving: one part per
            // assembly, capped so round cost stays flat across sizes.
            let working: Vec<Addr> = graph
                .parts
                .iter()
                .filter_map(|ps| ps.first().copied())
                .take(8)
                .collect();
            assert!(
                c.net.now() < CRASH_START,
                "setup ran into the crash window (now = {})",
                c.net.now()
            );

            let mut round = 0usize;
            while c.net.now() < RUN_UNTIL {
                let up: Vec<NodeId> = (0..c.nodes())
                    .map(NodeId)
                    .filter(|&p| !c.net.is_down(p) && !c.in_recovery(p))
                    .collect();
                for (i, &obj) in working.iter().enumerate() {
                    let site = up[(round + i) % up.len()];
                    match c.acquire_write(site, obj) {
                        Ok(()) => c.release(site, obj).expect("release"),
                        Err(BmxError::WouldBlock { .. }) | Err(BmxError::OwnerUnknown { .. }) => {}
                        Err(e) => panic!("migration hop failed: {e}"),
                    }
                }
                // The shared bunch's collector rotates over the up nodes, so
                // the victim checkpoints it (post-BGC) before the crash.
                let collector = up[round % up.len()];
                if c.gc.node(collector).bunches.contains_key(&shared) {
                    c.run_bgc(collector, shared).expect("bgc");
                }
                c.step(150).expect("step");
                round += 1;
            }
            c.settle(5_000).expect("settle");

            let rec = c
                .recovery_log
                .iter()
                .find(|r| r.node == victim)
                .expect("the victim recovered exactly once")
                .clone();
            let verified = db::verify_db(&c, n0, &graph).expect("verify");
            let _ = std::fs::remove_dir_all(&dir);
            RejoinRow {
                objects: graph.object_count(),
                rejoin_ticks: rec.complete_tick - rec.restart_tick,
                replay_us: rec.replay_micros,
                recovered: rec.objects_recovered,
                orphans: rec.orphans_adopted,
                reports: rec.reports_applied,
                verified,
            }
        })
        .collect()
}

/// Renders the live-rejoin table.
pub fn rejoin_table(rows: &[RejoinRow]) -> Table {
    let mut t = Table::new(
        "E9b: live rejoin latency (amnesia crash mid-workload, 3 nodes)",
        &[
            "objects",
            "rejoin_ticks",
            "replay_us",
            "recovered",
            "orphans",
            "reports",
            "parts_verified",
        ],
    );
    for r in rows {
        t.row(vec![
            r.objects.to_string(),
            r.rejoin_ticks.to_string(),
            r.replay_us.to_string(),
            r.recovered.to_string(),
            r.orphans.to_string(),
            r.reports.to_string(),
            r.verified.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_the_whole_graph() {
        let rows = run(&[(2, 4), (4, 8)]);
        assert_eq!(rows[0].verified, 8);
        assert_eq!(rows[1].verified, 32);
        assert!(rows[1].checkpoint_bytes > rows[0].checkpoint_bytes);
    }

    #[test]
    fn live_rejoin_measures_a_real_recovery() {
        let rows = run_rejoin(&[(2, 4)]);
        let r = &rows[0];
        assert_eq!(r.verified, 8, "the graph survived the crash");
        assert!(r.recovered > 0, "the checkpoint replay reinstalled objects");
        assert!(r.rejoin_ticks > 0, "the handshake took simulated time");
    }
}
