//! E11 — entry consistency versus per-operation (SC-style) coherence
//! (paper, Section 1: "weak consistency protocols seem to offer the best
//! performance when compared to sequential consistency") — the premise
//! that makes non-interfering GC worth having.
//!
//! Two nodes take turns scanning a shared working set, `reads_per_turn`
//! loads per turn. Under entry consistency each node acquires its tokens
//! once per turn (and keeps them while the peer only reads too); under the
//! SC-style bracket every load pays an acquire/release. Identical logical
//! work, very different protocol traffic.

use bmx_common::{NodeId, StatKind};

use crate::fixtures;
use crate::table::Table;

/// One measured mode.
#[derive(Clone, Debug)]
pub struct Row {
    /// Consistency style.
    pub mode: &'static str,
    /// Logical loads performed.
    pub loads: u64,
    /// DSM protocol messages exchanged.
    pub protocol_msgs: u64,
    /// Replica invalidations.
    pub invalidations: u64,
}

/// Working-set size.
pub const OBJECTS: usize = 40;
/// Scan turns per node.
pub const TURNS: usize = 5;

/// Runs both modes.
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();

    // Entry consistency: acquire once per object per node; subsequent
    // turns are local (read tokens are retained until someone writes).
    {
        let mut fx = fixtures::replicated_list(2, OBJECTS).expect("fixture");
        let before: u64 = fx.cluster.total_stat(StatKind::DsmProtocolMessages);
        let mut loads = 0;
        for _turn in 0..TURNS {
            for node in [NodeId(0), NodeId(1)] {
                for &cell in &fx.list.cells {
                    fx.cluster.acquire_read(node, cell).expect("acquire");
                    let _ = fx.cluster.read_data(node, cell, 1).expect("load");
                    fx.cluster.release(node, cell).expect("release");
                    loads += 1;
                }
            }
        }
        rows.push(Row {
            mode: "entry-consistency",
            loads,
            protocol_msgs: fx.cluster.total_stat(StatKind::DsmProtocolMessages) - before,
            invalidations: fx.cluster.total_stat(StatKind::Invalidations),
        });
    }

    // SC-style: every load is a write-acquire bracket on a counter bump —
    // the strongest per-operation style: exclusive access per operation.
    {
        let mut fx = fixtures::replicated_list(2, OBJECTS).expect("fixture");
        let before: u64 = fx.cluster.total_stat(StatKind::DsmProtocolMessages);
        let mut loads = 0;
        for _turn in 0..TURNS {
            for node in [NodeId(0), NodeId(1)] {
                for &cell in &fx.list.cells {
                    let v = fx.cluster.sc_read_data(node, cell, 1).expect("sc load");
                    fx.cluster
                        .sc_write_data(node, cell, 1, v)
                        .expect("sc store");
                    loads += 1;
                }
            }
        }
        rows.push(Row {
            mode: "per-op (SC-style)",
            loads,
            protocol_msgs: fx.cluster.total_stat(StatKind::DsmProtocolMessages) - before,
            invalidations: fx.cluster.total_stat(StatKind::Invalidations),
        });
    }
    rows
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E11: entry consistency vs per-operation coherence (40 objects, 5 turns x 2 nodes)",
        &["mode", "loads", "protocol_msgs", "invalidations"],
    );
    for r in rows {
        t.row(vec![
            r.mode.to_string(),
            r.loads.to_string(),
            r.protocol_msgs.to_string(),
            r.invalidations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_consistency_pays_far_fewer_messages() {
        let rows = run();
        let ec = &rows[0];
        let sc = &rows[1];
        assert_eq!(ec.loads, sc.loads, "identical logical work");
        assert!(
            ec.protocol_msgs * 4 < sc.protocol_msgs,
            "EC must be several times cheaper: {ec:?} vs {sc:?}"
        );
        assert!(sc.invalidations > ec.invalidations);
    }
}
