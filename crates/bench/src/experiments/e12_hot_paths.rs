//! E12 — hot-path accounting: envelope coalescing and zero-copy grant
//! images under write contention.
//!
//! Three nodes race for the write tokens of a small shared working set, so
//! every release serves queued requests — the protocol rounds where the
//! engine can pack a grant plus forwarded requests into one envelope. The
//! same seeded schedule runs with coalescing on (the default) and off (one
//! envelope per message, the pre-optimisation wire format). Logical
//! protocol work is identical either way; envelopes and wire bytes are
//! not. `image_words` counts the physical words memcpy'd into grant
//! images — with refcounted [`bmx_common::SharedWords`] buffers that is
//! exactly one capture per transfer, never per clone.

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_common::{Addr, NodeId, SplitMix64, StatKind};
use bmx_dsm::Token;
use bmx_net::{MsgClass, NetworkConfig};

use crate::table::Table;

/// One measured wire format.
#[derive(Clone, Debug)]
pub struct Row {
    /// Wire format ("coalesced" or "per-message").
    pub mode: &'static str,
    /// Constituent protocol messages (`DsmLogicalMessages`).
    pub logical_msgs: u64,
    /// Envelopes actually sent (`DsmProtocolMessages`).
    pub envelopes: u64,
    /// DSM-class bytes on the wire (payload plus envelope framing).
    pub dsm_bytes: u64,
    /// Words physically copied into grant images.
    pub image_words: u64,
}

/// Shared objects under contention.
pub const OBJECTS: usize = 5;
/// Contended write rounds.
pub const ROUNDS: usize = 40;

fn drive(coalesce: bool) -> Row {
    let cfg = ClusterConfig {
        nodes: 3,
        net: NetworkConfig::lossless(1),
        coalesce_dsm: coalesce,
        ..Default::default()
    };
    let mut c = Cluster::new(cfg);
    let n0 = NodeId(0);
    let b = c.create_bunch(n0).expect("bunch");
    let objs: Vec<Addr> = (0..OBJECTS)
        .map(|_| {
            let o = c.alloc(n0, b, &ObjSpec::with_refs(2, &[0])).expect("alloc");
            c.add_root(n0, o);
            o
        })
        .collect();
    for i in 1..3 {
        c.map_bunch(NodeId(i), b, n0).expect("map");
    }

    let mut rng = SplitMix64::new(0xE12_C0DE);
    let mut stamp = 0u64;
    for _ in 0..ROUNDS {
        let o = objs[(rng.next_u64() % OBJECTS as u64) as usize];
        let holder = NodeId((rng.next_u64() % 3) as u32);
        // Holder locks; the other two park write requests behind the lock
        // so the release round serves a grant plus forwarded requests.
        if c.acquire_write(holder, o).is_ok() {
            stamp += 1;
            c.write_data(holder, o, 1, stamp).expect("store");
            let _ = c.acquire_write(NodeId((holder.0 + 1) % 3), o);
            let _ = c.acquire_write(NodeId((holder.0 + 2) % 3), o);
            c.release(holder, o).expect("release");
        }
        for i in 0..3 {
            let node = NodeId(i);
            if c.token_at(node, o).unwrap_or(Token::None) == Token::Write
                && c.acquire_write(node, o).is_ok()
            {
                c.release(node, o).expect("release");
            }
        }
    }
    c.settle(5_000).expect("settle");

    Row {
        mode: if coalesce { "coalesced" } else { "per-message" },
        logical_msgs: c.total_stat(StatKind::DsmLogicalMessages),
        envelopes: c.total_stat(StatKind::DsmProtocolMessages),
        dsm_bytes: c.net.class_stats(MsgClass::Dsm).bytes,
        image_words: c.total_stat(StatKind::ImageWordsCopied),
    }
}

/// Runs both wire formats over the same schedule.
pub fn run() -> Vec<Row> {
    vec![drive(true), drive(false)]
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E12: hot-path wire accounting (5 objects, 40 contended rounds, 3 nodes)",
        &[
            "mode",
            "logical_msgs",
            "envelopes",
            "dsm_bytes",
            "image_words",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mode.to_string(),
            r.logical_msgs.to_string(),
            r.envelopes.to_string(),
            r.dsm_bytes.to_string(),
            r.image_words.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_compresses_the_same_protocol_work() {
        let rows = run();
        let (on, off) = (&rows[0], &rows[1]);
        assert_eq!(on.logical_msgs, off.logical_msgs, "same protocol actions");
        assert_eq!(
            off.logical_msgs, off.envelopes,
            "per-message reference: one envelope each"
        );
        assert!(
            on.envelopes < off.envelopes,
            "coalescing must save envelopes: {on:?} vs {off:?}"
        );
        assert!(on.dsm_bytes < off.dsm_bytes, "amortized framing");
        assert_eq!(
            on.image_words, off.image_words,
            "capture count is wire-independent"
        );
        assert!(on.image_words > 0, "write transfers ship images");
    }
}
