//! E7 — inter-bunch cycle collection (Section 7): the group collector
//! reclaims what per-bunch collection structurally cannot, and the
//! locality heuristic's limit (cycles crossing unmapped bunches stay) is
//! measured rather than hidden.

use bmx::{Cluster, ClusterConfig};
use bmx_common::NodeId;
use bmx_workloads::cycles;

use crate::table::Table;

/// One measured ring length.
#[derive(Clone, Debug)]
pub struct Row {
    /// Bunches (and objects) in the dead ring.
    pub ring_len: usize,
    /// Objects reclaimed by three rounds of per-bunch collection.
    pub per_bunch_reclaimed: u64,
    /// Objects reclaimed by one group collection over all local bunches.
    pub ggc_reclaimed: u64,
    /// Objects reclaimed when the group excludes one bunch of the ring
    /// (the locality-heuristic limitation of Section 7).
    pub partial_group_reclaimed: u64,
}

/// Runs the sweep over ring lengths.
pub fn run(ring_lens: &[usize]) -> Vec<Row> {
    ring_lens
        .iter()
        .map(|&len| {
            // Per-bunch rounds.
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let n0 = NodeId(0);
            let (bunches, _objs) = cycles::build_inter_bunch_ring(&mut c, n0, len).expect("ring");
            let mut per_bunch_reclaimed = 0;
            for _ in 0..3 {
                for &b in &bunches {
                    per_bunch_reclaimed += c.run_bgc(n0, b).expect("bgc").reclaimed;
                }
            }

            // Full group collection on a fresh ring.
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let (_bunches, _objs) = cycles::build_inter_bunch_ring(&mut c, n0, len).expect("ring");
            let ggc_reclaimed = c.run_ggc(n0).expect("ggc").reclaimed;

            // Group excluding one ring member: the cycle survives.
            let mut c = Cluster::new(ClusterConfig::with_nodes(1));
            let (bunches, _objs) = cycles::build_inter_bunch_ring(&mut c, n0, len).expect("ring");
            let partial: Vec<_> = bunches[..len - 1].to_vec();
            let partial_group_reclaimed = c
                .run_collection(n0, &partial)
                .expect("partial group")
                .reclaimed;

            Row {
                ring_len: len,
                per_bunch_reclaimed,
                ggc_reclaimed,
                partial_group_reclaimed,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E7: dead inter-bunch rings (objects reclaimed)",
        &[
            "ring_len",
            "per_bunch(3 rounds)",
            "ggc(full group)",
            "ggc(ring minus one)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.ring_len.to_string(),
            r.per_bunch_reclaimed.to_string(),
            r.ggc_reclaimed.to_string(),
            r.partial_group_reclaimed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_full_group_reclaims_the_ring() {
        let rows = run(&[2, 8]);
        for r in &rows {
            assert_eq!(r.per_bunch_reclaimed, 0, "BGC alone never collects cycles");
            assert_eq!(
                r.ggc_reclaimed, r.ring_len as u64,
                "GGC collects the whole ring"
            );
            assert_eq!(
                r.partial_group_reclaimed, 0,
                "a cycle escaping the group survives (the heuristic's limit)"
            );
        }
    }
}
