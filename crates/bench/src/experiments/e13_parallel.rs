//! E13 — parallel-runtime throughput: sustained mutator ops/sec and
//! acquire latency on the real-parallelism runtime (`bmx::parallel`).
//!
//! The deterministic experiments (E1–E12) measure protocol *work*
//! (messages, words, rounds) on the tick simulation. E13 measures the
//! other execution mode of the same state machines: one OS driver thread
//! per node, channel links, and one mutator thread per node hammering a
//! mixed workload through real [`bmx::NodeHandle`]s. Reported per
//! cluster size: sustained operations per wall-clock second, and the
//! p50/p99 of the *blocking* acquire path (request parked at a remote
//! owner, granted by a driver thread) measured at the call site.
//!
//! Wall-clock columns (`ops_per_sec`, `*_us`) go through the perf gate's
//! relative tolerance bands; `ops` is the deterministic workload size.
//!
//! Set `BMX_PROFILE=1` to record wall-clock spans during the measured
//! window and export one Perfetto trace per cluster size to
//! `target/profile/e13-<n>nodes.trace.json` — the CI perf leg does this
//! on its second pass and uploads the traces as artifacts, so a slow
//! E13 run comes with the span-level evidence attached.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bmx::{ClusterConfig, NodeHandle, ObjSpec, ParallelCluster, Shutdown};
use bmx_common::{NodeId, SplitMix64};
use parking_lot::Mutex;

use crate::table::Table;

/// One measured cluster size.
#[derive(Clone, Debug)]
pub struct Row {
    /// Nodes (== driver threads == mutator threads).
    pub nodes: u32,
    /// Mutator operations completed (workload size, deterministic).
    pub ops: u64,
    /// Sustained mutator operations per wall-clock second.
    pub ops_per_sec: u64,
    /// Median latency of *blocking* acquires (request parked at a remote
    /// owner), microseconds, floor 1 — local fast-path acquires complete
    /// in well under a microsecond and would make the percentile columns
    /// degenerate zeros.
    pub acquire_p50_us: u64,
    /// Tail blocking-acquire latency, microseconds, floor 1.
    pub acquire_p99_us: u64,
}

/// An acquire that took at least this long went remote (parked, granted
/// by a driver thread); faster ones are the local token fast path.
const BLOCKING_US: u64 = 2;

/// Shared objects under contention.
pub const OBJECTS: usize = 4;
/// Increments per mutator thread. Sized so the measured window is tens
/// of milliseconds even at 2 nodes: at 250 the whole run fit inside a
/// single scheduler quantum and the wall-clock cells swung by 2x run to
/// run, which no perf-gate tolerance can absorb.
pub const OPS_PER_NODE: u64 = 4_000;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// `BMX_PROFILE=1` turns the span profiler on for the measured window.
fn profiling() -> bool {
    std::env::var("BMX_PROFILE").is_ok_and(|v| v == "1")
}

/// Exports the recorded spans as a Perfetto trace under `target/profile/`.
fn export_profile(nodes: u32) {
    let spans = bmx_profile::snapshot_all();
    bmx_profile::disable();
    let dir = std::path::Path::new("target").join("profile");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("e13-{nodes}nodes.trace.json"));
        let _ = std::fs::write(&path, bmx_profile::chrome::export(&spans));
        eprintln!("e13: wrote span trace {}", path.display());
    }
}

fn drive(nodes: u32) -> Row {
    let pc = ParallelCluster::spawn(ClusterConfig::with_nodes(nodes));
    let h0 = pc.handle(NodeId(0));
    let bunch = h0.create_bunch().expect("bunch");
    let objs: Vec<_> = (0..OBJECTS)
        .map(|_| {
            let o = h0
                .alloc(bunch, &ObjSpec::with_refs(2, &[0]))
                .expect("alloc");
            h0.add_root(o).expect("root");
            o
        })
        .collect();
    for i in 1..nodes {
        let h = pc.handle(NodeId(i));
        h.map_bunch(bunch, NodeId(0)).expect("map");
        for &o in &objs {
            h.add_root(o).expect("root");
        }
    }
    assert!(pc.quiesce(Duration::from_secs(10)), "setup quiesce");
    // Profile only the measured window: setup spans would drown the
    // steady-state picture in one-time mapping traffic.
    if profiling() {
        bmx_profile::enable(8192);
    }

    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let t0 = Instant::now();
    let threads: Vec<_> = (0..nodes)
        .map(|i| {
            let h: NodeHandle = pc.handle(NodeId(i));
            let objs = objs.clone();
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                h.bind_metrics();
                let mut rng = SplitMix64::new(0xE13_0000 + u64::from(i));
                let mut local = Vec::with_capacity(OPS_PER_NODE as usize);
                for _ in 0..OPS_PER_NODE {
                    let o = objs[(rng.next_u64() % OBJECTS as u64) as usize];
                    let q0 = Instant::now();
                    h.acquire_write(o).expect("acquire");
                    local.push(q0.elapsed().as_micros() as u64);
                    let v = h.read_data(o, 1).expect("load");
                    h.write_data(o, 1, v + 1).expect("store");
                    h.release(o).expect("release");
                }
                latencies.lock().extend(local);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("mutator thread");
    }
    let wall = t0.elapsed();
    let ops = pc.ops();
    assert!(pc.quiesce(Duration::from_secs(10)), "quiesce");
    if profiling() {
        export_profile(nodes);
    }
    let (mut cluster, report) = pc.shutdown(Shutdown::Drain).expect("drain");
    assert_eq!(report.dropped, 0, "drain dropped traffic");
    // Full totals check: every increment landed exactly once.
    cluster.settle(50_000).expect("settle");
    let total: u64 = objs
        .iter()
        .map(|&o| {
            cluster.acquire_read(NodeId(0), o).expect("read token");
            let v = cluster.read_data(NodeId(0), o, 1).expect("load");
            cluster.release(NodeId(0), o).expect("release");
            v
        })
        .sum();
    assert_eq!(total, u64::from(nodes) * OPS_PER_NODE, "lost increments");

    let mut lat: Vec<u64> = std::mem::take(&mut *latencies.lock())
        .into_iter()
        .filter(|&us| us >= BLOCKING_US)
        .collect();
    lat.sort_unstable();
    let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    Row {
        nodes,
        ops,
        ops_per_sec: (ops as f64 / secs) as u64,
        acquire_p50_us: percentile(&lat, 0.50).max(1),
        acquire_p99_us: percentile(&lat, 0.99).max(1),
    }
}

/// Runs the sweep over cluster sizes.
pub fn run(sizes: &[u32]) -> Vec<Row> {
    sizes.iter().map(|&n| drive(n)).collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E13: parallel runtime throughput (4 contended objects, 4000 ops/node)",
        &[
            "nodes",
            "ops",
            "ops_per_sec",
            "acquire_p50_us",
            "acquire_p99_us",
        ],
    );
    for r in rows {
        t.row(vec![
            r.nodes.to_string(),
            r.ops.to_string(),
            r.ops_per_sec.to_string(),
            r.acquire_p50_us.to_string(),
            r.acquire_p99_us.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_throughput_rows_are_sound() {
        let rows = run(&[2]);
        let r = &rows[0];
        // ops counts every handle operation (setup included), so it is
        // at least the four per increment.
        assert!(r.ops >= 2 * OPS_PER_NODE * 4, "ops under-counted: {r:?}");
        assert!(r.ops_per_sec > 0, "throughput must be measurable: {r:?}");
        assert!(
            r.acquire_p50_us <= r.acquire_p99_us,
            "percentiles out of order: {r:?}"
        );
    }
}
