//! E6 — intra-bunch SSPs versus replicated inter-bunch SSPs (Section 3.2).
//!
//! The model replays the same ownership-migration trace under both
//! strategies; the real system then runs an equivalent migration and its
//! counters validate the model's intra-bunch side (zero scion-messages
//! after creation, one intra SSP pair per owner edge).

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_baselines::replicated_ssp::{replay, MigrationTrace, SspStrategy};
use bmx_common::{NodeId, StatKind};

use crate::table::Table;

/// One measured migration depth.
#[derive(Clone, Debug)]
pub struct Row {
    /// Ownership hops per object.
    pub hops: usize,
    /// Model: scion-messages under the intra-bunch design.
    pub intra_msgs: u64,
    /// Model: metadata words under the intra-bunch design.
    pub intra_words: u64,
    /// Model: scion-messages under replication.
    pub repl_msgs: u64,
    /// Model: metadata words under replication.
    pub repl_words: u64,
    /// Real system: scion-messages actually sent (must match the intra
    /// model's count plus the one-time creation messages).
    pub real_scion_msgs: u64,
    /// Real system: intra SSP records resident after the trace.
    pub real_intra_records: u64,
}

/// Objects migrating, each holding this many inter-bunch stubs.
const OBJECTS: usize = 8;
/// Stubs per object.
const STUBS: u64 = 2;
/// Nodes in the cluster.
const NODES: u32 = 4;

/// Runs the sweep over hop counts.
pub fn run(hop_counts: &[usize]) -> Vec<Row> {
    hop_counts
        .iter()
        .map(|&hops| {
            let trace = MigrationTrace::round_robin(OBJECTS, STUBS, hops, NODES);
            let intra = replay(&trace, SspStrategy::IntraBunch);
            let repl = replay(&trace, SspStrategy::ReplicatedInter);
            let (real_scion_msgs, real_intra_records) = real_migration(hops);
            Row {
                hops,
                intra_msgs: intra.scion_messages,
                intra_words: intra.metadata_words,
                repl_msgs: repl.scion_messages,
                repl_words: repl.metadata_words,
                real_scion_msgs,
                real_intra_records,
            }
        })
        .collect()
}

/// Runs the real system: OBJECTS stub-holding objects migrate `hops` times
/// round-robin over the nodes. Returns (scion messages sent during the
/// migrations, resident intra SSP stub records).
fn real_migration(hops: usize) -> (u64, u64) {
    let mut c = Cluster::new(ClusterConfig::with_nodes(NODES));
    let n0 = NodeId(0);
    let b_src = c.create_bunch(n0).expect("bunch");
    // Target bunches live at node 1 so the stubs need scion-messages once.
    let b_tgt = {
        let n1 = NodeId(1);
        let b = c.create_bunch(n1).expect("bunch");
        c.map_bunch(n0, b, n1).expect("map tgt");
        b
    };
    let mut objs = Vec::new();
    for _ in 0..OBJECTS {
        let o = c
            .alloc(
                n0,
                b_src,
                &ObjSpec::with_refs(STUBS + 1, &(0..STUBS).collect::<Vec<_>>()),
            )
            .expect("obj");
        for f in 0..STUBS {
            let t = c.alloc(NodeId(1), b_tgt, &ObjSpec::data(1)).expect("tgt");
            c.write_ref(n0, o, f, t).expect("stub ref");
        }
        c.add_root(n0, o);
        objs.push(o);
    }
    for i in 1..NODES {
        c.map_bunch(NodeId(i), b_src, n0).expect("map");
    }
    let before = c.total_stat(StatKind::ScionMessages);
    for (k, &o) in objs.iter().enumerate() {
        for h in 0..hops {
            let node = NodeId(((k + h + 1) % NODES as usize) as u32);
            c.acquire_write(node, o).expect("migrate");
            c.release(node, o).expect("release");
        }
    }
    let scion_msgs = c.total_stat(StatKind::ScionMessages) - before;
    let intra_records: u64 = (0..NODES)
        .map(|i| {
            c.gc.node(NodeId(i))
                .bunch(b_src)
                .map(|b| b.stub_table.intra().len() as u64)
                .unwrap_or(0)
        })
        .sum();
    (scion_msgs, intra_records)
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E6: intra-bunch SSPs vs replicated inter-bunch SSPs (8 objects x 2 stubs)",
        &[
            "hops",
            "intra_msgs",
            "intra_words",
            "repl_msgs",
            "repl_words",
            "real_msgs",
            "real_intra",
        ],
    );
    for r in rows {
        t.row(vec![
            r.hops.to_string(),
            r.intra_msgs.to_string(),
            r.intra_words.to_string(),
            r.repl_msgs.to_string(),
            r.repl_words.to_string(),
            r.real_scion_msgs.to_string(),
            r.real_intra_records.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrations_cost_nothing_under_intra_ssps() {
        let rows = run(&[0, 3]);
        assert_eq!(rows[0].intra_msgs, 0);
        assert_eq!(rows[1].intra_msgs, 0, "intra SSPs ride the grants");
        assert!(rows[1].repl_msgs > 0, "replication pays per migration");
        assert!(rows[1].repl_words > rows[1].intra_words);
        // The real system sent no scion-messages *during* migrations.
        assert_eq!(rows[1].real_scion_msgs, 0);
        assert!(
            rows[1].real_intra_records > 0,
            "intra stubs exist after migration"
        );
    }
}
