//! E4 — collection pause versus heap size (Section 3: "it would therefore
//! not be feasible to collect all objects of an application at the same
//! time"; Section 4.1's flip-time motivation).
//!
//! The heap grows as more bunches are added, each of fixed size. The
//! mutator-visible pause of the paper's design is the collection of *one*
//! bunch, independent of total heap size; the monolithic baseline (collect
//! the entire locally mapped space at once, as whole-address-space
//! collectors must) pauses proportionally to the whole heap.

use std::time::Instant;

use bmx_common::NodeId;

use crate::fixtures;
use crate::table::Table;

/// One measured heap size.
#[derive(Clone, Debug)]
pub struct Row {
    /// Bunches in the heap.
    pub bunches: usize,
    /// Total live objects.
    pub heap_objects: usize,
    /// Pause of one per-bunch collection, microseconds.
    pub per_bunch_us: u128,
    /// Pause of the monolithic whole-heap collection, microseconds.
    pub whole_heap_us: u128,
}

/// Objects per bunch.
pub const OBJECTS_PER_BUNCH: usize = 150;

/// Runs the sweep over bunch counts.
pub fn run(bunch_counts: &[usize]) -> Vec<Row> {
    bunch_counts
        .iter()
        .map(|&k| {
            // Per-bunch pause.
            let (mut cluster, ids) =
                fixtures::multi_bunch_heap(k, OBJECTS_PER_BUNCH).expect("heap");
            let t0 = Instant::now();
            cluster.run_bgc(NodeId(0), ids[0]).expect("bgc");
            let per_bunch_us = t0.elapsed().as_micros();

            // Whole-heap pause on a fresh identical heap.
            let (mut cluster, _ids) =
                fixtures::multi_bunch_heap(k, OBJECTS_PER_BUNCH).expect("heap");
            let t0 = Instant::now();
            cluster.run_ggc(NodeId(0)).expect("ggc");
            let whole_heap_us = t0.elapsed().as_micros();

            Row {
                bunches: k,
                heap_objects: k * OBJECTS_PER_BUNCH,
                per_bunch_us,
                whole_heap_us,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E4: collection pause vs heap size (150 objects per bunch)",
        &["bunches", "heap_objs", "per_bunch_us", "whole_heap_us"],
    );
    for r in rows {
        t.row(vec![
            r.bunches.to_string(),
            r.heap_objects.to_string(),
            r.per_bunch_us.to_string(),
            r.whole_heap_us.to_string(),
        ]);
    }
    t
}

/// E4b — the flip pause of the incremental collector (Section 4.1: "the
/// time to flip is very small and therefore not disruptive").
#[derive(Clone, Debug)]
pub struct FlipRow {
    /// Objects in the collected bunch.
    pub objects: usize,
    /// Monolithic collection pause, microseconds.
    pub monolithic_us: u128,
    /// Incremental steps taken (each interleaved with mutator work).
    pub steps: u64,
    /// Flip pause, microseconds — the only mutator-visible stop.
    pub flip_us: u128,
}

/// Runs the flip-pause sweep over bunch populations.
pub fn run_flip(populations: &[usize]) -> Vec<FlipRow> {
    use bmx_common::NodeId;
    populations
        .iter()
        .map(|&objects| {
            let n0 = NodeId(0);
            // Monolithic pause.
            let mut fx = crate::fixtures::replicated_list(1, objects).expect("fixture");
            let t0 = Instant::now();
            fx.cluster.run_bgc(n0, fx.bunch).expect("bgc");
            let monolithic_us = t0.elapsed().as_micros();

            // Incremental: steps interleaved with payload mutation, then
            // the flip is timed alone.
            let mut fx = crate::fixtures::replicated_list(1, objects).expect("fixture");
            let mut steps = 0;
            loop {
                let ready = fx.cluster.incremental_active(n0);
                if !ready {
                    fx.cluster
                        .start_incremental(n0, &[fx.bunch])
                        .expect("start");
                }
                let done = fx.cluster.incremental_step(n0, 16).expect("step");
                steps += 1;
                // Interleaved mutator work.
                let cell = fx.list.cells[steps as usize % objects];
                fx.cluster
                    .write_data(n0, cell, bmx_workloads::lists::PAYLOAD, steps)
                    .expect("mutate");
                if done {
                    break;
                }
            }
            let t0 = Instant::now();
            fx.cluster.incremental_flip(n0).expect("flip");
            let flip_us = t0.elapsed().as_micros();
            FlipRow {
                objects,
                monolithic_us,
                steps,
                flip_us,
            }
        })
        .collect()
}

/// Renders the E4b table.
pub fn flip_table(rows: &[FlipRow]) -> Table {
    let mut t = Table::new(
        "E4b: incremental flip pause vs monolithic pause",
        &["objects", "monolithic_us", "steps", "flip_us"],
    );
    for r in rows {
        t.row(vec![
            r.objects.to_string(),
            r.monolithic_us.to_string(),
            r.steps.to_string(),
            r.flip_us.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_much_shorter_than_the_monolithic_pause() {
        // Timing under a fully loaded test runner is noisy: take the best
        // of three runs for each side before comparing.
        let runs: Vec<FlipRow> = (0..3).map(|_| run_flip(&[400]).remove(0)).collect();
        let steps = runs.iter().map(|r| r.steps).max().unwrap();
        let flip = runs.iter().map(|r| r.flip_us).min().unwrap();
        let mono = runs.iter().map(|r| r.monolithic_us).min().unwrap();
        assert!(steps > 10, "the work really was spread over increments");
        assert!(
            flip * 2 < mono.max(30),
            "the flip must be a small fraction of the monolithic pause: flip={flip}us mono={mono}us"
        );
    }

    #[test]
    fn per_bunch_pause_does_not_track_heap_size() {
        let rows = run(&[1, 8]);
        let small = &rows[0];
        let large = &rows[1];
        // The whole-heap pause grows roughly with the heap; the per-bunch
        // pause must not. Allow generous noise margins: per-bunch pause at
        // 8x heap must stay well under half the growth the monolith shows.
        assert!(
            large.whole_heap_us > small.whole_heap_us,
            "monolithic pause should grow: {small:?} {large:?}"
        );
        assert!(
            large.per_bunch_us * 2 < large.whole_heap_us,
            "per-bunch pause must not track the heap: {large:?}"
        );
    }
}
