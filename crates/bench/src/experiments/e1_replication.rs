//! E1 — BGC cost versus replication degree (paper Section 8's cost goal:
//! "the cost of the BGC should be the same whether the bunch is replicated
//! or not").
//!
//! A bunch with a fixed object population is replicated on 1..=16 nodes,
//! every replica holding read tokens. One collection runs at the creator
//! under (a) the paper's BGC and (b) the token-acquiring strong baseline.
//! The BGC's time, token traffic and invalidations stay flat at zero
//! interference; the baseline's grow with the replication degree.

use std::time::Instant;

use bmx_baselines::strong_bgc;
use bmx_common::{NodeId, StatKind};

use crate::fixtures;
use crate::table::Table;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Nodes holding a replica.
    pub replicas: u32,
    /// BGC wall time, microseconds.
    pub bmx_us: u128,
    /// Tokens the BGC acquired (the claim: always zero).
    pub bmx_token_acquires: u64,
    /// Read replicas invalidated by the BGC (claim: zero).
    pub bmx_invalidations: u64,
    /// Strong-baseline wall time, microseconds.
    pub strong_us: u128,
    /// Tokens the baseline acquired.
    pub strong_token_acquires: u64,
    /// Read replicas the baseline invalidated.
    pub strong_invalidations: u64,
}

/// Objects in the collected bunch.
pub const OBJECTS: usize = 200;

/// Runs the sweep.
pub fn run(replica_counts: &[u32]) -> Vec<Row> {
    replica_counts
        .iter()
        .map(|&r| {
            // The paper's BGC.
            let mut fx = fixtures::replicated_list(r, OBJECTS).expect("fixture");
            fixtures::warm_readers(&mut fx).expect("warm");
            fixtures::make_garbage(&mut fx, OBJECTS / 4).expect("garbage");
            let before: Vec<_> = fx.cluster.stats.to_vec();
            let t0 = Instant::now();
            fx.cluster.run_bgc(NodeId(0), fx.bunch).expect("bgc");
            let bmx_us = t0.elapsed().as_micros();
            let bmx_token_acquires = total_delta(&fx.cluster, &before, StatKind::GcTokenAcquires);
            let bmx_invalidations = total_delta(&fx.cluster, &before, StatKind::GcInvalidations);

            // The strong baseline on an identical fixture.
            let mut fx = fixtures::replicated_list(r, OBJECTS).expect("fixture");
            fixtures::warm_readers(&mut fx).expect("warm");
            fixtures::make_garbage(&mut fx, OBJECTS / 4).expect("garbage");
            let before: Vec<_> = fx.cluster.stats.to_vec();
            let t0 = Instant::now();
            strong_bgc(&mut fx.cluster, NodeId(0), fx.bunch).expect("strong bgc");
            let strong_us = t0.elapsed().as_micros();
            let strong_token_acquires =
                total_delta(&fx.cluster, &before, StatKind::GcTokenAcquires);
            let strong_invalidations = total_delta(&fx.cluster, &before, StatKind::GcInvalidations);

            Row {
                replicas: r,
                bmx_us,
                bmx_token_acquires,
                bmx_invalidations,
                strong_us,
                strong_token_acquires,
                strong_invalidations,
            }
        })
        .collect()
}

fn total_delta(cluster: &bmx::Cluster, before: &[bmx_common::NodeStats], kind: StatKind) -> u64 {
    cluster
        .stats
        .iter()
        .zip(before)
        .map(|(now, then)| now.get(kind) - then.get(kind))
        .sum()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E1: BGC cost vs replication degree (200 live objects, 50 garbage)",
        &[
            "replicas",
            "bmx_us",
            "bmx_tok",
            "bmx_inval",
            "strong_us",
            "strong_tok",
            "strong_inval",
        ],
    );
    for r in rows {
        t.row(vec![
            r.replicas.to_string(),
            r.bmx_us.to_string(),
            r.bmx_token_acquires.to_string(),
            r.bmx_invalidations.to_string(),
            r.strong_us.to_string(),
            r.strong_token_acquires.to_string(),
            r.strong_invalidations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_claim() {
        let rows = run(&[1, 4]);
        for r in &rows {
            assert_eq!(r.bmx_token_acquires, 0, "the BGC never acquires tokens");
            assert_eq!(r.bmx_invalidations, 0, "the BGC never invalidates");
        }
        // With replicas, the strong baseline pays tokens and invalidations.
        let with_replicas = &rows[1];
        assert!(with_replicas.strong_token_acquires > 0);
        assert!(with_replicas.strong_invalidations > 0);
    }
}
