//! E10 — the from-space reuse protocol (Section 4.5): explicit messages
//! are paid only when a segment is actually reclaimed, scaling with the
//! number of live non-owned residents, and the reclaimed range becomes
//! allocatable again.

use bmx_common::{NodeId, StatKind};
use bmx_net::MsgClass;

use crate::fixtures;
use crate::table::Table;

/// One measured residency mix.
#[derive(Clone, Debug)]
pub struct Row {
    /// Fraction of the list owned by the remote node (stays resident in
    /// the initiator's from-space after its BGC).
    pub remote_fraction: f64,
    /// Background GC messages the reuse protocol exchanged.
    pub background_msgs: u64,
    /// Explicit relocation (retire) messages.
    pub retire_msgs: u64,
    /// Words wiped and returned to the allocation pool.
    pub words_reclaimed: u64,
    /// Whether reuse completed.
    pub completed: bool,
}

/// List size.
pub const OBJECTS: usize = 64;

/// Runs the sweep over remote-ownership fractions.
pub fn run(fractions: &[f64]) -> Vec<Row> {
    fractions
        .iter()
        .map(|&f| {
            let mut fx = fixtures::replicated_list(2, OBJECTS).expect("fixture");
            let (n0, n1) = (NodeId(0), NodeId(1));
            let remote = (OBJECTS as f64 * f) as usize;
            for &cell in fx.list.cells.iter().take(remote) {
                fx.cluster.acquire_write(n1, cell).expect("steal");
                fx.cluster.release(n1, cell).expect("release");
            }
            fx.cluster.run_bgc(n0, fx.bunch).expect("bgc");
            let bg_before = fx.cluster.net.class_stats(MsgClass::GcBackground).sent;
            let retire_before = fx.cluster.total_stat(StatKind::ExplicitRelocationMessages);
            let words_before = fx.cluster.stats[0].get(StatKind::WordsReclaimed);
            let completed = fx.cluster.reuse_from_space(n0, fx.bunch).expect("reuse");
            Row {
                remote_fraction: f,
                background_msgs: fx.cluster.net.class_stats(MsgClass::GcBackground).sent
                    - bg_before,
                retire_msgs: fx.cluster.total_stat(StatKind::ExplicitRelocationMessages)
                    - retire_before,
                words_reclaimed: fx.cluster.stats[0].get(StatKind::WordsReclaimed) - words_before,
                completed,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E10: from-space reuse protocol (64-cell list, 2 nodes)",
        &[
            "remote_frac",
            "bg_msgs",
            "retire_msgs",
            "words_reclaimed",
            "completed",
        ],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0}%", r.remote_fraction * 100.0),
            r.background_msgs.to_string(),
            r.retire_msgs.to_string(),
            r.words_reclaimed.to_string(),
            r.completed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_remote_residency() {
        let rows = run(&[0.0, 0.5]);
        assert!(rows.iter().all(|r| r.completed));
        assert!(rows.iter().all(|r| r.words_reclaimed > 0));
        assert!(
            rows[1].background_msgs >= rows[0].background_msgs,
            "more remote residents, more copy traffic: {rows:?}"
        );
    }
}
