//! Shared cluster fixtures for the experiments.

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId, Result};
use bmx_gc::RelocMode;
use bmx_net::NetworkConfig;
use bmx_workloads::lists;

/// A bunch replicated on `replicas` nodes with an `objects`-cell list whose
/// head is rooted everywhere.
pub struct ReplicatedList {
    /// The cluster (node 0 is the creator).
    pub cluster: Cluster,
    /// The shared bunch.
    pub bunch: BunchId,
    /// The list.
    pub list: lists::ListHandle,
}

/// Builds the standard replicated-list fixture.
pub fn replicated_list(replicas: u32, objects: usize) -> Result<ReplicatedList> {
    replicated_list_with(replicas, objects, RelocMode::Piggyback)
}

/// Builds the fixture with an explicit relocation mode (experiment E3).
pub fn replicated_list_with(
    replicas: u32,
    objects: usize,
    mode: RelocMode,
) -> Result<ReplicatedList> {
    let cfg = ClusterConfig {
        nodes: replicas,
        segment_words: 1 << 16,
        net: NetworkConfig::lossless(1),
        reloc_mode: mode,
        ..Default::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = NodeId(0);
    let bunch = cluster.create_bunch(n0)?;
    let list = lists::build_list(&mut cluster, n0, bunch, objects, 0)?;
    cluster.add_root(n0, list.head);
    for i in 1..replicas {
        cluster.map_bunch(NodeId(i), bunch, n0)?;
        cluster.add_root(NodeId(i), list.head);
    }
    Ok(ReplicatedList {
        cluster,
        bunch,
        list,
    })
}

/// Gives every replica node a read token on every list cell (a warmed-up
/// read-mostly application).
pub fn warm_readers(fx: &mut ReplicatedList) -> Result<()> {
    let n = fx.cluster.nodes();
    for i in 1..n {
        for &cell in &fx.list.cells {
            fx.cluster.acquire_read(NodeId(i), cell)?;
            fx.cluster.release(NodeId(i), cell)?;
        }
    }
    Ok(())
}

/// Allocates `count` immediately unreachable objects at node 0 (garbage
/// fodder for collection benches).
pub fn make_garbage(fx: &mut ReplicatedList, count: usize) -> Result<()> {
    let n0 = NodeId(0);
    for _ in 0..count {
        fx.cluster.alloc(n0, fx.bunch, &ObjSpec::data(2))?;
    }
    Ok(())
}

/// A multi-bunch heap at a single node: `bunches` bunches, each holding an
/// `objects`-cell rooted list. Returns the cluster and bunch ids.
pub fn multi_bunch_heap(bunches: usize, objects: usize) -> Result<(Cluster, Vec<BunchId>)> {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 1,
        segment_words: 1 << 16,
        ..Default::default()
    });
    let n0 = NodeId(0);
    let mut ids = Vec::with_capacity(bunches);
    for _ in 0..bunches {
        let b = cluster.create_bunch(n0)?;
        let list = lists::build_list(&mut cluster, n0, b, objects, 0)?;
        cluster.add_root(n0, list.head);
        ids.push(b);
    }
    Ok((cluster, ids))
}

/// Current address of `addr` at `node` (resolves forwarding).
pub fn current(cluster: &Cluster, node: NodeId, addr: Addr) -> Addr {
    cluster.gc.node(node).directory.resolve(addr)
}
