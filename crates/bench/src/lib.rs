//! The experiment harness.
//!
//! One module per experiment of DESIGN.md's index (E1–E10). Each `run`
//! function is deterministic, returns printable rows, and is shared by the
//! `tables` binary (which regenerates the evaluation tables recorded in
//! EXPERIMENTS.md) and the Criterion benches (which time the hot paths).
//! The figure scenarios F1–F4 live as integration tests
//! (`tests/figure_scenarios.rs`) since they are assertion-checked
//! configurations rather than measurements.

pub mod diff;
pub mod experiments;
pub mod fixtures;
pub mod table;

pub use table::Table;
