//! The experiment drivers (DESIGN.md index E1–E10).

pub mod e10_fromspace;
pub mod e11_consistency;
pub mod e12_hot_paths;
pub mod e13_parallel;
pub mod e1_replication;
pub mod e2_interference;
pub mod e3_piggyback;
pub mod e4_pause;
pub mod e5_message_loss;
pub mod e6_ssp_ablation;
pub mod e7_cycles;
pub mod e8_barrier;
pub mod e9_recovery;
