//! Criterion bench for experiment E4: per-bunch collection pause versus
//! whole-heap collection pause as the heap grows.

use bmx_bench::fixtures;
use bmx_common::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const OBJECTS_PER_BUNCH: usize = 150;

fn bench_pause(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_pause_vs_heap");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for bunches in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("per_bunch_bgc", bunches),
            &bunches,
            |b, &k| {
                b.iter_batched(
                    || fixtures::multi_bunch_heap(k, OBJECTS_PER_BUNCH).expect("heap"),
                    |(mut cluster, ids)| cluster.run_bgc(NodeId(0), ids[0]).expect("bgc"),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("whole_heap_ggc", bunches),
            &bunches,
            |b, &k| {
                b.iter_batched(
                    || fixtures::multi_bunch_heap(k, OBJECTS_PER_BUNCH).expect("heap"),
                    |(mut cluster, _ids)| cluster.run_ggc(NodeId(0)).expect("ggc"),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pause);
criterion_main!(benches);
