//! Criterion bench for the scion cleaner: processing a reachability table
//! against populated scion tables, and the report-(re)build path used for
//! idempotent re-sends.

use bmx_common::{Addr, BunchId, Epoch, NodeId, NodeStats, Oid};
use bmx_dsm::DsmEngine;
use bmx_gc::msg::ReachabilityReport;
use bmx_gc::ssp::{InterScion, InterStub, SspId};
use bmx_gc::{cleaner, GcState, SharedServer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a GcState with `n` inter scions at node 1 (half of which the
/// report will justify) plus the matching report from node 0.
fn fixture(n: u64) -> (GcState, DsmEngine, ReachabilityReport) {
    let server = SharedServer::new(bmx_addr::SegmentServer::new(64));
    let mut gc = GcState::new(2, server);
    let engine = DsmEngine::new(2);
    let (b_src, b_tgt) = (BunchId(1), BunchId(2));
    let mut stubs = Vec::new();
    for i in 0..n {
        let id = SspId {
            node: NodeId(0),
            seq: i,
        };
        gc.node_mut(NodeId(1))
            .bunch_or_default(b_tgt)
            .scion_table
            .add_inter(InterScion {
                id,
                source_node: NodeId(0),
                source_bunch: b_src,
                target_bunch: b_tgt,
                target_addr: Addr(0x1_0000 + i * 64),
                target_oid: Some(Oid(i)),
            });
        if i % 2 == 0 {
            stubs.push(InterStub {
                id,
                source_bunch: b_src,
                source_oid: Oid(1000 + i),
                target_bunch: b_tgt,
                target_addr: Addr(0x1_0000 + i * 64),
                target_oid: Some(Oid(i)),
                scion_at: NodeId(1),
            });
        }
    }
    let report = ReachabilityReport {
        from: NodeId(0),
        bunch: b_src,
        epoch: Epoch(1),
        inter_stubs: stubs,
        intra_stubs: vec![],
        exiting: vec![],
    };
    (gc, engine, report)
}

fn bench_cleaner(c: &mut Criterion) {
    let mut group = c.benchmark_group("cleaner_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [100u64, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::new("process_report", n), &n, |b, &n| {
            b.iter_batched(
                || fixture(n),
                |(mut gc, mut engine, report)| {
                    let mut stats = NodeStats::new();
                    cleaner::process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &report)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // Same path with a discard-sink recorder installed: the cleaner's
        // trace emission must stay in the noise (tracing is aggregate
        // count events, not per-scion records).
        group.bench_with_input(BenchmarkId::new("process_report_traced", n), &n, |b, &n| {
            bmx_trace::install(Box::new(bmx_trace::DiscardSink));
            b.iter_batched(
                || fixture(n),
                |(mut gc, mut engine, report)| {
                    let mut stats = NodeStats::new();
                    cleaner::process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &report)
                },
                criterion::BatchSize::LargeInput,
            );
            bmx_trace::disable();
        });
        // Duplicate processing (the idempotent fast path for re-sends).
        group.bench_with_input(BenchmarkId::new("duplicate_report", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let (mut gc, mut engine, report) = fixture(n);
                    let mut stats = NodeStats::new();
                    cleaner::process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &report);
                    (gc, engine, report)
                },
                |(mut gc, mut engine, report)| {
                    let mut stats = NodeStats::new();
                    cleaner::process_report(&mut gc, &mut engine, &mut stats, NodeId(1), &report)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cleaner);
criterion_main!(benches);
