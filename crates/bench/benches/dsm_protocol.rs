//! Criterion bench for the DSM substrate itself: token acquire/release
//! latency (local hit, remote read grant, remote write transfer with
//! invalidation) in simulated-network round trips and wall time.

use bmx_bench::fixtures;
use bmx_common::NodeId;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_acquires(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsm_protocol");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Local hit: re-acquiring a token already held.
    let mut fx = fixtures::replicated_list(2, 8).expect("fixture");
    let cell = fx.list.cells[0];
    fx.cluster.acquire_read(NodeId(1), cell).expect("warm");
    fx.cluster.release(NodeId(1), cell).expect("warm");
    group.bench_function("acquire_read_local_hit", |b| {
        b.iter(|| {
            fx.cluster.acquire_read(NodeId(1), cell).expect("acquire");
            fx.cluster.release(NodeId(1), cell).expect("release");
        })
    });

    // Remote write transfer ping-pong: ownership flips between two nodes
    // every iteration (grant + invalidation each time).
    let mut fx = fixtures::replicated_list(2, 8).expect("fixture");
    let cell = fx.list.cells[1];
    let mut turn = 0u32;
    group.bench_function("acquire_write_ping_pong", |b| {
        b.iter(|| {
            let node = NodeId(turn % 2);
            turn += 1;
            fx.cluster.acquire_write(node, cell).expect("acquire");
            fx.cluster.release(node, cell).expect("release");
        })
    });

    group.finish();
}

criterion_group!(benches, bench_acquires);
criterion_main!(benches);
