//! Criterion bench for experiment E1: BGC time versus replication degree,
//! against the token-acquiring strong baseline.

use bmx_baselines::strong_bgc;
use bmx_bench::fixtures;
use bmx_common::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const OBJECTS: usize = 200;

fn bench_bgc_vs_replicas(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bgc_vs_replicas");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for replicas in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("bmx_bgc", replicas), &replicas, |b, &r| {
            b.iter_batched(
                || {
                    let mut fx = fixtures::replicated_list(r, OBJECTS).expect("fixture");
                    fixtures::warm_readers(&mut fx).expect("warm");
                    fixtures::make_garbage(&mut fx, OBJECTS / 4).expect("garbage");
                    fx
                },
                |mut fx| fx.cluster.run_bgc(NodeId(0), fx.bunch).expect("bgc"),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("strong_gc", replicas),
            &replicas,
            |b, &r| {
                b.iter_batched(
                    || {
                        let mut fx = fixtures::replicated_list(r, OBJECTS).expect("fixture");
                        fixtures::warm_readers(&mut fx).expect("warm");
                        fixtures::make_garbage(&mut fx, OBJECTS / 4).expect("garbage");
                        fx
                    },
                    |mut fx| strong_bgc(&mut fx.cluster, NodeId(0), fx.bunch).expect("strong"),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bgc_vs_replicas);
criterion_main!(benches);
