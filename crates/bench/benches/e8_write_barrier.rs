//! Criterion bench for experiment E8: per-store cost of the write barrier
//! (data store, intra-bunch pointer store, inter-bunch pointer store).

use bmx::{Cluster, ClusterConfig, ObjSpec};
use bmx_common::{Addr, BunchId, NodeId};
use criterion::{criterion_group, criterion_main, Criterion};

struct Fix {
    cluster: Cluster,
    src: Addr,
    same: Addr,
    other: Addr,
}

fn fixture() -> Fix {
    let mut cluster = Cluster::new(ClusterConfig {
        segment_words: 1 << 16,
        ..ClusterConfig::with_nodes(1)
    });
    let n0 = NodeId(0);
    let b1: BunchId = cluster.create_bunch(n0).expect("bunch");
    let b2 = cluster.create_bunch(n0).expect("bunch");
    let src = cluster
        .alloc(n0, b1, &ObjSpec::with_refs(4, &[0, 1]))
        .expect("src");
    let same = cluster.alloc(n0, b1, &ObjSpec::data(1)).expect("same");
    let other = cluster.alloc(n0, b2, &ObjSpec::data(1)).expect("other");
    Fix {
        cluster,
        src,
        same,
        other,
    }
}

fn bench_barrier(c: &mut Criterion) {
    let n0 = NodeId(0);
    let mut group = c.benchmark_group("e8_write_barrier");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let mut fx = fixture();
    group.bench_function("data_store", |b| {
        b.iter(|| fx.cluster.write_data(n0, fx.src, 2, 7).expect("store"))
    });

    let mut fx = fixture();
    group.bench_function("ref_store_intra_bunch", |b| {
        b.iter(|| fx.cluster.write_ref(n0, fx.src, 0, fx.same).expect("store"))
    });

    let mut fx = fixture();
    group.bench_function("ref_store_inter_bunch", |b| {
        b.iter(|| {
            fx.cluster
                .write_ref(n0, fx.src, 1, fx.other)
                .expect("store")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_barrier);
criterion_main!(benches);
