//! Wall-clock span profiler for the real-thread runtime.
//!
//! The causal trace plane ([`bmx_trace`]) orders events by Lamport clocks
//! and the metrics plane counts them, but neither can say where the
//! *microseconds* of a blocking acquire went: parked on the wake cell,
//! waiting on the protocol mutex, or stalled behind a slow driver apply.
//! This crate records typed wall-clock spans into bounded per-thread
//! rings so the parallel runtime can be profiled end to end without
//! perturbing it:
//!
//! * **Allocation-free hot path.** Recording a span is a monotonic
//!   [`Instant`] read plus a write into a pre-sized ring slot; the ring
//!   overwrites its oldest entry when full (last-N semantics, which is
//!   exactly what a post-mortem blackbox wants).
//! * **Zero-cost when disabled.** Every entry point loads one relaxed
//!   [`AtomicBool`] and bails. The conformance suite pins profiled ≡
//!   unprofiled digests bit-identical, like trace and metrics before it.
//! * **Distributed flows.** A mutator mints a nonzero *flow id* per
//!   acquire and stamps it on every envelope its protocol sends produce;
//!   drivers restore the flow while applying, so a cross-node acquire
//!   (request → grant → apply → wake) stitches into one track in the
//!   exported Chrome/Perfetto trace ([`chrome::export`]).
//!
//! Threads register lazily on first record under a *session* id bumped by
//! [`enable`], so a test that re-enables the profiler starts from empty
//! rings even though thread-locals persist.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use bmx_common::NodeId;

pub mod chrome;

/// What a span measured. Names are the stable strings that reach the
/// Perfetto export and the blackbox dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// A whole mutator-side acquire, submit to locked (or failure).
    Acquire,
    /// The first protocol poll of an acquire: request submission.
    AcquireSubmit,
    /// A re-poll of an outstanding acquire.
    AcquirePoll,
    /// Parked on the node's wake cell (condvar wait, epoch-guarded).
    AcquirePark,
    /// From poke-wake (or park timeout) to the end of the next poll.
    AcquireWake,
    /// The reserved-token claim inside the DSM engine (`lock`).
    ReserveClaim,
    /// Waiting for the coarse protocol mutex.
    MutexWait,
    /// Holding the coarse protocol mutex (holder attribution: `node`).
    MutexHold,
    /// A driver thread applying one delivered envelope.
    DriverApply,
    /// One supervisor pulse (chaos, liveness, watchdog evaluation).
    SupervisorPulse,
    /// RVM replay while restarting a crashed node.
    RecoveryReplay,
    /// The whole amnesia restart (wipe, replay, rejoin broadcast).
    RecoveryRestart,
    /// BGC phases, mirroring the per-phase tick counters.
    BgcRoots,
    /// Bunch-graph trace phase.
    BgcTrace,
    /// Reference-update phase.
    BgcUpdate,
    /// Sweep phase.
    BgcSweep,
    /// Regenerate-and-publish phase.
    BgcPublish,
}

impl SpanKind {
    /// Stable display name (Perfetto event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Acquire => "acquire",
            SpanKind::AcquireSubmit => "acquire/submit",
            SpanKind::AcquirePoll => "acquire/poll",
            SpanKind::AcquirePark => "acquire/park",
            SpanKind::AcquireWake => "acquire/wake",
            SpanKind::ReserveClaim => "acquire/reserve-claim",
            SpanKind::MutexWait => "mutex/wait",
            SpanKind::MutexHold => "mutex/hold",
            SpanKind::DriverApply => "driver/apply",
            SpanKind::SupervisorPulse => "supervisor/pulse",
            SpanKind::RecoveryReplay => "recovery/replay",
            SpanKind::RecoveryRestart => "recovery/restart",
            SpanKind::BgcRoots => "bgc/roots",
            SpanKind::BgcTrace => "bgc/trace",
            SpanKind::BgcUpdate => "bgc/update",
            SpanKind::BgcSweep => "bgc/sweep",
            SpanKind::BgcPublish => "bgc/publish",
        }
    }
}

/// One recorded span. Timestamps are microseconds since the profiler
/// epoch (the first [`enable`] in the process), so records from every
/// thread and node share one time base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// What was measured.
    pub kind: SpanKind,
    /// The node the work was done for (Perfetto pid).
    pub node: u32,
    /// Start, µs since the profiler epoch.
    pub start_us: u64,
    /// Duration in µs (0 for marks).
    pub dur_us: u64,
    /// Distributed flow id (0 = not part of a flow).
    pub flow: u64,
}

/// Everything one thread recorded, oldest span first.
#[derive(Clone, Debug)]
pub struct ThreadSpans {
    /// The OS thread's name at registration ("?" if unnamed).
    pub name: String,
    /// Recorded spans, oldest first, at most the ring capacity.
    pub spans: Vec<SpanRec>,
}

/// Bounded overwrite-oldest span buffer.
struct Ring {
    buf: Vec<SpanRec>,
    /// Total pushes ever; `written % cap` is the next slot once full.
    written: u64,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            written: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, rec: SpanRec) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            let slot = (self.written % self.cap as u64) as usize;
            self.buf[slot] = rec;
        }
        self.written += 1;
    }

    /// Oldest-first copy of the live contents.
    fn drain_ordered(&self) -> Vec<SpanRec> {
        if self.buf.len() < self.cap {
            return self.buf.clone();
        }
        let split = (self.written % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }
}

struct ThreadRing {
    name: String,
    ring: Mutex<Ring>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(4096);
static NEXT_FLOW: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static THREADS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

thread_local! {
    /// (session the ring was registered under, the ring itself).
    static LOCAL: RefCell<Option<(u64, Arc<ThreadRing>)>> = const { RefCell::new(None) };
    /// The distributed flow the current thread is working for.
    static FLOW: Cell<u64> = const { Cell::new(0) };
}

/// Turns the profiler on with `per_thread_capacity` ring slots per
/// thread. Starts a fresh session: rings from a previous enablement are
/// dropped, flow ids keep climbing (they must stay unique per process).
pub fn enable(per_thread_capacity: usize) {
    let _ = EPOCH.set(Instant::now());
    CAPACITY.store(per_thread_capacity.max(16), Ordering::Relaxed);
    THREADS.lock().unwrap().clear();
    SESSION.fetch_add(1, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Turns the profiler off and drops all recorded spans.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
    THREADS.lock().unwrap().clear();
}

/// Whether spans are being recorded. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the profiler epoch (0 if never enabled).
#[inline]
pub fn now_us() -> u64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_micros() as u64)
        .unwrap_or(0)
}

#[cold]
fn register_thread() -> Arc<ThreadRing> {
    let name = std::thread::current().name().unwrap_or("?").to_string();
    let tr = Arc::new(ThreadRing {
        name,
        ring: Mutex::new(Ring::new(CAPACITY.load(Ordering::Relaxed))),
    });
    THREADS.lock().unwrap().push(Arc::clone(&tr));
    tr
}

/// Pushes `rec` into the calling thread's ring (registering the thread
/// under the current session first if needed).
fn push(rec: SpanRec) {
    let session = SESSION.load(Ordering::Relaxed);
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((s, _)) => *s != session,
            None => true,
        };
        if stale {
            *slot = Some((session, register_thread()));
        }
        let (_, tr) = slot.as_ref().expect("just registered");
        tr.ring.lock().unwrap().push(rec);
    });
}

/// Records a closed span directly (used by callers that already hold
/// both endpoints, e.g. the BGC phase clock).
pub fn record(kind: SpanKind, node: NodeId, start_us: u64, dur_us: u64) {
    if !enabled() {
        return;
    }
    push(SpanRec {
        kind,
        node: node.0,
        start_us,
        dur_us,
        flow: current_flow(),
    });
}

/// Records a zero-duration mark at now (e.g. the reserve-claim instant).
pub fn mark(kind: SpanKind, node: NodeId) {
    if !enabled() {
        return;
    }
    let now = now_us();
    push(SpanRec {
        kind,
        node: node.0,
        start_us: now,
        dur_us: 0,
        flow: current_flow(),
    });
}

/// An in-flight span; records on drop. Inert (all-`None`) when the
/// profiler is disabled, so guards can sit on hot paths unconditionally.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    armed: Option<SpanStart>,
}

struct SpanStart {
    kind: SpanKind,
    node: u32,
    start_us: u64,
    /// `Some(f)` pins the flow at creation; `None` reads the thread's
    /// current flow when the guard drops.
    flow: Option<u64>,
}

impl SpanGuard {
    /// Drops the guard without recording anything.
    pub fn cancel(&mut self) {
        self.armed = None;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.armed.take() {
            let end = now_us();
            push(SpanRec {
                kind: s.kind,
                node: s.node,
                start_us: s.start_us,
                dur_us: end.saturating_sub(s.start_us),
                flow: s.flow.unwrap_or_else(current_flow),
            });
        }
    }
}

/// Opens a span; the flow id is whatever the thread's current flow is
/// when the guard drops.
#[inline]
pub fn span(kind: SpanKind, node: NodeId) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: None };
    }
    span_slow(kind, node, None)
}

/// Opens a span pinned to an explicit flow id.
#[inline]
pub fn span_with_flow(kind: SpanKind, node: NodeId, flow: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: None };
    }
    span_slow(kind, node, Some(flow))
}

#[cold]
fn span_slow(kind: SpanKind, node: NodeId, flow: Option<u64>) -> SpanGuard {
    SpanGuard {
        armed: Some(SpanStart {
            kind,
            node: node.0,
            start_us: now_us(),
            flow,
        }),
    }
}

/// Mints a fresh nonzero flow id (0 when disabled, so disabled runs
/// stamp envelopes with the same 0 they always carried).
pub fn new_flow() -> u64 {
    if !enabled() {
        return 0;
    }
    NEXT_FLOW.fetch_add(1, Ordering::Relaxed)
}

/// The flow the calling thread is currently working for (0 = none).
#[inline]
pub fn current_flow() -> u64 {
    if !enabled() {
        return 0;
    }
    FLOW.with(|f| f.get())
}

/// Scoped flow assignment: restores the previous flow on drop.
#[must_use = "the previous flow is restored when the scope drops"]
pub struct FlowScope {
    prev: Option<u64>,
}

impl Drop for FlowScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            FLOW.with(|f| f.set(prev));
        }
    }
}

/// Makes `flow` the thread's current flow until the scope drops. Inert
/// when the profiler is disabled. Passing 0 deliberately *clears* the
/// flow for the scope — a driver applying an unstamped envelope must not
/// attribute its work to whatever flow the thread saw last.
pub fn flow_scope(flow: u64) -> FlowScope {
    if !enabled() {
        return FlowScope { prev: None };
    }
    let prev = FLOW.with(|f| {
        let p = f.get();
        f.set(flow);
        p
    });
    FlowScope { prev: Some(prev) }
}

/// Copies out every registered thread's spans (oldest first, per
/// thread) without draining the rings. Thread order is registration
/// order; names repeat if two threads share one.
pub fn snapshot_all() -> Vec<ThreadSpans> {
    let threads = THREADS.lock().unwrap();
    threads
        .iter()
        .map(|tr| ThreadSpans {
            name: tr.name.clone(),
            spans: tr.ring.lock().unwrap().drain_ordered(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; tests in this crate share it.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _serial = lock();
        disable();
        assert_eq!(new_flow(), 0);
        assert_eq!(current_flow(), 0);
        let _g = span(SpanKind::Acquire, NodeId(0));
        mark(SpanKind::ReserveClaim, NodeId(0));
        record(SpanKind::MutexWait, NodeId(0), 1, 2);
        drop(_g);
        assert!(snapshot_all().is_empty());
    }

    #[test]
    fn spans_record_and_snapshot() {
        let _serial = lock();
        enable(64);
        {
            let _g = span(SpanKind::MutexWait, NodeId(3));
        }
        mark(SpanKind::ReserveClaim, NodeId(3));
        let snap = snapshot_all();
        let mine: Vec<_> = snap.iter().flat_map(|t| t.spans.iter()).collect();
        assert!(mine
            .iter()
            .any(|r| r.kind == SpanKind::MutexWait && r.node == 3));
        assert!(mine
            .iter()
            .any(|r| r.kind == SpanKind::ReserveClaim && r.dur_us == 0));
        disable();
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = Ring::new(4);
        for i in 0..7u64 {
            r.push(SpanRec {
                kind: SpanKind::AcquirePoll,
                node: 0,
                start_us: i,
                dur_us: 0,
                flow: 0,
            });
        }
        let got: Vec<u64> = r.drain_ordered().iter().map(|s| s.start_us).collect();
        assert_eq!(got, vec![3, 4, 5, 6], "last-N, oldest first");
    }

    #[test]
    fn flow_scope_nests_and_restores() {
        let _serial = lock();
        enable(64);
        let f1 = new_flow();
        let f2 = new_flow();
        assert_ne!(f1, 0);
        assert_ne!(f1, f2);
        assert_eq!(current_flow(), 0);
        {
            let _a = flow_scope(f1);
            assert_eq!(current_flow(), f1);
            {
                let _b = flow_scope(f2);
                assert_eq!(current_flow(), f2);
            }
            assert_eq!(current_flow(), f1);
            // Zero clears for the scope (unstamped envelope).
            {
                let _c = flow_scope(0);
                assert_eq!(current_flow(), 0);
            }
            assert_eq!(current_flow(), f1);
        }
        assert_eq!(current_flow(), 0);
        disable();
    }

    #[test]
    fn reenable_starts_fresh_session() {
        let _serial = lock();
        enable(64);
        mark(SpanKind::AcquireSubmit, NodeId(1));
        assert!(snapshot_all().iter().any(|t| !t.spans.is_empty()));
        enable(64);
        let total: usize = snapshot_all().iter().map(|t| t.spans.len()).sum();
        assert_eq!(total, 0, "re-enable must drop the previous session");
        mark(SpanKind::AcquireSubmit, NodeId(1));
        let total: usize = snapshot_all().iter().map(|t| t.spans.len()).sum();
        assert_eq!(total, 1);
        disable();
    }

    #[test]
    fn span_guard_cancel_records_nothing() {
        let _serial = lock();
        enable(64);
        let mut g = span(SpanKind::DriverApply, NodeId(0));
        g.cancel();
        drop(g);
        let total: usize = snapshot_all().iter().map(|t| t.spans.len()).sum();
        assert_eq!(total, 0);
        disable();
    }
}
