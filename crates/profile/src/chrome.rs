//! Chrome/Perfetto export for wall-clock spans.
//!
//! Same hand-rolled JSON writer idiom as `bmx_trace::chrome`, but where
//! the causal export emits instant events at Lamport positions, this one
//! emits *duration* events (`"ph":"X"`) at real microseconds since the
//! profiler epoch: `pid` = node, `tid` = OS thread (named via `"M"`
//! metadata events). Spans sharing a nonzero flow id are stitched with
//! flow events (`"ph":"s"/"t"/"f"`), so a cross-node acquire renders as
//! one connected track in the Perfetto UI ("Flow events" toggle).
//!
//! Load via <https://ui.perfetto.dev> or `chrome://tracing`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ThreadSpans;

/// A span's coordinates in the exported trace, for flow stitching.
#[derive(Clone, Copy)]
struct FlowPoint {
    pid: u32,
    tid: usize,
    ts: u64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders thread snapshots (from [`crate::snapshot_all`]) as a Chrome
/// trace JSON string. `tid` is the 1-based index into `threads`; every
/// `(pid, tid)` pair that appears gets `process_name`/`thread_name`
/// metadata so the Perfetto UI shows "node N" / the OS thread name.
pub fn export(threads: &[ThreadSpans]) -> String {
    let mut events: Vec<String> = Vec::new();
    // (pid, tid) -> thread name; pid set for process_name metadata.
    let mut tracks: BTreeMap<(u32, usize), &str> = BTreeMap::new();
    // flow id -> points, in encounter order (sorted by ts before emit).
    let mut flows: BTreeMap<u64, Vec<FlowPoint>> = BTreeMap::new();

    for (idx, t) in threads.iter().enumerate() {
        let tid = idx + 1;
        for rec in &t.spans {
            tracks.entry((rec.node, tid)).or_insert(&t.name);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"flow\":{}}}}}",
                escape(rec.kind.name()),
                rec.node,
                tid,
                rec.start_us,
                rec.dur_us,
                rec.flow
            ));
            if rec.flow != 0 {
                flows.entry(rec.flow).or_default().push(FlowPoint {
                    pid: rec.node,
                    tid,
                    ts: rec.start_us,
                });
            }
        }
    }

    let mut pids_named = std::collections::BTreeSet::new();
    for (&(pid, tid), name) in &tracks {
        if pids_named.insert(pid) {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"node {pid}\"}}}}"
            ));
        }
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    // Flow stitching: start at the earliest span, step through the rest,
    // finish at the last. Singleton flows have nothing to connect.
    for (&flow, points) in flows.iter_mut() {
        if points.len() < 2 {
            continue;
        }
        points.sort_by_key(|p| p.ts);
        let last = points.len() - 1;
        for (i, p) in points.iter().enumerate() {
            let ph = if i == 0 {
                "s"
            } else if i == last {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            events.push(format!(
                "{{\"name\":\"acquire-flow\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{flow},\
                 \"pid\":{},\"tid\":{},\"ts\":{}{bp}}}",
                p.pid, p.tid, p.ts
            ));
        }
    }

    // Bare-array trace form, same as the causal export: both Perfetto
    // and chrome://tracing accept it, and `bmx_trace::chrome::validate`
    // checks it.
    let mut out = String::from("[");
    out.push_str(&events.join(",\n"));
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanKind, SpanRec};
    use bmx_trace::chrome::{parse, validate, Json};

    fn rec(kind: SpanKind, node: u32, start: u64, dur: u64, flow: u64) -> SpanRec {
        SpanRec {
            kind,
            node,
            start_us: start,
            dur_us: dur,
            flow,
        }
    }

    fn sample() -> Vec<ThreadSpans> {
        vec![
            ThreadSpans {
                name: "bmx-mutator-1".into(),
                spans: vec![
                    rec(SpanKind::Acquire, 1, 100, 900, 7),
                    rec(SpanKind::AcquirePark, 1, 150, 600, 7),
                    rec(SpanKind::ReserveClaim, 1, 990, 0, 7),
                ],
            },
            ThreadSpans {
                name: "bmx-driver-0-g0".into(),
                spans: vec![rec(SpanKind::DriverApply, 0, 400, 50, 7)],
            },
        ]
    }

    /// Collects every event object out of the parsed trace.
    fn events(doc: &Json) -> Vec<&Json> {
        match doc {
            Json::Arr(evs) => evs.iter().collect(),
            other => panic!("top-level array missing: {other:?}"),
        }
    }

    #[test]
    fn export_round_trips_through_the_trace_parser() {
        let text = export(&sample());
        let n = validate(&text).expect("well-formed trace JSON");
        assert!(n >= 4, "at least the four duration events: {n}");
        let doc = parse(&text).expect("parses");
        let evs = events(&doc);
        // All four spans present as "ph":"X" with real ts/dur.
        let xs: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 4);
        let park = xs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("acquire/park"))
            .expect("park span exported");
        assert_eq!(park.get("ts").and_then(Json::as_num), Some(150.0));
        assert_eq!(park.get("dur").and_then(Json::as_num), Some(600.0));
        assert_eq!(park.get("pid").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn threads_and_processes_are_named() {
        let doc = parse(&export(&sample())).expect("parses");
        let evs = events(&doc);
        let metas: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        let names: Vec<&str> = metas
            .iter()
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(
            names.contains(&"node 0"),
            "process_name for node 0: {names:?}"
        );
        assert!(
            names.contains(&"node 1"),
            "process_name for node 1: {names:?}"
        );
        assert!(names.contains(&"bmx-mutator-1"), "thread named: {names:?}");
        assert!(
            names.contains(&"bmx-driver-0-g0"),
            "thread named: {names:?}"
        );
    }

    #[test]
    fn flow_ids_stitch_across_pids() {
        let doc = parse(&export(&sample())).expect("parses");
        let evs = events(&doc);
        let flow_evs: Vec<_> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").and_then(Json::as_str),
                    Some("s") | Some("t") | Some("f")
                )
            })
            .collect();
        // Four spans share flow 7 -> one "s", two "t", one "f".
        assert_eq!(flow_evs.len(), 4, "{flow_evs:?}");
        assert!(flow_evs
            .iter()
            .all(|e| e.get("id").and_then(Json::as_num) == Some(7.0)));
        let start = flow_evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .expect("flow start");
        // Earliest span (ts 100, node 1) opens the flow.
        assert_eq!(start.get("ts").and_then(Json::as_num), Some(100.0));
        assert_eq!(start.get("pid").and_then(Json::as_num), Some(1.0));
        let finish = flow_evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .expect("flow finish");
        assert_eq!(finish.get("ts").and_then(Json::as_num), Some(990.0));
        // Both pids participate: the flow crosses node boundaries.
        let pids: std::collections::BTreeSet<u64> = flow_evs
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_num))
            .map(|p| p as u64)
            .collect();
        assert!(pids.contains(&0) && pids.contains(&1), "{pids:?}");
    }

    #[test]
    fn singleton_flows_are_not_stitched() {
        let threads = vec![ThreadSpans {
            name: "t".into(),
            spans: vec![rec(SpanKind::Acquire, 0, 10, 5, 99)],
        }];
        let doc = parse(&export(&threads)).expect("parses");
        let evs = events(&doc);
        assert!(evs
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) != Some("s")));
    }

    #[test]
    fn names_are_escaped() {
        let threads = vec![ThreadSpans {
            name: "weird\"name\\with\njunk".into(),
            spans: vec![rec(SpanKind::MutexHold, 0, 1, 1, 0)],
        }];
        let text = export(&threads);
        validate(&text).expect("escaped name still parses");
    }
}
