//! Where captured records go.
//!
//! A sink is installed per capturing thread (the cluster and its simulated
//! nodes run on one thread, so one sink sees every node's events). The
//! flight-recorder shape — a bounded ring that keeps only the newest
//! records — is the production default: always-on, fixed memory, and the
//! tail is exactly the window you want when a chaos seed trips an assert.

use crate::event::TraceRecord;

/// A destination for trace records.
pub trait TraceSink: Send {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);
    /// Copy out everything currently retained, oldest first.
    fn drain(&mut self) -> Vec<TraceRecord>;
}

/// Bounded ring buffer: keeps the newest `capacity` records, overwriting
/// the oldest once full.
pub struct RingSink {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    wrapped: bool,
}

impl RingSink {
    /// A ring retaining at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            wrapped: false,
        }
    }

    /// How many records are currently retained.
    pub fn len(&self) -> usize {
        if self.wrapped {
            self.capacity
        } else {
            self.buf.len()
        }
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained records, oldest first, without consuming them.
    pub fn contents(&self) -> Vec<TraceRecord> {
        if !self.wrapped {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped = true;
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        let out = self.contents();
        self.buf.clear();
        self.head = 0;
        self.wrapped = false;
        out
    }
}

/// Unbounded capture, for tests and exports that need the whole run.
#[derive(Default)]
pub struct VecSink {
    buf: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: TraceRecord) {
        self.buf.push(rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.buf)
    }
}

/// Drops every record. Useful for measuring the cost of the emission path
/// itself (clock ticks and stamping) with no retention at all.
#[derive(Default)]
pub struct DiscardSink;

impl TraceSink for DiscardSink {
    fn record(&mut self, _rec: TraceRecord) {}

    fn drain(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
}
