//! The typed event vocabulary.
//!
//! Every variant is allocation-free (fixed, `Copy` fields only) so that
//! constructing an event costs a handful of register moves — cheap enough to
//! build unconditionally at the instrumentation sites and let
//! [`crate::emit`] throw it away when tracing is disabled.

use core::fmt;

use bmx_common::{Addr, BunchId, Epoch, NodeId, Oid};

/// Read or write side of a token operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessMode {
    /// Read token.
    Read,
    /// Write token.
    Write,
}

/// Which half of which stub–scion pair kind an SSP event concerns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SspKind {
    /// Inter-bunch stub (source side).
    InterStub,
    /// Inter-bunch scion (target side).
    InterScion,
    /// Intra-bunch stub (held by the new owner after a transfer).
    IntraStub,
    /// Intra-bunch scion (left at the old owner / stub site).
    IntraScion,
}

/// Phase of a (possibly incremental) bunch/group collection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GcPhase {
    /// Root gathering (mutator stacks, scions, entering ownerPtrs).
    Roots,
    /// Tracing/copying/scanning from the roots.
    Trace,
    /// Local reference update through forwarding knowledge.
    Update,
    /// Sweep of dead local replicas.
    Sweep,
    /// Table regeneration, space swap, and report publication.
    Publish,
    /// The incremental collector's only mutator-visible pause.
    Flip,
}

/// Step of the from-space reuse protocol (paper, Section 4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReuseStep {
    /// Initiator started the protocol.
    Start,
    /// Initiator is waiting for owners to copy live objects out.
    CopyOut,
    /// Retire round: waiting for replica-holder acks.
    Retire,
    /// A replica holder acknowledged the retirement.
    Ack,
    /// Segments reclaimed; protocol finished.
    Done,
}

/// Traffic class of a network event (mirror of `bmx_net::MsgClass`, which
/// this crate cannot name without a dependency cycle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgLane {
    /// Consistency-protocol traffic.
    Dsm,
    /// Scion-messages.
    ScionMessage,
    /// Idempotent reachability tables.
    StubTable,
    /// Explicit relocation / background GC traffic.
    GcBackground,
}

/// Which leak/stall detector of the metrics watchdog fired (mirror of the
/// detector set in `bmx-metrics`, which this crate cannot name without a
/// dependency cycle — the same arrangement as [`MsgLane`] / `MsgClass`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlarmKind {
    /// From-space retention stayed nonzero and never drained for a whole
    /// detection window after a covering epoch should have freed it.
    FromSpaceLeak,
    /// The scion backlog grew monotonically across consecutive checks.
    ScionBacklog,
    /// The report-retry queue stayed deep for a whole detection window.
    RetryStorm,
    /// A node's Lamport clock stalled while the rest of the cluster
    /// made progress.
    ClockStall,
    /// The parallel runtime had work pending (messages in flight) but no
    /// node completed an operation or a delivery for a whole detection
    /// window — a livelock/deadlock on real threads.
    ProgressStall,
}

impl AlarmKind {
    /// All detector kinds, for iteration in reports.
    pub const ALL: [AlarmKind; 5] = [
        AlarmKind::FromSpaceLeak,
        AlarmKind::ScionBacklog,
        AlarmKind::RetryStorm,
        AlarmKind::ClockStall,
        AlarmKind::ProgressStall,
    ];
}

/// Fault-plane transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The node went down.
    Crash,
    /// The node came back.
    Restart,
    /// A partition containing the node healed.
    PartitionHeal,
}

/// One causally-stamped thing that happened.
///
/// Events are attributed to the node whose clock stamped them; cross-node
/// fields (`dst`, `to`, `holder`, …) identify the peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    // ---------------- network plane ----------------
    /// A message was accepted for delivery; its piggy-backed Lamport stamp
    /// is this event's own.
    MsgSend {
        /// Receiver.
        dst: NodeId,
        /// Per-channel FIFO sequence number.
        seq: u64,
        /// Traffic class.
        lane: MsgLane,
    },
    /// A message was discarded by loss injection or an outage.
    MsgDrop {
        /// Intended receiver.
        dst: NodeId,
        /// Per-channel FIFO sequence number.
        seq: u64,
        /// Traffic class.
        lane: MsgLane,
    },
    /// A message became deliverable at its receiver; `sent_lamport` is the
    /// sender's piggy-backed clock, merged into the receiver's before this
    /// event was stamped (so this event happens-after the send).
    MsgDeliver {
        /// Sender.
        src: NodeId,
        /// Per-channel FIFO sequence number.
        seq: u64,
        /// Traffic class.
        lane: MsgLane,
        /// The Lamport stamp the message carried.
        sent_lamport: u64,
    },
    /// A fault-plane transition concerning this node.
    Fault {
        /// What happened.
        kind: FaultKind,
    },

    // ---------------- DSM plane ----------------
    /// A mutator acquire began at this node.
    AcquireStart {
        /// Object.
        oid: Oid,
        /// Read or write.
        mode: AccessMode,
    },
    /// A remote grant completed an acquire at this node (local/satisfied
    /// acquires emit only [`TraceEvent::AcquireStart`]).
    AcquireComplete {
        /// Object.
        oid: Oid,
        /// Read or write.
        mode: AccessMode,
    },
    /// This node granted a token to `to`.
    TokenGrant {
        /// Object.
        oid: Oid,
        /// Grantee.
        to: NodeId,
        /// Read or write.
        mode: AccessMode,
    },
    /// The mutator released its token bracket.
    TokenRelease {
        /// Object.
        oid: Oid,
    },
    /// An invalidation stripped this node's token.
    TokenInvalidated {
        /// Object.
        oid: Oid,
        /// The parent that sent the invalidation.
        by: NodeId,
    },
    /// This node became the owner (write-grant arrival): ownership migrated
    /// here from `from`.
    OwnershipMigrate {
        /// Object.
        oid: Oid,
        /// Previous owner.
        from: NodeId,
    },
    /// The owner learned that `holder` holds a replica.
    ReplicaRegister {
        /// Object.
        oid: Oid,
        /// The replica holder.
        holder: NodeId,
    },
    /// The local replica record was dropped (BGC reclaimed the copy).
    ReplicaDrop {
        /// Object.
        oid: Oid,
    },

    // ---------------- collector plane ----------------
    /// A collection at this node entered `phase` for `bunch`.
    BgcPhase {
        /// First bunch of the collected group.
        bunch: BunchId,
        /// The phase entered.
        phase: GcPhase,
    },
    /// The collector copied a locally owned object to to-space.
    Relocate {
        /// Object.
        oid: Oid,
        /// From-space address.
        from: Addr,
        /// To-space address.
        to: Addr,
    },
    /// A relocation record was applied at this node (lazy address update:
    /// piggy-backed, grant-carried, or image-carried forwarding).
    AddrUpdate {
        /// Object.
        oid: Oid,
        /// Old address.
        from: Addr,
        /// New address.
        to: Addr,
    },
    /// Half of a stub–scion pair was created at this node.
    SspCreate {
        /// Which half of which pair kind.
        kind: SspKind,
        /// The object, where the kind has one (intra pairs; inter stubs).
        oid: Option<Oid>,
        /// The peer node holding (or destined to hold) the other half.
        peer: NodeId,
    },
    /// Stubs were cut at this node (collection dropped them with their
    /// source objects).
    SspCut {
        /// Which pair kind.
        kind: SspKind,
        /// How many.
        count: u64,
    },
    /// A collection at this node published the reachability report of
    /// `bunch` for `epoch`.
    ReportPublish {
        /// The collected bunch.
        bunch: BunchId,
        /// The new epoch.
        epoch: Epoch,
    },
    /// The cleaner applied the report from `(source, bunch, epoch)` at this
    /// node (duplicates and stale retransmissions emit nothing).
    ReportApply {
        /// Reporting node.
        source: NodeId,
        /// Reported bunch.
        bunch: BunchId,
        /// Report epoch.
        epoch: Epoch,
    },
    /// The cleaner retired scions the `(source, bunch, epoch)` report no
    /// longer justifies.
    ScionRetired {
        /// Reporting node.
        source: NodeId,
        /// Reported bunch.
        bunch: BunchId,
        /// Covering epoch.
        epoch: Epoch,
        /// Scions removed.
        count: u64,
    },
    /// The cleaner retired entering ownerPtrs the report no longer
    /// justifies.
    OwnerPtrRetired {
        /// Reporting node.
        source: NodeId,
        /// Reported bunch.
        bunch: BunchId,
        /// Covering epoch.
        epoch: Epoch,
        /// Entering ownerPtrs removed.
        count: u64,
    },
    /// The retry daemon re-sent a reachability report.
    ReportRetry {
        /// The bunch whose report was re-sent.
        bunch: BunchId,
        /// The destination of the re-send.
        dest: NodeId,
    },
    /// A from-space reuse protocol step at this node.
    Reuse {
        /// The bunch being reclaimed.
        bunch: BunchId,
        /// The step.
        step: ReuseStep,
    },

    // ---------------- recovery plane ----------------
    /// This node began its crash-amnesia recovery pipeline (RVM replay has
    /// finished; the rejoin handshake is about to start). `epoch` is the
    /// rejoin epoch the node will stamp on its handshake traffic.
    RecoveryBegin {
        /// The rejoin epoch of this recovery.
        epoch: u64,
    },
    /// This node finished recovery: RVM replay, the rejoin handshake, and
    /// scion/stub regeneration all completed.
    RecoveryComplete {
        /// The rejoin epoch of this recovery.
        epoch: u64,
    },
    /// During rejoin the node resumed `bunch`'s collection-epoch counter
    /// at `epoch` (the max any surviving peer had applied), so every
    /// post-restart report is strictly newer than anything pre-crash.
    RejoinEpoch {
        /// The bunch whose epoch counter was resumed.
        bunch: BunchId,
        /// The resumed (floor) epoch.
        epoch: Epoch,
    },

    // ---------------- metrics plane ----------------
    /// The metrics watchdog raised an alarm at this node. The alarm is
    /// causally ordered with the events that justified it: `witness_lamport`
    /// is the node's Lamport clock *before* the alarm was stamped, i.e. the
    /// newest event inside the detection window, so the alarm happens-after
    /// its evidence (`query::metric_alarm_hb_violations` checks this).
    MetricAlarm {
        /// Which detector fired.
        kind: AlarmKind,
        /// The reading that tripped the detector (gauge value, queue depth,
        /// or stalled clock value, per kind).
        value: u64,
        /// Tick at which the offending condition was first observed.
        since_tick: u64,
        /// The node's Lamport clock when the alarm fired (the newest event
        /// the alarm is justified by); always < this record's own stamp.
        witness_lamport: u64,
    },

    // ---------------- mutator plane ----------------
    /// A mutator data/pointer access at this node; `resolved` differs from
    /// `requested` when the access went through forwarding knowledge.
    MutatorAccess {
        /// The address the application held.
        requested: Addr,
        /// The current address actually accessed.
        resolved: Addr,
        /// Store (`true`) or load.
        write: bool,
    },
}

impl TraceEvent {
    /// A coarse subsystem label, used as the Chrome-trace thread id so each
    /// node's events split into per-subsystem tracks.
    pub fn subsystem(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            MsgSend { .. } | MsgDrop { .. } | MsgDeliver { .. } => "net",
            Fault { .. } => "fault",
            AcquireStart { .. }
            | AcquireComplete { .. }
            | TokenGrant { .. }
            | TokenRelease { .. }
            | TokenInvalidated { .. }
            | OwnershipMigrate { .. }
            | ReplicaRegister { .. }
            | ReplicaDrop { .. } => "dsm",
            BgcPhase { .. }
            | Relocate { .. }
            | AddrUpdate { .. }
            | SspCreate { .. }
            | SspCut { .. }
            | ReportPublish { .. }
            | Reuse { .. } => "gc",
            ReportApply { .. }
            | ScionRetired { .. }
            | OwnerPtrRetired { .. }
            | ReportRetry { .. } => "cleaner",
            RecoveryBegin { .. } | RecoveryComplete { .. } | RejoinEpoch { .. } => "recovery",
            MetricAlarm { .. } => "metrics",
            MutatorAccess { .. } => "mutator",
        }
    }

    /// A short name for timelines and Chrome-trace event labels.
    pub fn name(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            MsgSend { .. } => "MsgSend",
            MsgDrop { .. } => "MsgDrop",
            MsgDeliver { .. } => "MsgDeliver",
            Fault { .. } => "Fault",
            AcquireStart { .. } => "AcquireStart",
            AcquireComplete { .. } => "AcquireComplete",
            TokenGrant { .. } => "TokenGrant",
            TokenRelease { .. } => "TokenRelease",
            TokenInvalidated { .. } => "TokenInvalidated",
            OwnershipMigrate { .. } => "OwnershipMigrate",
            ReplicaRegister { .. } => "ReplicaRegister",
            ReplicaDrop { .. } => "ReplicaDrop",
            BgcPhase { .. } => "BgcPhase",
            Relocate { .. } => "Relocate",
            AddrUpdate { .. } => "AddrUpdate",
            SspCreate { .. } => "SspCreate",
            SspCut { .. } => "SspCut",
            ReportPublish { .. } => "ReportPublish",
            ReportApply { .. } => "ReportApply",
            ScionRetired { .. } => "ScionRetired",
            OwnerPtrRetired { .. } => "OwnerPtrRetired",
            ReportRetry { .. } => "ReportRetry",
            Reuse { .. } => "Reuse",
            RecoveryBegin { .. } => "RecoveryBegin",
            RecoveryComplete { .. } => "RecoveryComplete",
            RejoinEpoch { .. } => "RejoinEpoch",
            MetricAlarm { .. } => "MetricAlarm",
            MutatorAccess { .. } => "MutatorAccess",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        match self {
            MsgSend { dst, seq, lane } => write!(f, "MsgSend -> {dst} seq={seq} {lane:?}"),
            MsgDrop { dst, seq, lane } => write!(f, "MsgDrop -> {dst} seq={seq} {lane:?}"),
            MsgDeliver {
                src,
                seq,
                lane,
                sent_lamport,
            } => write!(
                f,
                "MsgDeliver <- {src} seq={seq} {lane:?} L(send)={sent_lamport}"
            ),
            Fault { kind } => write!(f, "Fault {kind:?}"),
            AcquireStart { oid, mode } => write!(f, "AcquireStart {oid} {mode:?}"),
            AcquireComplete { oid, mode } => write!(f, "AcquireComplete {oid} {mode:?}"),
            TokenGrant { oid, to, mode } => write!(f, "TokenGrant {oid} -> {to} {mode:?}"),
            TokenRelease { oid } => write!(f, "TokenRelease {oid}"),
            TokenInvalidated { oid, by } => write!(f, "TokenInvalidated {oid} by {by}"),
            OwnershipMigrate { oid, from } => write!(f, "OwnershipMigrate {oid} from {from}"),
            ReplicaRegister { oid, holder } => write!(f, "ReplicaRegister {oid} holder {holder}"),
            ReplicaDrop { oid } => write!(f, "ReplicaDrop {oid}"),
            BgcPhase { bunch, phase } => write!(f, "BgcPhase {bunch} {phase:?}"),
            Relocate { oid, from, to } => write!(f, "Relocate {oid} {from} -> {to}"),
            AddrUpdate { oid, from, to } => write!(f, "AddrUpdate {oid} {from} -> {to}"),
            SspCreate { kind, oid, peer } => match oid {
                Some(oid) => write!(f, "SspCreate {kind:?} {oid} peer {peer}"),
                None => write!(f, "SspCreate {kind:?} peer {peer}"),
            },
            SspCut { kind, count } => write!(f, "SspCut {kind:?} x{count}"),
            ReportPublish { bunch, epoch } => {
                write!(f, "ReportPublish {bunch} epoch={}", epoch.0)
            }
            ReportApply {
                source,
                bunch,
                epoch,
            } => write!(f, "ReportApply from {source} {bunch} epoch={}", epoch.0),
            ScionRetired {
                source,
                bunch,
                epoch,
                count,
            } => write!(
                f,
                "ScionRetired x{count} (from {source} {bunch} epoch={})",
                epoch.0
            ),
            OwnerPtrRetired {
                source,
                bunch,
                epoch,
                count,
            } => write!(
                f,
                "OwnerPtrRetired x{count} (from {source} {bunch} epoch={})",
                epoch.0
            ),
            ReportRetry { bunch, dest } => write!(f, "ReportRetry {bunch} -> {dest}"),
            Reuse { bunch, step } => write!(f, "Reuse {bunch} {step:?}"),
            RecoveryBegin { epoch } => write!(f, "RecoveryBegin rejoin-epoch={epoch}"),
            RecoveryComplete { epoch } => write!(f, "RecoveryComplete rejoin-epoch={epoch}"),
            RejoinEpoch { bunch, epoch } => {
                write!(f, "RejoinEpoch {bunch} resumed-at={}", epoch.0)
            }
            MetricAlarm {
                kind,
                value,
                since_tick,
                witness_lamport,
            } => write!(
                f,
                "MetricAlarm {kind:?} value={value} since-t={since_tick} L(witness)={witness_lamport}"
            ),
            MutatorAccess {
                requested,
                resolved,
                write,
            } => {
                let op = if *write { "store" } else { "load" };
                if requested == resolved {
                    write!(f, "MutatorAccess {op} {requested}")
                } else {
                    write!(f, "MutatorAccess {op} {requested} (moved to {resolved})")
                }
            }
        }
    }
}

/// One captured event with its causal stamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// The node whose clock stamped the event.
    pub node: NodeId,
    /// Simulated network tick at emission time.
    pub tick: u64,
    /// The node's Lamport clock value for this event. Strictly increasing
    /// per node; merged with the piggy-backed sender clock at delivery, so
    /// `a` happens-before `b` implies `a.lamport < b.lamport`.
    pub lamport: u64,
    /// Emission order on the capturing thread (a tie-breaker for stable
    /// merges; not causally meaningful across nodes).
    pub seq: u64,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:<6} L={:<6} {:<3} [{:<7}] {}",
            self.tick,
            self.lamport,
            self.node.to_string(),
            self.event.subsystem(),
            self.event
        )
    }
}
