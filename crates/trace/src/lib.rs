//! `bmx-trace`: causal event tracing for the BMX reproduction.
//!
//! The paper's safety argument is temporal — scions are retired only
//! *after* a covering reachability epoch, addresses re-align *at* token
//! acquires, the collector *never* blocks the consistency protocol — so
//! when a chaos seed trips an assert, the question is always "what order
//! did these things actually happen in?". Aggregate counters can't answer
//! that. This crate captures a typed, causally-stamped event stream:
//!
//! * **Events** ([`TraceEvent`]) are fixed-size and allocation-free;
//!   emitting one when tracing is disabled is a thread-local flag check.
//! * **Clocks**: each node carries a Lamport clock, advanced on every
//!   local event and merged at message delivery from the stamp
//!   piggy-backed on every `Envelope`. Sorting the merged stream by
//!   `(lamport, node, seq)` yields a total order consistent with
//!   happens-before.
//! * **Sinks** ([`TraceSink`]): a bounded [`RingSink`] flight recorder
//!   (production default — fixed memory, newest-N window), an unbounded
//!   [`VecSink`] for tests and exports, a [`DiscardSink`] that keeps
//!   nothing (for measuring emission cost), or nothing at all (tracing
//!   disabled).
//! * **Exporters** ([`chrome`]): Chrome `trace_event` JSON — load it in
//!   `chrome://tracing` or <https://ui.perfetto.dev> — and a merged
//!   human-readable timeline.
//! * **Queries** ([`query`]): temporal invariants checked directly on a
//!   captured trace (scion-retirement ordering, address-update
//!   happens-before, the Section-5 acquire invariants).
//!
//! Tracing is observational only: no simulation state, RNG draw, or wire
//! size depends on whether a recorder is installed, so a traced run is
//! bit-identical to an untraced run with the same seed (tier-1 enforces
//! this).
//!
//! The recorder is thread-local because the whole simulated cluster lives
//! on one thread (the threaded frontend pins the `Cluster` to a single
//! actor thread), which keeps the hot path free of atomics and locks.

pub mod chrome;
mod event;
pub mod query;
mod sink;

pub use event::{
    AccessMode, AlarmKind, FaultKind, GcPhase, MsgLane, ReuseStep, SspKind, TraceEvent, TraceRecord,
};
pub use sink::{DiscardSink, RingSink, TraceSink, VecSink};

use std::cell::{Cell, RefCell};

use bmx_common::NodeId;

struct Recorder {
    /// Per-node Lamport clocks, indexed by `NodeId.0`; grows on demand.
    clocks: Vec<u64>,
    /// Current simulated tick, pushed in by the network's `tick()`.
    now: u64,
    /// Thread-wide emission counter (merge tie-breaker).
    seq: u64,
    sink: Box<dyn TraceSink>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

// Process-global recorder, used only when the current thread has no
// thread-local recorder installed. The parallel runtime (`bmx::parallel`)
// emits protocol events from per-node driver threads and any number of
// mutator threads; a shared recorder is the only way those emissions merge
// into one causally-ordered stream. All protocol emissions there happen
// under the cluster's protocol lock, so the mutex below is essentially
// uncontended. The deterministic simulation never installs it, keeping
// the single-threaded hot path free of atomics beyond one relaxed load.
static GLOBAL_ON: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static GLOBAL: std::sync::Mutex<Option<Recorder>> = std::sync::Mutex::new(None);

/// Runs `f` against the active recorder: the thread-local one if present,
/// else the process-global one, else returns `R::default()`.
fn with_recorder<R: Default>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut f = Some(f);
    let local = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.as_mut().map(|rec| (f.take().expect("unused"))(rec))
    });
    if let Some(out) = local {
        return out;
    }
    if GLOBAL_ON.load(std::sync::atomic::Ordering::Acquire) {
        let mut g = GLOBAL.lock().expect("trace global recorder");
        if let Some(rec) = g.as_mut() {
            if let Some(f) = f.take() {
                return f(rec);
            }
        }
    }
    R::default()
}

/// Install `sink` as the process-global trace destination, shared by all
/// threads that have no thread-local recorder of their own. Used by the
/// parallel runtime; the deterministic simulation uses [`install`].
pub fn install_global(sink: Box<dyn TraceSink>) {
    let mut g = GLOBAL.lock().expect("trace global recorder");
    *g = Some(Recorder {
        clocks: Vec::new(),
        now: 0,
        seq: 0,
        sink,
    });
    GLOBAL_ON.store(true, std::sync::atomic::Ordering::Release);
}

/// Convenience: a process-global unbounded capture buffer.
pub fn install_global_vec() {
    install_global(Box::new(VecSink::new()));
}

/// Disable and drop the process-global recorder.
pub fn disable_global() {
    GLOBAL_ON.store(false, std::sync::atomic::Ordering::Release);
    *GLOBAL.lock().expect("trace global recorder") = None;
}

/// Drain the process-global sink (oldest first), leaving it installed.
pub fn take_global() -> Vec<TraceRecord> {
    let mut g = GLOBAL.lock().expect("trace global recorder");
    match g.as_mut() {
        Some(rec) => rec.sink.drain(),
        None => Vec::new(),
    }
}

/// Copy the process-global sink's retained records (oldest first)
/// without disturbing them: the flight recorder keeps flying. Used by
/// the post-mortem blackbox, which must not consume the trace a later
/// test assertion (or a second dump) still wants. Implemented as a
/// drain-then-re-record under the global lock, so concurrent emitters
/// never observe a half-empty recorder.
pub fn snapshot_global() -> Vec<TraceRecord> {
    let mut g = GLOBAL.lock().expect("trace global recorder");
    match g.as_mut() {
        Some(rec) => {
            let records = rec.sink.drain();
            for r in &records {
                rec.sink.record(*r);
            }
            records
        }
        None => Vec::new(),
    }
}

impl Recorder {
    fn clock(&mut self, node: NodeId) -> &mut u64 {
        let idx = node.0 as usize;
        if idx >= self.clocks.len() {
            self.clocks.resize(idx + 1, 0);
        }
        &mut self.clocks[idx]
    }
}

/// Is a recorder installed on this thread? Instrumentation sites that need
/// more than constructing a fixed-size event (e.g. a table lookup for an
/// event field) should guard on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get()) || GLOBAL_ON.load(std::sync::atomic::Ordering::Relaxed)
}

/// Install `sink` as this thread's trace destination and enable tracing.
/// Replaces (and drops) any previously installed sink.
pub fn install(sink: Box<dyn TraceSink>) {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            clocks: Vec::new(),
            now: 0,
            seq: 0,
            sink,
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Convenience: install a bounded flight recorder keeping the newest
/// `capacity` records.
pub fn install_ring(capacity: usize) {
    install(Box::new(RingSink::new(capacity)));
}

/// Convenience: install an unbounded capture buffer.
pub fn install_vec() {
    install(Box::new(VecSink::new()));
}

/// Disable tracing and drop the installed recorder (clocks included).
pub fn disable() {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| *r.borrow_mut() = None);
}

/// Update the recorder's notion of the current simulated tick. Called by
/// the network clock; a no-op when tracing is disabled.
#[inline]
pub fn set_now(tick: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec| {
        rec.now = tick;
    });
}

/// Emit `event` at `node`: tick the node's Lamport clock and hand the
/// stamped record to the sink. Returns the Lamport stamp — senders
/// piggy-back it on the outgoing `Envelope` — or 0 when tracing is
/// disabled (the stamp is then never read, so the constant is harmless).
#[inline]
pub fn emit(node: NodeId, event: TraceEvent) -> u64 {
    if !enabled() {
        return 0;
    }
    emit_slow(node, event)
}

#[cold]
fn emit_slow(node: NodeId, event: TraceEvent) -> u64 {
    with_recorder(|rec| {
        let clk = rec.clock(node);
        *clk += 1;
        let lamport = *clk;
        rec.seq += 1;
        let record = TraceRecord {
            node,
            tick: rec.now,
            lamport,
            seq: rec.seq,
            event,
        };
        rec.sink.record(record);
        lamport
    })
}

/// Read `node`'s current Lamport clock without advancing it. Returns 0
/// when tracing is disabled. Synchronous cross-node operations (direct
/// calls that bypass the message layer, e.g. mapping a bunch served by
/// another node) pair this with [`observe`] to record the causal edge the
/// missing message would have carried.
pub fn clock(node: NodeId) -> u64 {
    if !enabled() {
        return 0;
    }
    with_recorder(|rec| *rec.clock(node))
}

/// Merge a remote Lamport stamp into `node`'s clock (message delivery):
/// the clock jumps to `max(local, remote)` so the next event at `node`
/// is stamped strictly after both. A no-op when tracing is disabled.
#[inline]
pub fn observe(node: NodeId, remote_lamport: u64) {
    if !enabled() || remote_lamport == 0 {
        return;
    }
    with_recorder(|rec| {
        let clk = rec.clock(node);
        *clk = (*clk).max(remote_lamport);
    });
}

/// Copy out everything the sink currently retains (oldest first) without
/// disturbing the recorder. Empty when tracing is disabled.
pub fn snapshot() -> Vec<TraceRecord> {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        match r.as_mut() {
            Some(rec) => {
                let out = rec.sink.drain();
                for item in &out {
                    rec.sink.record(*item);
                }
                out
            }
            None => Vec::new(),
        }
    })
}

/// Drain the sink: take everything retained (oldest first), leaving the
/// recorder installed and its clocks intact.
pub fn take() -> Vec<TraceRecord> {
    RECORDER.with(|r| match r.borrow_mut().as_mut() {
        Some(rec) => rec.sink.drain(),
        None => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmx_common::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ev() -> TraceEvent {
        TraceEvent::TokenRelease {
            oid: bmx_common::Oid(7),
        }
    }

    #[test]
    fn disabled_tracing_is_a_no_op() {
        disable();
        assert!(!enabled());
        assert_eq!(emit(n(0), ev()), 0);
        assert!(take().is_empty());
    }

    #[test]
    fn emit_ticks_the_per_node_clock() {
        install_vec();
        assert_eq!(emit(n(0), ev()), 1);
        assert_eq!(emit(n(0), ev()), 2);
        assert_eq!(emit(n(1), ev()), 1, "clocks are per node");
        let recs = take();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].lamport, 1);
        assert_eq!(recs[1].lamport, 2);
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        disable();
    }

    #[test]
    fn observe_merges_remote_clock() {
        install_vec();
        let sent = emit(n(0), ev());
        assert_eq!(sent, 1);
        observe(n(1), sent);
        let delivered = emit(n(1), ev());
        assert!(
            delivered > sent,
            "receive must be stamped after the matching send"
        );
        disable();
    }

    #[test]
    fn snapshot_does_not_consume() {
        install_ring(8);
        emit(n(0), ev());
        emit(n(0), ev());
        assert_eq!(snapshot().len(), 2);
        assert_eq!(snapshot().len(), 2, "snapshot leaves the ring intact");
        assert_eq!(take().len(), 2);
        assert!(take().is_empty(), "take drains");
        disable();
    }

    #[test]
    fn ring_sink_wraparound_keeps_newest() {
        let mut ring = RingSink::new(4);
        for i in 0..10u64 {
            ring.record(TraceRecord {
                node: n(0),
                tick: i,
                lamport: i + 1,
                seq: i + 1,
                event: ev(),
            });
        }
        assert_eq!(ring.len(), 4);
        let kept: Vec<u64> = ring.drain().iter().map(|r| r.tick).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "newest N, oldest first");
        assert!(ring.is_empty());
    }
}
