//! Chrome `trace_event` JSON export.
//!
//! The output is the "JSON array format" understood by `chrome://tracing`
//! and Perfetto (<https://ui.perfetto.dev>): one process per node, one
//! thread per subsystem, every record an instant event (`"ph": "i"`) with
//! its causal stamps in `args`. The writer is hand-rolled (the workspace
//! takes no serialization dependency), and a deliberately small JSON
//! reader lives alongside it so tests can prove the export round-trips
//! through a real parse.

use std::fmt::Write as _;

use crate::event::TraceRecord;

/// Microseconds per simulated tick in the exported timestamps. Events
/// within one tick are spread a microsecond apart (in merged causal
/// order) so viewers don't stack them on a single instant.
const US_PER_TICK: u64 = 1_000;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    let _ = write!(out, "\"{key}\":\"");
    escape(val, out);
    out.push('"');
}

/// Render `records` as a Chrome-trace JSON array. The records are sorted
/// into the merged happens-before order first, so timestamps within a
/// tick respect causality.
pub fn export(records: &[TraceRecord]) -> String {
    let ordered = crate::query::merged_order(records);
    let mut out = String::with_capacity(ordered.len() * 160 + 256);
    out.push('[');
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    // Metadata: name each pid after its node and each tid after its
    // subsystem track.
    let mut named: Vec<(u32, &'static str)> = Vec::new();
    for rec in &ordered {
        let pid = rec.node.0;
        let tid_name = rec.event.subsystem();
        if !named.iter().any(|&(p, t)| p == pid && t == tid_name) {
            if !named.iter().any(|&(p, _)| p == pid) {
                sep(&mut out);
                let _ = write!(
                    out,
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"node {pid}\"}}}}"
                );
            }
            let tid = tid_index(tid_name);
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{tid_name}\"}}}}"
            );
            named.push((pid, tid_name));
        }
    }

    // Events: ts = tick in µs plus a within-tick offset in merged order.
    let mut last_tick = u64::MAX;
    let mut intra = 0u64;
    for rec in &ordered {
        if rec.tick != last_tick {
            last_tick = rec.tick;
            intra = 0;
        } else {
            intra = (intra + 1).min(US_PER_TICK - 1);
        }
        let ts = rec.tick * US_PER_TICK + intra;
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{ts},\
             \"args\":{{\"lamport\":{},\"tick\":{},",
            rec.event.name(),
            rec.node.0,
            tid_index(rec.event.subsystem()),
            rec.lamport,
            rec.tick,
        );
        push_str_field(&mut out, "detail", &rec.event.to_string());
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

fn tid_index(subsystem: &str) -> u32 {
    match subsystem {
        "net" => 1,
        "dsm" => 2,
        "gc" => 3,
        "cleaner" => 4,
        "mutator" => 5,
        "fault" => 6,
        _ => 7,
    }
}

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough to prove the export parses.
// ---------------------------------------------------------------------

/// A parsed JSON value (only what the round-trip check needs to inspect).
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; trace output only emits integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The f64 payload of a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The str payload of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Parse a JSON document. Used by tests to prove [`export`] emits valid
/// JSON; not a general-purpose parser (no duplicate-key or depth checks).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Parse an exported trace and count its non-metadata events, verifying
/// the envelope shape every viewer relies on (`name`/`ph`/`pid`/`ts`).
pub fn validate(text: &str) -> Result<usize, String> {
    let Json::Arr(items) = parse(text)? else {
        return Err("top level must be an array".into());
    };
    let mut events = 0;
    for item in &items {
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event missing \"ph\"")?;
        item.get("name")
            .and_then(Json::as_str)
            .ok_or("event missing \"name\"")?;
        item.get("pid")
            .and_then(Json::as_num)
            .ok_or("event missing \"pid\"")?;
        if ph == "M" {
            continue;
        }
        item.get("ts")
            .and_then(Json::as_num)
            .ok_or("event missing \"ts\"")?;
        events += 1;
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessMode, TraceEvent, TraceRecord};
    use bmx_common::{NodeId, Oid};

    fn rec(node: u32, tick: u64, lamport: u64, seq: u64) -> TraceRecord {
        TraceRecord {
            node: NodeId(node),
            tick,
            lamport,
            seq,
            event: TraceEvent::AcquireStart {
                oid: Oid(9),
                mode: AccessMode::Write,
            },
        }
    }

    #[test]
    fn export_round_trips_through_a_parse() {
        let records = vec![rec(0, 1, 1, 1), rec(1, 1, 1, 2), rec(0, 2, 2, 3)];
        let json = export(&records);
        let n = validate(&json).expect("export must be valid JSON");
        assert_eq!(n, 3, "every record becomes one instant event");
    }

    #[test]
    fn export_of_nothing_is_an_empty_array() {
        assert_eq!(validate(&export(&[])).unwrap(), 0);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse(r#"{"a":[1,-2.5,"x\"\nA"],"b":{"c":null,"d":true}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Str("x\"\nA".into())
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(parse("[1,2").is_err());
        assert!(parse("[] trailing").is_err());
    }
}
